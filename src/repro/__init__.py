"""EffiTest — efficient delay test and statistical prediction for
configuring post-silicon tunable buffers.

Full reproduction of G. L. Zhang, B. Li, U. Schlichtmann, DAC 2016
(DOI 10.1145/2897937.2898017), built around a staged pipeline API.

Quickstart — the staged engine (see ``docs/api.md``)::

    from repro import (
        CircuitSpec, Engine, Scenario, generate_circuit,
        sample_circuit, operating_periods,
    )

    circuit = generate_circuit(CircuitSpec("demo", 211, 5597, 2, 80), seed=1)
    chips = sample_circuit(circuit, 1000, seed=2)
    t1, t2 = operating_periods(chips)

    engine = Engine()
    result = engine.run(circuit, chips, period=t1)       # offline stage cached
    print(result.mean_iterations, result.yield_fraction)

    # Batch serving: scenarios sharing a circuit + offline knobs reuse the
    # cached preparation; the offline stage runs once for all three.
    records = engine.run_many([
        Scenario(circuit, period=t1, n_chips=500, seed=3, clock_period=t1),
        Scenario(circuit, period=t2, n_chips=500, seed=4, clock_period=t1),
        Scenario(circuit, period=1.05 * t1, n_chips=500, seed=5, clock_period=t1),
    ])

The legacy facade still works (one engine per instance)::

    from repro import EffiTest
    framework = EffiTest(circuit)
    prep = framework.prepare(clock_period=t1)
    result = framework.run(chips, t1, prep)

Subpackages
-----------
``repro.api``
    The staged pipeline: ``OfflineStage -> TestStage -> PredictStage ->
    ConfigureStage -> VerifyStage``, the offline/online config split, the
    content-addressed preparation cache and the batch-serving ``Engine``.
``repro.core``
    The paper's contribution: statistical prediction, grouping/selection,
    test multiplexing, aligned delay test, buffer configuration, hold
    bounds, yields, and the legacy ``EffiTest`` facade.
``repro.circuit``
    Circuit substrate: cell library, netlists/.bench, placement, FF-to-FF
    paths, tunable buffers, calibrated synthetic benchmark generator.
``repro.variation``
    Process variation and SSTA: parameters, spatial grid correlation,
    canonical forms, joint Gaussian path models, PCA, Monte-Carlo sampling.
``repro.tester``
    ATE simulation: pass/fail oracle, path-wise frequency stepping, scan
    cost model.
``repro.opt``
    Optimization substrate: LP/MILP modelling + solvers, difference
    constraints (Bellman–Ford), maximum mean cycle, weighted medians.
``repro.experiments``
    Reproduction harness for Table 1, Table 2, Figure 7 and Figure 8,
    driven through ``repro.api``.
"""

from repro.circuit import (
    BufferPlan,
    Circuit,
    CircuitSpec,
    Library,
    Netlist,
    PathSet,
    TunableBuffer,
    default_library,
    generate_circuit,
    plan_buffers,
)
from repro.core import (
    ChipSource,
    EffiTest,
    EffiTestConfig,
    PopulationRunResult,
    Preparation,
    RunSummary,
    chip_source,
    ideal_yield,
    no_buffer_yield,
    operating_periods,
    sample_circuit,
)
from repro.api import (
    Engine,
    OfflineConfig,
    OnlineConfig,
    PreparationCache,
    RunRecord,
    Scenario,
    ScenarioGrid,
)
from repro.results import RunStore
from repro.variation import PathDelayModel, SpatialModel

__version__ = "1.1.0"

__all__ = [
    "BufferPlan",
    "ChipSource",
    "Circuit",
    "CircuitSpec",
    "EffiTest",
    "EffiTestConfig",
    "Engine",
    "Library",
    "Netlist",
    "OfflineConfig",
    "OnlineConfig",
    "PathDelayModel",
    "PathSet",
    "PopulationRunResult",
    "Preparation",
    "PreparationCache",
    "RunRecord",
    "RunStore",
    "RunSummary",
    "Scenario",
    "ScenarioGrid",
    "SpatialModel",
    "TunableBuffer",
    "chip_source",
    "default_library",
    "generate_circuit",
    "ideal_yield",
    "no_buffer_yield",
    "operating_periods",
    "plan_buffers",
    "sample_circuit",
    "__version__",
]
