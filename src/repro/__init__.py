"""EffiTest — efficient delay test and statistical prediction for
configuring post-silicon tunable buffers.

Full reproduction of G. L. Zhang, B. Li, U. Schlichtmann, DAC 2016
(DOI 10.1145/2897937.2898017).

Quickstart::

    from repro import (
        CircuitSpec, generate_circuit, EffiTest,
        sample_circuit, operating_periods,
    )

    circuit = generate_circuit(CircuitSpec("demo", 211, 5597, 2, 80), seed=1)
    chips = sample_circuit(circuit, 1000, seed=2)
    t1, t2 = operating_periods(chips)
    framework = EffiTest(circuit)
    prep = framework.prepare(clock_period=t1)
    result = framework.run(chips, t1, prep)
    print(result.mean_iterations, result.yield_fraction)

Subpackages
-----------
``repro.core``
    The paper's contribution: statistical prediction, grouping/selection,
    test multiplexing, aligned delay test, buffer configuration, hold
    bounds, yields, end-to-end framework.
``repro.circuit``
    Circuit substrate: cell library, netlists/.bench, placement, FF-to-FF
    paths, tunable buffers, calibrated synthetic benchmark generator.
``repro.variation``
    Process variation and SSTA: parameters, spatial grid correlation,
    canonical forms, joint Gaussian path models, PCA, Monte-Carlo sampling.
``repro.tester``
    ATE simulation: pass/fail oracle, path-wise frequency stepping, scan
    cost model.
``repro.opt``
    Optimization substrate: LP/MILP modelling + solvers, difference
    constraints (Bellman–Ford), maximum mean cycle, weighted medians.
``repro.experiments``
    Reproduction harness for Table 1, Table 2, Figure 7 and Figure 8.
"""

from repro.circuit import (
    BufferPlan,
    Circuit,
    CircuitSpec,
    Library,
    Netlist,
    PathSet,
    TunableBuffer,
    default_library,
    generate_circuit,
    plan_buffers,
)
from repro.core import (
    EffiTest,
    EffiTestConfig,
    PopulationRunResult,
    Preparation,
    ideal_yield,
    no_buffer_yield,
    operating_periods,
    sample_circuit,
)
from repro.variation import PathDelayModel, SpatialModel

__version__ = "1.0.0"

__all__ = [
    "BufferPlan",
    "Circuit",
    "CircuitSpec",
    "EffiTest",
    "EffiTestConfig",
    "Library",
    "Netlist",
    "PathDelayModel",
    "PathSet",
    "PopulationRunResult",
    "Preparation",
    "SpatialModel",
    "TunableBuffer",
    "default_library",
    "generate_circuit",
    "ideal_yield",
    "no_buffer_yield",
    "operating_periods",
    "plan_buffers",
    "sample_circuit",
    "__version__",
]
