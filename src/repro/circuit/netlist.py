"""Gate-level netlist representation.

Signals are the nodes: every signal is driven by a primary input, a gate, or
a flip-flop's Q output.  The combinational timing graph connects a gate's
input signals to its output signal; flip-flops cut the graph (their D pin is
a combinational endpoint, their Q pin a combinational start point), which is
exactly the FF-to-FF path structure EffiTest tests and tunes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx


@dataclass(frozen=True)
class Gate:
    """A combinational gate instance: ``output = cell(inputs...)``."""

    output: str
    cell: str
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.output:
            raise ValueError("gate output signal must be named")


@dataclass(frozen=True)
class FlipFlop:
    """A D flip-flop: ``q_output = DFF(d_input)``."""

    q_output: str
    d_input: str
    cell: str = "DFF"

    @property
    def name(self) -> str:
        return self.q_output


@dataclass
class Netlist:
    """A named netlist of primary IOs, gates and flip-flops."""

    name: str
    primary_inputs: list[str] = field(default_factory=list)
    primary_outputs: list[str] = field(default_factory=list)
    gates: dict[str, Gate] = field(default_factory=dict)
    flops: dict[str, FlipFlop] = field(default_factory=dict)

    # -- construction -----------------------------------------------------------

    def add_input(self, signal: str) -> None:
        if signal in self.primary_inputs:
            raise ValueError(f"duplicate primary input {signal!r}")
        self.primary_inputs.append(signal)

    def add_output(self, signal: str) -> None:
        if signal in self.primary_outputs:
            raise ValueError(f"duplicate primary output {signal!r}")
        self.primary_outputs.append(signal)

    def add_gate(self, output: str, cell: str, inputs: tuple[str, ...]) -> Gate:
        self._check_driver_free(output)
        gate = Gate(output, cell, tuple(inputs))
        self.gates[output] = gate
        return gate

    def add_flop(self, q_output: str, d_input: str) -> FlipFlop:
        self._check_driver_free(q_output)
        flop = FlipFlop(q_output, d_input)
        self.flops[q_output] = flop
        return flop

    def _check_driver_free(self, signal: str) -> None:
        if signal in self.gates or signal in self.flops or signal in self.primary_inputs:
            raise ValueError(f"signal {signal!r} already driven")

    # -- queries -------------------------------------------------------------------

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    @property
    def n_flops(self) -> int:
        return len(self.flops)

    def signals(self) -> set[str]:
        """All driven or primary signals."""
        out = set(self.primary_inputs)
        out.update(self.gates)
        out.update(self.flops)
        return out

    def driver_of(self, signal: str) -> Gate | FlipFlop | None:
        """The gate/flop driving ``signal`` (None for primary inputs)."""
        if signal in self.gates:
            return self.gates[signal]
        if signal in self.flops:
            return self.flops[signal]
        return None

    def combinational_graph(self) -> nx.DiGraph:
        """Signal-level DAG; flip-flop D inputs are sinks, Q outputs sources.

        Nodes are signal names.  An edge ``a -> b`` means signal ``a`` is an
        input of the gate driving ``b``.  Flip-flops contribute no edges (the
        graph is cut at sequential elements).
        """
        graph = nx.DiGraph()
        graph.add_nodes_from(self.signals())
        for gate in self.gates.values():
            for source in gate.inputs:
                graph.add_edge(source, gate.output)
        return graph

    def validate(self) -> None:
        """Check structural sanity; raises ValueError on problems."""
        known = self.signals()
        for gate in self.gates.values():
            for signal in gate.inputs:
                if signal not in known:
                    raise ValueError(
                        f"gate {gate.output!r} reads undriven signal {signal!r}"
                    )
        for flop in self.flops.values():
            if flop.d_input not in known:
                raise ValueError(
                    f"flop {flop.name!r} reads undriven signal {flop.d_input!r}"
                )
        for signal in self.primary_outputs:
            if signal not in known:
                raise ValueError(f"primary output {signal!r} is undriven")
        graph = self.combinational_graph()
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise ValueError(f"combinational cycle detected: {cycle[:4]}...")

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, {len(self.primary_inputs)} PIs, "
            f"{len(self.primary_outputs)} POs, {self.n_gates} gates, "
            f"{self.n_flops} FFs)"
        )
