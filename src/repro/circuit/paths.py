"""Flip-flop-to-flip-flop timing paths.

:class:`PathSet` is the core data structure EffiTest operates on: the list
of FF-pair paths whose *maximum* delays ``D_ij = d_ij + s_j`` (eq. 1 of the
paper, setup time folded in) are needed to configure the tuning buffers,
together with their joint Gaussian model.  :class:`ShortPathSet` carries the
hold-time requirements ``~d_ij = h_j - d_ij_min`` (eq. 2) used by §3.5.

The module also implements gate-level path extraction from a netlist (the
flow the paper runs on mapped ISCAS89/TAU13 circuits): enumerate the most
critical paths per FF pair by nominal delay with suffix-bound pruning, then
sum gate canonical forms along each path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.delays import gate_delay_form
from repro.circuit.library import Library, SequentialCell
from repro.circuit.netlist import Netlist
from repro.circuit.placement import Placement
from repro.variation.canonical import CanonicalForm
from repro.variation.correlation import PathDelayModel
from repro.variation.spatial import SpatialModel


@dataclass(frozen=True)
class TimedPath:
    """One FF-to-FF path with its statistical (maximum) delay."""

    source: str
    sink: str
    form: CanonicalForm
    label: str = ""


@dataclass(frozen=True)
class PathSet:
    """Paths over a shared flip-flop universe, with a joint delay model.

    ``source_idx[p]`` / ``sink_idx[p]`` index into ``ff_names``; the delay of
    path ``p`` is row ``p`` of ``model``.
    """

    ff_names: tuple[str, ...]
    source_idx: np.ndarray
    sink_idx: np.ndarray
    model: PathDelayModel
    labels: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        n = self.model.n_paths
        source_idx = np.asarray(self.source_idx, dtype=np.intp)
        sink_idx = np.asarray(self.sink_idx, dtype=np.intp)
        if source_idx.shape != (n,) or sink_idx.shape != (n,):
            raise ValueError("endpoint index arrays must match the model size")
        if n and (source_idx.max(initial=0) >= len(self.ff_names)
                  or sink_idx.max(initial=0) >= len(self.ff_names)):
            raise ValueError("endpoint index out of range of ff_names")
        labels = self.labels if self.labels else tuple(
            f"p{i}" for i in range(n)
        )
        if len(labels) != n:
            raise ValueError("labels must match the number of paths")
        object.__setattr__(self, "source_idx", source_idx)
        object.__setattr__(self, "sink_idx", sink_idx)
        object.__setattr__(self, "labels", labels)

    @staticmethod
    def from_timed_paths(
        paths: list[TimedPath],
        ff_names: list[str] | tuple[str, ...],
        n_factors: int | None = None,
    ) -> "PathSet":
        index = {name: i for i, name in enumerate(ff_names)}
        model = PathDelayModel.from_canonical_forms(
            [p.form for p in paths], n_factors
        )
        return PathSet(
            tuple(ff_names),
            np.array([index[p.source] for p in paths], dtype=np.intp),
            np.array([index[p.sink] for p in paths], dtype=np.intp),
            model,
            tuple(p.label or f"{p.source}->{p.sink}#{i}" for i, p in enumerate(paths)),
        )

    @property
    def n_paths(self) -> int:
        return self.model.n_paths

    def endpoints(self, path: int) -> tuple[str, str]:
        return (
            self.ff_names[self.source_idx[path]],
            self.ff_names[self.sink_idx[path]],
        )

    def touched_ffs(self) -> list[str]:
        """Names of flip-flops incident to at least one path."""
        used = set(self.source_idx.tolist()) | set(self.sink_idx.tolist())
        return [self.ff_names[i] for i in sorted(used)]

    def subset(self, indices) -> "PathSet":
        idx = np.asarray(indices, dtype=np.intp)
        return PathSet(
            self.ff_names,
            self.source_idx[idx],
            self.sink_idx[idx],
            self.model.subset(idx),
            tuple(self.labels[i] for i in idx),
        )

    def with_model(self, model: PathDelayModel) -> "PathSet":
        """Same structure with a replaced delay model (e.g. inflated sigma)."""
        if model.n_paths != self.n_paths:
            raise ValueError("replacement model must keep the path count")
        return PathSet(
            self.ff_names, self.source_idx, self.sink_idx, model, self.labels
        )


@dataclass(frozen=True)
class ShortPathSet(PathSet):
    """Hold-time requirements per FF pair.

    The model rows are the *requirements* ``~d_ij = h_j - d_ij_min``: the
    hold constraint on buffer values is ``x_i - x_j >= ~d_ij`` (eq. 2).
    """


# ----------------------------------------------------------------------------
# Gate-level extraction
# ----------------------------------------------------------------------------


def extract_ff_paths(
    netlist: Netlist,
    library: Library,
    placement: Placement,
    spatial: SpatialModel,
    max_paths_per_pair: int = 3,
    slack_window_fraction: float = 0.15,
) -> tuple[PathSet, ShortPathSet]:
    """Enumerate critical FF-to-FF paths of a netlist.

    For every flip-flop source, paths are enumerated by DFS over the signal
    DAG; a prefix is pruned when even its best completion falls more than
    ``slack_window_fraction`` of the global critical delay short of the
    worst path through this source.  Per (source, sink) pair the top
    ``max_paths_per_pair`` paths by nominal delay are kept.

    Returns the long-path :class:`PathSet` (setup folded in) and the
    corresponding hold requirements (one per retained FF pair, built from
    each pair's *minimum*-delay path).
    """
    flop_cell = library.flip_flop
    assert isinstance(flop_cell, SequentialCell)

    forms: dict[str, CanonicalForm] = {}
    nominal: dict[str, float] = {}
    for gate in netlist.gates.values():
        cell = library.cell(gate.cell)
        x, y = placement.location(gate.output)
        forms[gate.output] = gate_delay_form(cell, x, y, spatial)
        nominal[gate.output] = cell.nominal_delay

    fanout: dict[str, list[str]] = {s: [] for s in netlist.signals()}
    for gate in netlist.gates.values():
        for source in gate.inputs:
            fanout[source].append(gate.output)

    # Which signals feed a flip-flop D input (path sinks).
    sinks_at: dict[str, list[str]] = {}
    for flop in netlist.flops.values():
        sinks_at.setdefault(flop.d_input, []).append(flop.name)

    # Longest/shortest nominal completion from each signal to any FF D pin.
    longest = _suffix_bounds(netlist, fanout, nominal, sinks_at, maximize=True)
    shortest = _suffix_bounds(netlist, fanout, nominal, sinks_at, maximize=False)

    critical = max(
        (longest.get(flop.q_output, -np.inf) for flop in netlist.flops.values()),
        default=0.0,
    )
    window = max(critical, 0.0) * slack_window_fraction

    long_paths: list[TimedPath] = []
    short_best: dict[tuple[str, str], list[str]] = {}
    for flop in netlist.flops.values():
        start = flop.q_output
        if longest.get(start, -np.inf) == -np.inf:
            continue
        threshold = longest[start] - window
        collected: dict[tuple[str, str], list[tuple[float, list[str]]]] = {}
        _enumerate_paths(
            start, 0.0, [start], fanout, nominal, sinks_at, longest,
            threshold, collected, max_paths_per_pair,
        )
        for (src, snk), entries in collected.items():
            entries.sort(key=lambda e: -e[0])
            for rank, (_, signals) in enumerate(entries[:max_paths_per_pair]):
                form = _path_form(signals, forms, flop_cell, placement, spatial)
                long_paths.append(
                    TimedPath(src, snk, form, f"{src}->{snk}#{rank}")
                )
        # Shortest path per pair for hold requirements.
        for (src, snk), signals in _shortest_paths(
            start, fanout, nominal, sinks_at, shortest
        ).items():
            short_best[(src, snk)] = signals

    ff_names = sorted(netlist.flops)
    long_set = PathSet.from_timed_paths(long_paths, ff_names, spatial.n_factors)

    used_pairs = {
        (long_set.ff_names[s], long_set.ff_names[t])
        for s, t in zip(long_set.source_idx, long_set.sink_idx)
    }
    short_paths = []
    for (src, snk), signals in sorted(short_best.items()):
        if (src, snk) not in used_pairs:
            continue
        min_form = _path_form(signals, forms, flop_cell, placement, spatial,
                              include_setup=False)
        requirement = (min_form.scaled(-1.0)) + flop_cell.hold_time
        short_paths.append(TimedPath(src, snk, requirement, f"hold:{src}->{snk}"))
    base = PathSet.from_timed_paths(short_paths, ff_names, spatial.n_factors)
    short_set = ShortPathSet(
        base.ff_names, base.source_idx, base.sink_idx, base.model, base.labels
    )
    return long_set, short_set


def _suffix_bounds(netlist, fanout, nominal, sinks_at, maximize: bool):
    """Best (max or min) nominal completion from each signal to any FF sink."""
    import networkx as nx

    graph = netlist.combinational_graph()
    worst = -np.inf if maximize else np.inf
    pick = max if maximize else min
    bounds: dict[str, float] = {}
    for node in reversed(list(nx.topological_sort(graph))):
        best = worst
        if node in sinks_at:
            best = pick(best, 0.0)
        for succ in fanout.get(node, []):
            through = bounds.get(succ, worst)
            if through != worst:
                best = pick(best, through + nominal.get(succ, 0.0))
        bounds[node] = best
    return bounds


def _enumerate_paths(
    node, prefix, signals, fanout, nominal, sinks_at, longest,
    threshold, collected, cap,
):
    if node in sinks_at:
        for sink_ff in sinks_at[node]:
            key = (signals[0], sink_ff)
            bucket = collected.setdefault(key, [])
            bucket.append((prefix, list(signals)))
            if len(bucket) > 8 * cap:
                bucket.sort(key=lambda e: -e[0])
                del bucket[4 * cap :]
    for succ in fanout.get(node, []):
        gate_delay = nominal.get(succ, 0.0)
        best_completion = longest.get(succ, -np.inf)
        if best_completion == -np.inf:
            continue
        if prefix + gate_delay + best_completion < threshold:
            continue
        signals.append(succ)
        _enumerate_paths(
            succ, prefix + gate_delay, signals, fanout, nominal, sinks_at,
            longest, threshold, collected, cap,
        )
        signals.pop()


def _shortest_paths(start, fanout, nominal, sinks_at, shortest):
    """Minimum-nominal-delay path from ``start`` to each reachable FF sink.

    Single topological relaxation with parent pointers (the graph is a DAG,
    so this is exact and linear in the reachable subgraph).
    """
    dist: dict[str, float] = {start: 0.0}
    parent: dict[str, str] = {}
    order = [start]
    seen = {start}
    # BFS order is sufficient for relaxation here because we process by
    # repeated passes until stable; depth is small in practice.
    head = 0
    while head < len(order):
        node = order[head]
        head += 1
        for succ in fanout.get(node, []):
            if shortest.get(succ, np.inf) == np.inf:
                continue
            candidate = dist[node] + nominal.get(succ, 0.0)
            if candidate < dist.get(succ, np.inf) - 1e-15:
                dist[succ] = candidate
                parent[succ] = node
                if succ in seen:
                    order.append(succ)  # re-relax downstream of improvement
                else:
                    seen.add(succ)
                    order.append(succ)
            elif succ not in seen:
                seen.add(succ)
                order.append(succ)

    results: dict[tuple[str, str], list[str]] = {}
    best_cost: dict[tuple[str, str], float] = {}
    for node, sink_ffs in sinks_at.items():
        if node not in dist:
            continue
        signals: list[str] = []
        cursor = node
        while cursor != start:
            signals.append(cursor)
            cursor = parent[cursor]
        signals.append(start)
        signals.reverse()
        for sink_ff in sink_ffs:
            key = (start, sink_ff)
            if dist[node] < best_cost.get(key, np.inf):
                best_cost[key] = dist[node]
                results[key] = signals
    return results


def _path_form(signals, forms, flop_cell, placement, spatial, include_setup=True):
    """Sum gate forms along a signal path (+ clk->q at the source FF)."""
    x, y = placement.location(signals[0])
    total = gate_delay_form(flop_cell, x, y, spatial)  # clk->q of source FF
    for signal in signals[1:]:
        total = total + forms[signal]
    if include_setup:
        total = total + flop_cell.setup_time
    return total
