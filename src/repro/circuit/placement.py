"""Die placement.

Spatial correlation makes *where* gates sit determine how path delays
correlate, so both circuit flows need locations on the unit die:

* the gate-level flow places netlist signals (flip-flops seeded randomly or
  in clusters, gates relaxed to the centroid of their neighbours), and
* the synthetic generator places virtual gates along source-to-sink routes
  (see :mod:`repro.circuit.generator`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import Netlist
from repro.utils.rng import RandomState, as_generator

Location = tuple[float, float]


@dataclass(frozen=True)
class Placement:
    """Locations of signals (gate outputs / FF outputs / PIs) on [0,1]^2."""

    locations: dict[str, Location]

    def location(self, signal: str) -> Location:
        return self.locations[signal]

    def __contains__(self, signal: str) -> bool:
        return signal in self.locations

    def __len__(self) -> int:
        return len(self.locations)


def _clip01(value: float) -> float:
    return min(max(value, 0.0), 1.0)


def random_placement(netlist: Netlist, seed: RandomState = None) -> Placement:
    """Uniformly random placement of every signal."""
    rng = as_generator(seed)
    locations = {
        signal: (float(rng.uniform()), float(rng.uniform()))
        for signal in sorted(netlist.signals())
    }
    return Placement(locations)


def relaxed_placement(
    netlist: Netlist,
    seed: RandomState = None,
    sweeps: int = 3,
    jitter: float = 0.02,
) -> Placement:
    """Random seed placement refined by neighbour-centroid relaxation.

    Flip-flops and primary inputs stay fixed; each sweep moves every gate to
    the average position of its fan-in signals and fan-out gates, plus a
    small jitter.  This pulls logic cones together, giving the physically
    clustered critical paths the paper's §3.1 argues for.
    """
    rng = as_generator(seed)
    locations = dict(random_placement(netlist, rng).locations)
    anchors = set(netlist.primary_inputs) | set(netlist.flops)

    fanouts: dict[str, list[str]] = {s: [] for s in locations}
    for gate in netlist.gates.values():
        for source in gate.inputs:
            fanouts[source].append(gate.output)

    for _ in range(sweeps):
        updates: dict[str, Location] = {}
        for gate in netlist.gates.values():
            neighbours = list(gate.inputs) + fanouts[gate.output]
            if not neighbours:
                continue
            xs = [locations[n][0] for n in neighbours]
            ys = [locations[n][1] for n in neighbours]
            updates[gate.output] = (
                _clip01(float(np.mean(xs) + rng.normal(0.0, jitter))),
                _clip01(float(np.mean(ys) + rng.normal(0.0, jitter))),
            )
        for signal, loc in updates.items():
            if signal not in anchors:
                locations[signal] = loc
    return Placement(locations)


def route_locations(
    source: Location,
    sink: Location,
    count: int,
    rng: np.random.Generator,
    jitter: float = 0.02,
) -> list[Location]:
    """``count`` locations spread along the straight route source -> sink.

    Used by the synthetic generator to place a path's gates; the jitter
    keeps gates of different paths in the same region from being perfectly
    co-located.
    """
    if count <= 0:
        return []
    fractions = (np.arange(count) + 0.5) / count
    sx, sy = source
    tx, ty = sink
    out = []
    for t in fractions:
        x = _clip01(sx + t * (tx - sx) + float(rng.normal(0.0, jitter)))
        y = _clip01(sy + t * (ty - sy) + float(rng.normal(0.0, jitter)))
        out.append((x, y))
    return out
