"""Standard-cell library with variation sensitivities.

The paper maps ISCAS89/TAU13 circuits to an industry-partner library; we
provide a generic technology-flavoured library with first-order delay
sensitivities to the paper's three process parameters.  Delays are in
picoseconds; ``sensitivities[p]`` is the relative delay change per relative
change of parameter ``p`` (so a gate's relative delay sigma is
``sqrt(sum((s_p * sigma_p)^2))`` under independent parameter fields).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.variation.parameters import (
    OXIDE_THICKNESS,
    THRESHOLD_VOLTAGE,
    TRANSISTOR_LENGTH,
)

#: Default relative delay sensitivities shared by combinational cells.
_COMB_SENSITIVITIES = {
    TRANSISTOR_LENGTH.name: 1.10,
    OXIDE_THICKNESS.name: 0.55,
    THRESHOLD_VOLTAGE.name: 0.85,
}


@dataclass(frozen=True)
class CellType:
    """One library cell: nominal timing plus variation sensitivities."""

    name: str
    n_inputs: int
    nominal_delay: float
    sensitivities: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nominal_delay < 0:
            raise ValueError(f"{self.name}: nominal_delay must be non-negative")
        if self.n_inputs < 0:
            raise ValueError(f"{self.name}: n_inputs must be non-negative")


@dataclass(frozen=True)
class SequentialCell(CellType):
    """A flip-flop cell: clk->q delay plus setup/hold requirements."""

    setup_time: float = 0.0
    hold_time: float = 0.0


@dataclass(frozen=True)
class Library:
    """A named set of cells with lookup by cell name."""

    name: str
    cells: tuple[CellType, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.cells]
        if len(names) != len(set(names)):
            raise ValueError("duplicate cell names in library")

    def cell(self, name: str) -> CellType:
        for c in self.cells:
            if c.name == name:
                return c
        raise KeyError(f"library {self.name!r} has no cell {name!r}")

    def has_cell(self, name: str) -> bool:
        return any(c.name == name for c in self.cells)

    @property
    def flip_flop(self) -> SequentialCell:
        for c in self.cells:
            if isinstance(c, SequentialCell):
                return c
        raise KeyError(f"library {self.name!r} has no sequential cell")

    def combinational_cells(self) -> list[CellType]:
        return [c for c in self.cells if not isinstance(c, SequentialCell)]


def default_library() -> Library:
    """A 45 nm-flavoured library (delays in ps).

    Nominal delays are representative single-stage FO4-ish numbers; the
    experiments only depend on their ratios and on the sensitivity-scaled
    sigmas, both of which are technology-plausible.
    """
    comb = dict(_COMB_SENSITIVITIES)
    return Library(
        name="generic45",
        cells=(
            CellType("INV", 1, 14.0, comb),
            CellType("BUF", 1, 22.0, comb),
            CellType("NAND2", 2, 20.0, comb),
            CellType("NOR2", 2, 24.0, comb),
            CellType("AND2", 2, 28.0, comb),
            CellType("OR2", 2, 30.0, comb),
            CellType("XOR2", 2, 40.0, comb),
            CellType("XNOR2", 2, 40.0, comb),
            CellType("NAND3", 3, 26.0, comb),
            CellType("NOR3", 3, 32.0, comb),
            CellType("AND3", 3, 34.0, comb),
            CellType("OR3", 3, 36.0, comb),
            SequentialCell(
                "DFF",
                1,
                38.0,  # clk->q
                comb,
                setup_time=24.0,
                hold_time=6.0,
            ),
        ),
    )
