"""Post-silicon tunable clock buffers.

A buffer at flip-flop ``i`` delays (or advances, relative to the reference
clock) the clock edge by a configurable ``x_i`` constrained to
``r_i <= x_i <= r_i + tau_i`` (eq. 3 of the paper) on a discrete grid.  The
paper's experiments use a range of 1/8 of the clock period split into 20
steps; both are parameters here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class TunableBuffer:
    """Discrete tunable buffer attached to one flip-flop.

    ``lower`` is ``r_i``, ``width`` is ``tau_i``; the allowed settings are
    ``lower + k * step`` for ``k = 0..n_steps``.
    """

    ff: str
    lower: float
    width: float
    n_steps: int = 20

    def __post_init__(self) -> None:
        if self.width < 0:
            raise ValueError(f"buffer {self.ff}: width must be non-negative")
        if self.n_steps < 1:
            raise ValueError(f"buffer {self.ff}: n_steps must be >= 1")

    @property
    def upper(self) -> float:
        return self.lower + self.width

    @property
    def step(self) -> float:
        return self.width / self.n_steps

    def values(self) -> np.ndarray:
        """All allowed settings (``n_steps + 1`` values)."""
        return self.lower + self.step * np.arange(self.n_steps + 1)

    def quantize(self, x: float) -> float:
        """Nearest allowed setting to ``x`` (clipped into range)."""
        if self.step == 0:
            return self.lower
        k = round((x - self.lower) / self.step)
        k = min(max(k, 0), self.n_steps)
        return self.lower + k * self.step

    def contains(self, x: float, tolerance: float = 1e-9) -> bool:
        """Whether ``x`` is (numerically) one of the allowed settings."""
        if x < self.lower - tolerance or x > self.upper + tolerance:
            return False
        if self.step == 0:
            return abs(x - self.lower) <= tolerance
        k = (x - self.lower) / self.step
        return abs(k - round(k)) * self.step <= tolerance


@dataclass(frozen=True)
class BufferPlan:
    """The set of tunable buffers of a circuit, keyed by flip-flop name.

    Flip-flops without a buffer have a fixed clock arrival (``x = 0``).
    """

    buffers: dict[str, TunableBuffer] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for ff, buf in self.buffers.items():
            if buf.ff != ff:
                raise ValueError(f"buffer keyed {ff!r} names flip-flop {buf.ff!r}")

    @property
    def n_buffers(self) -> int:
        return len(self.buffers)

    @property
    def buffered_ffs(self) -> list[str]:
        return list(self.buffers)

    def has_buffer(self, ff: str) -> bool:
        return ff in self.buffers

    def buffer(self, ff: str) -> TunableBuffer:
        return self.buffers[ff]

    def uniform_step(self) -> float | None:
        """The shared step size if all buffers are lattice-compatible.

        Returns the step when every buffer has the same step size and all
        lower bounds are integer multiples of it (so all settings live on a
        single lattice containing 0, enabling the exact discrete
        difference-constraint solve); otherwise ``None``.
        """
        if not self.buffers:
            return None
        steps = {round(b.step, 12) for b in self.buffers.values()}
        if len(steps) != 1:
            return None
        step = next(iter(steps))
        if step == 0:
            return None
        for buf in self.buffers.values():
            ratio = buf.lower / step
            if abs(ratio - round(ratio)) > 1e-6:
                return None
        return step

    def zero_settings(self) -> dict[str, float]:
        """All-zero settings clipped/quantized into each buffer's range."""
        return {ff: buf.quantize(0.0) for ff, buf in self.buffers.items()}


def uniform_buffer_plan(
    ffs: list[str],
    clock_period: float,
    range_fraction: float = 1.0 / 8.0,
    n_steps: int = 20,
    centered: bool = True,
) -> BufferPlan:
    """Buffers with the paper's range policy: ``tau = clock_period / 8``,
    20 discrete steps, symmetric around zero by default."""
    width = clock_period * range_fraction
    lower = -width / 2.0 if centered else 0.0
    return BufferPlan(
        {ff: TunableBuffer(ff, lower, width, n_steps) for ff in ffs}
    )
