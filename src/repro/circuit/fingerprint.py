"""Content fingerprint of a circuit.

One sha256 digest over everything the downstream algorithms read from a
:class:`~repro.circuit.generator.Circuit`: spec, flip-flop names, buffer
sites, path endpoints, the joint delay models and mutual exclusions.  Two
circuits with equal fingerprints behave identically through the offline
preparation and chip sampling; anything that changes delay statistics
(e.g. :meth:`Circuit.with_inflated_randomness`) changes the digest.

Lives in the circuit layer so both the core data substrate (lazy
:class:`~repro.core.yields.ChipSource` identities) and the API layer's
content-addressed :mod:`repro.api.cache` can key on it without upward
imports.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import astuple
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.circuit.generator import Circuit


def _update_array(digest: "hashlib._Hash", array: np.ndarray) -> None:
    arr = np.ascontiguousarray(array)
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())


#: Memoized fingerprints keyed by object id; weakref callbacks evict dead
#: entries and an identity check guards against id reuse.
_fingerprint_memo: dict[int, tuple["weakref.ref[Circuit]", str]] = {}


def fingerprint_circuit(circuit: "Circuit") -> str:
    """Hex digest over everything the offline stage reads from a circuit.

    Circuits are immutable, so the digest is memoized per object — repeat
    runs and scenario batches hash the arrays once, not per call.
    """
    memo_key = id(circuit)
    entry = _fingerprint_memo.get(memo_key)
    if entry is not None and entry[0]() is circuit:
        return entry[1]
    fingerprint = _compute_fingerprint(circuit)
    ref = weakref.ref(
        circuit, lambda _ref: _fingerprint_memo.pop(memo_key, None)
    )
    _fingerprint_memo[memo_key] = (ref, fingerprint)
    return fingerprint


def _compute_fingerprint(circuit: "Circuit") -> str:
    digest = hashlib.sha256()
    digest.update(circuit.name.encode())
    digest.update(repr(astuple(circuit.spec)).encode())
    digest.update("\x1f".join(circuit.ff_names).encode())
    digest.update("\x1f".join(circuit.buffered_ffs).encode())
    for path_set in (circuit.paths, circuit.short_paths, circuit.background):
        _update_array(digest, path_set.source_idx)
        _update_array(digest, path_set.sink_idx)
        _update_array(digest, path_set.model.means)
        _update_array(digest, path_set.model.loadings)
        _update_array(digest, path_set.model.independent)
    digest.update(repr(sorted(circuit.mutual_exclusions)).encode())
    return digest.hexdigest()


__all__ = ["fingerprint_circuit"]
