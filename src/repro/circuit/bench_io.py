"""ISCAS89 ``.bench`` reader/writer.

The benchmark circuits of the paper's Table 1 (s9234, s13207, ...) are
distributed in this format.  The reader accepts the common dialect::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = DFF(G14)
    G14 = NAND(G0, G1)
    G17 = NOT(G11)

Gate names are normalized to this library's cells (NOT -> INV, 3+-input
AND/NAND/... -> the 3-input variants, wider gates are decomposed into
2-input trees so any fan-in is accepted).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuit.netlist import Netlist

_LINE = re.compile(r"^\s*(?:(\w[\w\.\[\]]*)\s*=\s*)?(\w+)\s*\(([^)]*)\)\s*$")

_CELL_BY_TYPE = {
    "NOT": {1: "INV"},
    "INV": {1: "INV"},
    "BUF": {1: "BUF"},
    "BUFF": {1: "BUF"},
    "AND": {2: "AND2", 3: "AND3"},
    "NAND": {2: "NAND2", 3: "NAND3"},
    "OR": {2: "OR2", 3: "OR3"},
    "NOR": {2: "NOR2", 3: "NOR3"},
    "XOR": {2: "XOR2"},
    "XNOR": {2: "XNOR2"},
}

_TYPE_BY_CELL = {
    "INV": "NOT",
    "BUF": "BUFF",
    "AND2": "AND",
    "AND3": "AND",
    "NAND2": "NAND",
    "NAND3": "NAND",
    "OR2": "OR",
    "OR3": "OR",
    "NOR2": "NOR",
    "NOR3": "NOR",
    "XOR2": "XOR",
    "XNOR2": "XNOR",
}


class BenchFormatError(ValueError):
    """Raised for malformed .bench content."""


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` text into a :class:`Netlist`."""
    netlist = Netlist(name)
    pending: list[tuple[str, str, tuple[str, ...]]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LINE.match(line)
        if not match:
            raise BenchFormatError(f"line {lineno}: cannot parse {raw!r}")
        target, kind, args_text = match.groups()
        kind = kind.upper()
        args = tuple(a.strip() for a in args_text.split(",") if a.strip())
        if target is None:
            if kind == "INPUT":
                if len(args) != 1:
                    raise BenchFormatError(f"line {lineno}: INPUT takes one signal")
                netlist.add_input(args[0])
            elif kind == "OUTPUT":
                if len(args) != 1:
                    raise BenchFormatError(f"line {lineno}: OUTPUT takes one signal")
                netlist.add_output(args[0])
            else:
                raise BenchFormatError(
                    f"line {lineno}: directive {kind!r} needs an assignment target"
                )
            continue
        pending.append((target, kind, args))

    counter = 0
    for target, kind, args in pending:
        if kind == "DFF":
            if len(args) != 1:
                raise BenchFormatError(f"flop {target!r} must have one D input")
            netlist.add_flop(target, args[0])
            continue
        if kind not in _CELL_BY_TYPE:
            raise BenchFormatError(f"unknown gate type {kind!r} for {target!r}")
        counter = _emit_gate(netlist, target, kind, list(args), counter)
    netlist.validate()
    return netlist


def _emit_gate(
    netlist: Netlist, target: str, kind: str, args: list[str], counter: int
) -> int:
    """Emit ``target = kind(args)``, decomposing wide gates to 2-input trees.

    A wide NAND decomposes as AND-tree + final NAND (and similarly for NOR),
    preserving logic function; for timing purposes only depth matters.
    """
    variants = _CELL_BY_TYPE[kind]
    if len(args) == 1 and 1 in variants:
        netlist.add_gate(target, variants[1], tuple(args))
        return counter
    if len(args) in variants:
        netlist.add_gate(target, variants[len(args)], tuple(args))
        return counter
    if len(args) < 2:
        raise BenchFormatError(f"gate {target!r}: {kind} needs >= 2 inputs")
    inner_kind = {"NAND": "AND", "NOR": "OR"}.get(kind, kind)
    inner_cell = _CELL_BY_TYPE[inner_kind][2]
    while len(args) > 2:
        merged = f"{target}__w{counter}"
        counter += 1
        netlist.add_gate(merged, inner_cell, (args[0], args[1]))
        args = [merged] + args[2:]
    netlist.add_gate(target, _CELL_BY_TYPE[kind][2], tuple(args))
    return counter


def read_bench(path: str | Path) -> Netlist:
    """Read a ``.bench`` file from disk."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(netlist: Netlist) -> str:
    """Serialize a netlist back to ``.bench`` text.

    Cells are mapped back to classic type names; the result round-trips
    through :func:`parse_bench` to an equivalent netlist.
    """
    lines = [f"# {netlist.name}"]
    for signal in netlist.primary_inputs:
        lines.append(f"INPUT({signal})")
    for signal in netlist.primary_outputs:
        lines.append(f"OUTPUT({signal})")
    for flop in netlist.flops.values():
        lines.append(f"{flop.q_output} = DFF({flop.d_input})")
    for gate in netlist.gates.values():
        kind = _TYPE_BY_CELL.get(gate.cell)
        if kind is None:
            raise BenchFormatError(f"cell {gate.cell!r} has no .bench type")
        lines.append(f"{gate.output} = {kind}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"


def save_bench(netlist: Netlist, path: str | Path) -> None:
    """Write a netlist to a ``.bench`` file."""
    Path(path).write_text(write_bench(netlist))
