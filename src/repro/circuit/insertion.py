"""Tunable-buffer insertion (placement of buffers at flip-flops).

The paper assumes buffer locations are fixed before test, citing
criticality-driven insertion methods [3, 12].  This module implements a
criticality-mass heuristic in that spirit: flip-flops are ranked by the
probability mass their incident paths put beyond a target period, and the
top ``n_buffers`` (fewer than 1 % of flip-flops in the paper's Table 1)
receive buffers.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.circuit.buffers import BufferPlan, uniform_buffer_plan
from repro.circuit.paths import PathSet


def criticality_scores(
    paths: PathSet, target_period: float | None = None
) -> dict[str, float]:
    """Per-flip-flop criticality mass.

    Each path contributes ``P(D > target)`` to both of its endpoints; the
    default target is the 90th percentile of the statistically most critical
    path, which makes scores comparable across circuits.
    """
    means = paths.model.means
    stds = paths.model.stds()
    if target_period is None:
        target_period = float(np.max(means + 1.2816 * stds))  # 90 % quantile
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(stds > 0, (target_period - means) / np.where(stds > 0, stds, 1.0), np.inf)
    exceed = 1.0 - stats.norm.cdf(z)

    scores: dict[str, float] = {name: 0.0 for name in paths.ff_names}
    for p in range(paths.n_paths):
        src, snk = paths.endpoints(p)
        scores[src] += float(exceed[p])
        scores[snk] += float(exceed[p])
    return scores


def select_buffered_ffs(
    paths: PathSet,
    n_buffers: int,
    target_period: float | None = None,
) -> list[str]:
    """Pick the ``n_buffers`` most critical flip-flops (deterministic ties)."""
    if n_buffers < 0:
        raise ValueError("n_buffers must be non-negative")
    scores = criticality_scores(paths, target_period)
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return [name for name, _ in ranked[:n_buffers]]


def plan_buffers(
    buffered_ffs: list[str],
    clock_period: float,
    range_fraction: float = 1.0 / 8.0,
    n_steps: int = 20,
) -> BufferPlan:
    """Buffer ranges per the paper's policy (tau = clock period / 8, 20 steps)."""
    if clock_period <= 0:
        raise ValueError("clock_period must be positive")
    return uniform_buffer_plan(
        buffered_ffs, clock_period, range_fraction=range_fraction, n_steps=n_steps
    )
