"""Circuit substrate: library, netlists, placement, paths, buffers.

Two flows produce the :class:`~repro.circuit.paths.PathSet` objects EffiTest
consumes: the gate-level flow (``.bench`` netlist -> placement -> canonical
path delays) and the calibrated synthetic generator that reproduces the
published benchmark statistics of the paper's Table 1.
"""

from repro.circuit.bench_io import (
    BenchFormatError,
    parse_bench,
    read_bench,
    save_bench,
    write_bench,
)
from repro.circuit.buffers import BufferPlan, TunableBuffer, uniform_buffer_plan
from repro.circuit.delays import gate_delay_form, total_sigma_fraction
from repro.circuit.fingerprint import fingerprint_circuit
from repro.circuit.from_netlist import circuit_from_netlist
from repro.circuit.generator import Circuit, CircuitSpec, generate_circuit
from repro.circuit.insertion import (
    criticality_scores,
    plan_buffers,
    select_buffered_ffs,
)
from repro.circuit.library import CellType, Library, SequentialCell, default_library
from repro.circuit.netlist import FlipFlop, Gate, Netlist
from repro.circuit.paths import PathSet, ShortPathSet, TimedPath, extract_ff_paths
from repro.circuit.placement import (
    Placement,
    random_placement,
    relaxed_placement,
    route_locations,
)

__all__ = [
    "BenchFormatError",
    "BufferPlan",
    "CellType",
    "Circuit",
    "CircuitSpec",
    "FlipFlop",
    "Gate",
    "Library",
    "Netlist",
    "PathSet",
    "Placement",
    "SequentialCell",
    "ShortPathSet",
    "TimedPath",
    "TunableBuffer",
    "circuit_from_netlist",
    "criticality_scores",
    "default_library",
    "extract_ff_paths",
    "fingerprint_circuit",
    "gate_delay_form",
    "generate_circuit",
    "parse_bench",
    "plan_buffers",
    "random_placement",
    "read_bench",
    "relaxed_placement",
    "route_locations",
    "save_bench",
    "select_buffered_ffs",
    "total_sigma_fraction",
    "uniform_buffer_plan",
    "write_bench",
]
