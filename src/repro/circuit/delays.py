"""Gate delay canonical forms under spatial process variation.

Bridges the library (nominal delay + parameter sensitivities), the spatial
model (factor profile of a die location) and the canonical-form algebra:

    d_gate = d0 * (1 + sum_p s_p * sigma_p * xi_p(x, y))

where ``xi_p`` is parameter ``p``'s unit-variance spatial field.  The
resulting :class:`~repro.variation.canonical.CanonicalForm` carries one
coefficient per (parameter, grid-cell) factor plus the gate-private
independent term.
"""

from __future__ import annotations

from repro.circuit.library import CellType
from repro.variation.canonical import CanonicalForm
from repro.variation.spatial import SpatialModel


def gate_delay_form(
    cell: CellType,
    x: float,
    y: float,
    spatial: SpatialModel,
    nominal_override: float | None = None,
) -> CanonicalForm:
    """Canonical delay of one ``cell`` instance placed at ``(x, y)``.

    ``nominal_override`` substitutes the library's nominal delay (the
    synthetic generator uses it to hit calibrated path-delay targets while
    keeping the library's *relative* sensitivities).
    """
    nominal = cell.nominal_delay if nominal_override is None else nominal_override
    if nominal < 0:
        raise ValueError(f"nominal delay must be non-negative, got {nominal}")
    indices, coeffs, independent_coeff = spatial.factor_profile(x, y)
    block = spatial.factors_per_parameter

    sensitivities: dict[int, float] = {}
    independent_var = 0.0
    for p_index, parameter in enumerate(spatial.space):
        scale = nominal * cell.sensitivities.get(parameter.name, 0.0) * parameter.sigma_fraction
        if scale == 0.0:
            continue
        offset = p_index * block
        for idx, coeff in zip(indices, coeffs):
            key = offset + int(idx)
            sensitivities[key] = sensitivities.get(key, 0.0) + scale * float(coeff)
        independent_var += (scale * independent_coeff) ** 2
    return CanonicalForm(nominal, sensitivities, independent_var**0.5)


def total_sigma_fraction(cell: CellType, spatial: SpatialModel) -> float:
    """Relative delay sigma of a cell under the spatial model's parameters.

    Useful for calibration: a path of n perfectly correlated gates has this
    same relative sigma; independent gates would divide it by sqrt(n).
    """
    variance = 0.0
    for parameter in spatial.space:
        s = cell.sensitivities.get(parameter.name, 0.0) * parameter.sigma_fraction
        variance += s * s
    return variance**0.5
