"""Calibrated synthetic circuit generator.

The paper evaluates on ISCAS89/TAU13 netlists mapped to an industry
standard-cell library — artefacts we cannot redistribute.  This generator
reproduces, per circuit, everything EffiTest's algorithms actually consume:

* the published sizes of Table 1 (``ns`` flip-flops, ``ng`` gates,
  ``nb`` buffers, ``np`` required paths),
* the *physical clustering* of critical paths around buffered flip-flops
  that §3.1's statistical prediction exploits (paths are built from virtual
  gates placed along routes inside per-buffer clusters of the spatial
  correlation grid),
* converging/diverging path structure at flip-flops (shared endpoint pools)
  that makes test multiplexing (§3.2) non-trivial,
* short-path hold requirements (§3.5) per flip-flop pair, and
* untunable background paths that cap the achievable yield, plus ATPG-style
  mutual exclusions between paths.

Delay *scale* is technology-flavoured (ps); all experiment quantities are
ratios (iteration counts, yield fractions), so only the statistical shape
matters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.circuit.library import Library, SequentialCell, default_library
from repro.circuit.paths import PathSet, ShortPathSet, TimedPath
from repro.circuit.placement import route_locations
from repro.circuit.delays import gate_delay_form
from repro.utils.rng import RandomState, spawn_rngs
from repro.variation.canonical import CanonicalForm
from repro.variation.spatial import SpatialModel


@dataclass(frozen=True)
class CircuitSpec:
    """Published statistics plus generation knobs for one benchmark circuit."""

    name: str
    n_flipflops: int
    n_gates: int
    n_buffers: int
    n_paths: int
    depth_mean: float = 16.0
    depth_min: int = 6
    cluster_radius: float = 0.04
    lobe_offset: float = 0.30
    cross_cluster_fraction: float = 0.20
    background_fraction: float = 0.25
    background_scale: float = 0.86
    path_skew_sigma: float = 0.03
    cluster_skew_sigma: float = 0.03
    criticality_decay: float = 0.22
    short_delay_fraction: float = 0.30
    exclusion_probability: float = 0.04
    endpoint_pool_divisor: int = 3

    def __post_init__(self) -> None:
        if min(self.n_flipflops, self.n_gates, self.n_buffers, self.n_paths) <= 0:
            raise ValueError(f"{self.name}: circuit sizes must be positive")
        if self.n_buffers > self.n_flipflops:
            raise ValueError(f"{self.name}: more buffers than flip-flops")


@dataclass(frozen=True)
class Circuit:
    """A generated (or extracted) circuit at the abstraction EffiTest needs."""

    name: str
    spec: CircuitSpec
    ff_names: tuple[str, ...]
    buffered_ffs: tuple[str, ...]
    paths: PathSet
    short_paths: ShortPathSet
    background: PathSet
    mutual_exclusions: frozenset[tuple[int, int]]
    spatial: SpatialModel

    @property
    def n_required_paths(self) -> int:
        return self.paths.n_paths

    def with_inflated_randomness(self, factor: float = 1.1) -> "Circuit":
        """Fig. 7 variant: all path sigmas scaled by ``factor``, covariances
        (loading matrices) unchanged."""
        return replace(
            self,
            paths=self.paths.with_model(self.paths.model.inflate_randomness(factor)),
            background=self.background.with_model(
                self.background.model.inflate_randomness(factor)
            ),
        )


@dataclass
class _ClusterLayout:
    """One buffered flip-flop's physical neighbourhood.

    Feeder (into-buffer) and sink (out-of-buffer) logic sit in two spatially
    offset lobes: critical cones entering and leaving a flip-flop occupy
    different die regions, so the two sides decorrelate partially — exactly
    the imbalance clock tuning monetizes.
    """

    center: tuple[float, float]
    feeder_center: tuple[float, float]
    sink_center: tuple[float, float]
    feeders: list[str] = field(default_factory=list)
    sinks: list[str] = field(default_factory=list)


def generate_circuit(
    spec: CircuitSpec,
    spatial: SpatialModel | None = None,
    library: Library | None = None,
    seed: RandomState = None,
) -> Circuit:
    """Generate a circuit matching ``spec`` (deterministic given ``seed``)."""
    spatial = spatial or SpatialModel()
    library = library or default_library()
    rng_place, rng_topo, rng_delay, rng_excl = spawn_rngs(seed, 4)

    nb = spec.n_buffers
    flop_cell = library.flip_flop
    assert isinstance(flop_cell, SequentialCell)
    comb_cells = library.combinational_cells()
    mean_cell_delay = float(np.mean([c.nominal_delay for c in comb_cells]))
    base_path_delay = spec.depth_mean * mean_cell_delay

    # -- clusters and flip-flop universe -------------------------------------
    centers = [
        (float(rng_place.uniform(0.12, 0.88)), float(rng_place.uniform(0.12, 0.88)))
        for _ in range(nb)
    ]
    counts = _cluster_path_counts(spec.n_paths, nb, rng_topo)

    clusters: list[_ClusterLayout] = []
    ff_names: list[str] = [f"B{c}" for c in range(nb)]
    ff_positions: dict[str, tuple[float, float]] = {
        f"B{c}": centers[c] for c in range(nb)
    }
    for c in range(nb):
        angle = float(rng_place.uniform(0.0, 2.0 * math.pi))
        half = spec.lobe_offset / 2.0
        feeder_center = _clip_point(
            centers[c][0] - half * math.cos(angle),
            centers[c][1] - half * math.sin(angle),
        )
        sink_center = _clip_point(
            centers[c][0] + half * math.cos(angle),
            centers[c][1] + half * math.sin(angle),
        )
        layout = _ClusterLayout(
            center=centers[c],
            feeder_center=feeder_center,
            sink_center=sink_center,
        )
        n_endpoints = max(2, math.ceil(counts[c] / (2 * spec.endpoint_pool_divisor)))
        for k in range(n_endpoints):
            for prefix, bucket, lobe in (
                ("F", layout.feeders, feeder_center),
                ("S", layout.sinks, sink_center),
            ):
                name = f"{prefix}{c}_{k}"
                bucket.append(name)
                ff_names.append(name)
                ff_positions[name] = _near(lobe, spec.cluster_radius, rng_place)
        clusters.append(layout)

    n_spare = max(spec.n_flipflops - len(ff_names), 4)
    spare_ffs = [f"U{k}" for k in range(n_spare)]
    for name in spare_ffs:
        ff_names.append(name)
        ff_positions[name] = (
            float(rng_place.uniform()),
            float(rng_place.uniform()),
        )

    # -- required paths --------------------------------------------------------
    cluster_skew = 1.0 + rng_delay.normal(0.0, spec.cluster_skew_sigma, size=nb)

    def path_target(skew: float) -> float:
        """Calibrated nominal delay: few paths near-critical, rest decaying.

        Real flip-flops see one or two truly critical cones and a tail of
        sub-critical ones; without this decay every path would crowd the
        maximum and tuning could never rebalance anything.
        """
        crit = 1.0 - spec.criticality_decay * min(float(rng_delay.exponential()), 3.0)
        jitter = float(np.clip(1.0 + rng_delay.normal(0.0, spec.path_skew_sigma), 0.7, 1.3))
        return base_path_delay * skew * crit * jitter

    required: list[TimedPath] = []
    for c in range(nb):
        n_c = counts[c]
        n_cross = int(round(spec.cross_cluster_fraction * n_c)) if nb > 1 else 0
        n_in = (n_c - n_cross + 1) // 2
        n_out = n_c - n_cross - n_in
        layout = clusters[c]
        for k in range(n_in):
            src = layout.feeders[int(rng_topo.integers(len(layout.feeders)))]
            required.append(
                _make_path(
                    src, f"B{c}", ff_positions, path_target(cluster_skew[c]),
                    spec, spatial, library, flop_cell, rng_topo, rng_delay,
                )
            )
        for k in range(n_out):
            snk = layout.sinks[int(rng_topo.integers(len(layout.sinks)))]
            required.append(
                _make_path(
                    f"B{c}", snk, ff_positions, path_target(cluster_skew[c]),
                    spec, spatial, library, flop_cell, rng_topo, rng_delay,
                )
            )
        for k in range(n_cross):
            other = _nearest_cluster(centers, c)
            skew = 0.5 * (cluster_skew[c] + cluster_skew[other])
            required.append(
                _make_path(
                    f"B{c}", f"B{other}", ff_positions, path_target(skew),
                    spec, spatial, library, flop_cell, rng_topo, rng_delay,
                )
            )
    paths = PathSet.from_timed_paths(required, ff_names, spatial.n_factors)

    # -- hold requirements per used FF pair -------------------------------------
    seen_pairs: list[tuple[str, str]] = []
    seen = set()
    for p in range(paths.n_paths):
        pair = paths.endpoints(p)
        if pair not in seen:
            seen.add(pair)
            seen_pairs.append(pair)
    short_list = [
        _make_hold_requirement(
            src, snk, ff_positions, spec, spatial, library, flop_cell,
            base_path_delay, rng_topo, rng_delay,
        )
        for src, snk in seen_pairs
    ]  # one short path per used FF pair (eq. 2 applies pairwise)
    short_base = PathSet.from_timed_paths(short_list, ff_names, spatial.n_factors)
    short_paths = ShortPathSet(
        short_base.ff_names, short_base.source_idx, short_base.sink_idx,
        short_base.model, short_base.labels,
    )

    # -- untunable background paths ----------------------------------------------
    n_bg = max(4, int(round(spec.background_fraction * spec.n_paths)))
    background_list = []
    for k in range(n_bg):
        src, snk = rng_topo.choice(spare_ffs, size=2, replace=False)
        background_list.append(
            _make_path(
                str(src), str(snk), ff_positions,
                path_target(spec.background_scale),
                spec, spatial, library, flop_cell, rng_topo, rng_delay,
            )
        )
    background = PathSet.from_timed_paths(background_list, ff_names, spatial.n_factors)

    # -- ATPG-style mutual exclusions ----------------------------------------------
    exclusions = set()
    for p in range(paths.n_paths):
        if rng_excl.uniform() < spec.exclusion_probability:
            q = int(rng_excl.integers(paths.n_paths))
            if q != p:
                exclusions.add((min(p, q), max(p, q)))

    return Circuit(
        name=spec.name,
        spec=spec,
        ff_names=tuple(ff_names),
        buffered_ffs=tuple(f"B{c}" for c in range(nb)),
        paths=paths,
        short_paths=short_paths,
        background=background,
        mutual_exclusions=frozenset(exclusions),
        spatial=spatial,
    )


# ----------------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------------


def _cluster_path_counts(n_paths: int, nb: int, rng: np.random.Generator) -> np.ndarray:
    """Uneven split of paths over clusters (Dirichlet weights, min 1 each)."""
    weights = rng.dirichlet(np.full(nb, 2.0))
    counts = np.maximum(np.round(weights * n_paths).astype(int), 1)
    # Fix rounding drift while keeping every cluster non-empty.
    while counts.sum() > n_paths:
        counts[int(np.argmax(counts))] -= 1
    while counts.sum() < n_paths:
        counts[int(np.argmin(counts))] += 1
    return counts


def _nearest_cluster(centers: list[tuple[float, float]], c: int) -> int:
    best, best_d = c, math.inf
    cx, cy = centers[c]
    for other, (ox, oy) in enumerate(centers):
        if other == c:
            continue
        d = (cx - ox) ** 2 + (cy - oy) ** 2
        if d < best_d:
            best, best_d = other, d
    return best


def _clip_point(x: float, y: float) -> tuple[float, float]:
    return (min(max(x, 0.02), 0.98), min(max(y, 0.02), 0.98))


def _near(
    center: tuple[float, float], radius: float, rng: np.random.Generator
) -> tuple[float, float]:
    x = min(max(center[0] + float(rng.normal(0.0, radius)), 0.0), 1.0)
    y = min(max(center[1] + float(rng.normal(0.0, radius)), 0.0), 1.0)
    return (x, y)


def _make_path(
    source: str,
    sink: str,
    positions: dict[str, tuple[float, float]],
    target: float,
    spec: CircuitSpec,
    spatial: SpatialModel,
    library: Library,
    flop_cell: SequentialCell,
    rng_topo: np.random.Generator,
    rng_delay: np.random.Generator,
) -> TimedPath:
    """Build one path: virtual gates along the route, nominal sum = target."""
    depth = max(spec.depth_min, int(rng_topo.poisson(spec.depth_mean)))
    comb_cells = library.combinational_cells()
    cells = [comb_cells[int(rng_topo.integers(len(comb_cells)))] for _ in range(depth)]
    raw = np.array(
        [c.nominal_delay * float(np.clip(rng_delay.normal(1.0, 0.10), 0.5, 1.5))
         for c in cells]
    )
    # Reserve the FF clk->q delay inside the target budget.
    scale = max(target - flop_cell.nominal_delay, 0.2 * target) / raw.sum()
    locations = route_locations(
        positions[source], positions[sink], depth, rng_delay,
        jitter=spec.cluster_radius / 2.0,
    )
    form: CanonicalForm = gate_delay_form(
        flop_cell, positions[source][0], positions[source][1], spatial
    )
    for cell, nominal, (x, y) in zip(cells, raw * scale, locations):
        form = form + gate_delay_form(cell, x, y, spatial, nominal_override=nominal)
    form = form + flop_cell.setup_time  # D_ij = d_ij + s_j (eq. 1)
    return TimedPath(source, sink, form, f"{source}->{sink}")


def _make_hold_requirement(
    source: str,
    sink: str,
    positions: dict[str, tuple[float, float]],
    spec: CircuitSpec,
    spatial: SpatialModel,
    library: Library,
    flop_cell: SequentialCell,
    base_delay: float,
    rng_topo: np.random.Generator,
    rng_delay: np.random.Generator,
) -> TimedPath:
    """Hold requirement ``~d = h_j - d_min`` of the pair's shortest path."""
    depth = max(2, int(round(spec.depth_mean / 3)))
    target = spec.short_delay_fraction * base_delay * float(
        np.clip(1.0 + rng_delay.normal(0.0, spec.path_skew_sigma), 0.5, 1.5)
    )
    comb_cells = library.combinational_cells()
    cells = [comb_cells[int(rng_topo.integers(len(comb_cells)))] for _ in range(depth)]
    raw = np.array([c.nominal_delay for c in cells])
    scale = target / raw.sum()
    locations = route_locations(
        positions[source], positions[sink], depth, rng_delay,
        jitter=spec.cluster_radius / 2.0,
    )
    form: CanonicalForm = gate_delay_form(
        flop_cell, positions[source][0], positions[source][1], spatial
    )
    for cell, nominal, (x, y) in zip(cells, raw * scale, locations):
        form = form + gate_delay_form(cell, x, y, spatial, nominal_override=nominal)
    requirement = form.scaled(-1.0) + flop_cell.hold_time
    return TimedPath(source, sink, requirement, f"hold:{source}->{sink}")
