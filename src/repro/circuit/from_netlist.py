"""Build an EffiTest :class:`Circuit` from a gate-level netlist.

This is the flow the paper runs on mapped ISCAS89/TAU13 circuits: parse the
netlist, place it, extract FF-to-FF paths with statistical delays, pick the
most critical flip-flops for tunable buffers, and split the paths into
*required* (touching a buffered flip-flop; their delays are needed for
configuration) and untunable *background* paths.
"""

from __future__ import annotations

from repro.circuit.generator import Circuit, CircuitSpec
from repro.circuit.insertion import select_buffered_ffs
from repro.circuit.library import Library, default_library
from repro.circuit.netlist import Netlist
from repro.circuit.paths import ShortPathSet, extract_ff_paths
from repro.circuit.placement import relaxed_placement
from repro.utils.rng import RandomState
from repro.variation.spatial import SpatialModel


def circuit_from_netlist(
    netlist: Netlist,
    n_buffers: int,
    library: Library | None = None,
    spatial: SpatialModel | None = None,
    seed: RandomState = None,
    max_paths_per_pair: int = 3,
    slack_window_fraction: float = 0.3,
) -> Circuit:
    """Extract a :class:`Circuit` from ``netlist``.

    ``n_buffers`` flip-flops are selected by criticality mass; paths
    incident to them become the required set (the paper's ``np``), the rest
    become background context.  Hold requirements are restricted to the
    required pairs — fixed-skew pairs need no tuning bound.
    """
    library = library or default_library()
    spatial = spatial or SpatialModel()
    netlist.validate()
    placement = relaxed_placement(netlist, seed=seed)
    all_paths, all_short = extract_ff_paths(
        netlist,
        library,
        placement,
        spatial,
        max_paths_per_pair=max_paths_per_pair,
        slack_window_fraction=slack_window_fraction,
    )
    if all_paths.n_paths == 0:
        raise ValueError("netlist has no FF-to-FF paths to tune")

    buffered = select_buffered_ffs(all_paths, n_buffers)
    buffered_set = set(buffered)

    required_idx, background_idx = [], []
    for p in range(all_paths.n_paths):
        src, snk = all_paths.endpoints(p)
        if src in buffered_set or snk in buffered_set:
            required_idx.append(p)
        else:
            background_idx.append(p)
    if not required_idx:
        raise ValueError("no paths touch the selected buffered flip-flops")
    required = all_paths.subset(required_idx)
    background = all_paths.subset(background_idx or required_idx[:1])

    required_pairs = {
        required.endpoints(p) for p in range(required.n_paths)
    }
    short_idx = [
        p
        for p in range(all_short.n_paths)
        if all_short.endpoints(p) in required_pairs
    ]
    if not short_idx:
        short_idx = list(range(all_short.n_paths))
    short_subset = all_short.subset(short_idx)
    short = ShortPathSet(
        short_subset.ff_names,
        short_subset.source_idx,
        short_subset.sink_idx,
        short_subset.model,
        short_subset.labels,
    )

    spec = CircuitSpec(
        name=netlist.name,
        n_flipflops=netlist.n_flops,
        n_gates=netlist.n_gates,
        n_buffers=len(buffered),
        n_paths=required.n_paths,
    )
    return Circuit(
        name=netlist.name,
        spec=spec,
        ff_names=required.ff_names,
        buffered_ffs=tuple(buffered),
        paths=required,
        short_paths=short,
        background=background,
        mutual_exclusions=frozenset(),
        spatial=spatial,
    )
