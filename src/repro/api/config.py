"""Configuration split along the paper's offline/online seam.

The DAC 2016 flow has a natural two-phase structure: an expensive offline
stage (``Tp``: path selection §3.1, test multiplexing §3.2, hold bounds
§3.5) that depends only on the circuit and a handful of knobs, and a cheap
online stage (``Tt``/``Ts``: aligned test §3.3, prediction + configuration
§3.4) that varies per population and operating period.

:class:`OfflineConfig` holds every knob that changes the offline
preparation — its field tuple is part of the preparation-cache key (see
:mod:`repro.api.cache`).  :class:`OnlineConfig` holds the knobs that can
change between runs *without* invalidating a cached preparation.

The legacy composite ``EffiTestConfig`` (``repro.core.framework``) is kept
as a deprecated shim; its ``offline`` / ``online`` properties project onto
these two classes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class OfflineConfig:
    """Knobs consumed by the offline preparation (the paper's ``Tp``).

    Two instances with equal fields produce byte-identical preparations for
    the same circuit and design period, which is what makes the preparation
    cache sound.
    """

    # §3.1 grouping / selection
    start_threshold: float = 0.95
    threshold_step: float = 0.05
    floor_threshold: float = 0.50
    pc_criterion: str = "largest"
    relative_threshold: float = 0.03
    variance_fraction: float = 0.95
    # §3.2 multiplexing
    fill_slots: bool = True
    fill_sigma_fraction: float = 0.5  # fill only still-poorly-predicted paths
    max_fill_factor: float = 1.0  # fills <= factor * |selected|
    # Slot-fill ranking: "static" scores every candidate once against the
    # selected set (the paper's §3.2 reading, the default); "greedy"
    # re-conditions on each committed fill via the incremental Cholesky
    # predictor (repro.core.prediction.greedy_fill_ranking), so
    # near-collinear candidates stop shadowing each other.
    fill_rank: str = "static"
    batch_affinity: bool = False  # extension: mean-affinity batch packing
    # §3.3 test resolution (epsilon is baked into the preparation)
    epsilon: float | None = None  # None -> calibrated from pathwise target
    pathwise_iterations_target: int = 9
    sigma_window: float = 3.0
    # §3.5 hold bounds
    hold_yield: float = 0.99
    hold_samples: int = 1000
    # Solve the eqs. 19-20 covering MILP exactly (precompiled model through
    # the solver portfolio) instead of the greedy drop heuristic.  Exact
    # solves scale with the sample count, so pair it with a small
    # ``hold_samples``; ``hold_backend`` picks the solver ("auto" routes by
    # size/integrality and consumes warm starts across sweep variants).
    hold_exact: bool = False
    hold_backend: str = "auto"
    # buffer policy (Table 1 setup: tau = T/8, 20 discrete steps)
    range_fraction: float = 1.0 / 8.0
    n_steps: int = 20
    # misc
    test_all_paths: bool = False  # Fig. 8 mode: skip statistical prediction
    seed: int = 20160605

    def cache_fields(self) -> tuple:
        """The hashable field tuple used in preparation-cache keys."""
        return tuple(getattr(self, f.name) for f in fields(self))


@dataclass(frozen=True)
class OnlineConfig:
    """Knobs that vary per run without invalidating cached preparations."""

    # §3.3 aligned test
    align: bool = True
    k0: float = 1000.0
    kd: float = 1.0
    # Population-engine scaling: stream chips through the test and verify
    # stages in shards of at most this many chips (None -> one shard).
    # Bounds peak memory; results are independent of the shard size.  With
    # a lazy :class:`~repro.core.yields.ChipSource` population each shard's
    # delay matrices are materialized on demand and dropped afterwards, so
    # the dense (n_chips, n_paths) matrices never exist in the process.
    # With a process pool, :meth:`repro.api.engine.Engine.run_many` also
    # fans shards across workers (sources travel as lightweight specs).
    # effilint: disable=EFT001 -- sharding only bounds peak memory; results are bit-identical across shard sizes by contract (pinned by tests)
    chip_shard_size: int | None = None
    # §3.4 configuration — xi search tolerance (None -> lattice step / 4)
    xi_tolerance: float | None = None
    # Relaxation engine for the configure stage's feasibility solves:
    #   "auto"       — "compiled" when numba is importable, else
    #                  "vectorized" (the default).
    #   "compiled"   — the numba per-row kernel (repro.kernels.relax);
    #                  degrades to slow pure Python without numba.
    #   "vectorized" — the precompiled ConfigGraph + RelaxKernel path
    #                  (orders of magnitude faster than reference at scale).
    #   "reference"  — the historical per-edge Python sweep, kept for A/B
    #                  identity checks and benchmarks.
    # All engines produce bit-identical ConfigurationResults (pinned by
    # tests, tests/kernels and benchmarks), so like `artifacts` this
    # knob is excluded from result_fields().  (Caveat, mirroring the
    # moments one below: on continuous-mode problems — no shared buffer
    # lattice — witness settings can differ below the solver epsilon when
    # two constraint chains tie within 1e-9; lattice-mode results re-snap
    # and are immune.  See repro.opt.diffconstraints.)
    # effilint: disable=EFT001 -- all kernels produce bit-identical ConfigurationResults (pinned by tests, tests/kernels and bench_configure.py); results never fork on this knob
    configure_kernel: str = "auto"
    # Stepping engine for the test stage's per-iteration bound updates
    # (aligned batch engine and the path-wise baseline): "auto" (default),
    # "compiled" or "vectorized" — see repro.kernels.TEST_KERNELS.  Same
    # contract as configure_kernel: every engine accepts/rejects the same
    # bounds in the same order, so results are bit-identical.
    # effilint: disable=EFT001 -- stepping engines apply identical float updates in identical order (pinned by tests/kernels); results never fork on this knob
    test_kernel: str = "auto"
    # Test-stage iteration budgets:
    #   "uniform"  — every chip steps every batch to the full epsilon
    #                resolution (the paper's flow; bit-identical to the
    #                historical behavior, the default).
    #   "adaptive" — a coarse criticality-allocated pass first, then a
    #                per-chip certificate (corner configure runs + a
    #                guard-banded settings box) proves which verdicts
    #                cannot differ from the full-resolution rerun; only
    #                uncertified chips are re-tested at full resolution.
    #                Verdicts are identical by construction; mean
    #                iterations (t_a) drop (gated by bench_test.py).
    test_budget: str = "uniform"
    # Criticality engine for the adaptive budget allocation — same menu
    # and contract as the other kernel knobs ("auto" | "compiled" |
    # "vectorized" | "reference"; see repro.core.criticality).  All
    # engines produce bit-identical criticality probabilities (pinned by
    # tests/core/test_criticality.py), so the knob never forks results.
    # effilint: disable=EFT001 -- criticality engines are pinned bit-identical (tests/core/test_criticality.py); results never fork on this knob
    criticality_kernel: str = "auto"
    # Intra-run shard parallelism: run the per-shard test/configure/verify
    # work of a *single* run on a thread pool of this many workers (chips
    # are independent; shard parts merge through the same RunReducer path
    # in shard order, so results are bit-identical to the serial loop).
    #   None   — serial shard loop (the default).
    #   "auto" — one worker per available CPU (os.process_cpu_count()).
    #   int    — explicit worker count (>= 1).
    # Takes effect when chip_shard_size splits the population into at
    # least two shards; compiled kernels release the GIL, so threads scale
    # without process fan-out.
    # effilint: disable=EFT001 -- thread fan-out only reorders which shard computes when; parts merge in shard order so results are bit-identical (pinned by tests)
    shard_workers: int | str | None = None
    # Output retention: what a run keeps per chip.
    #   "dense"   — the historical full artifacts (test result, (n_chips,
    #               n_paths) bounds, per-chip configuration).  The default,
    #               so direct runs keep their pre-streaming surface.
    #   "compact" — population statistics plus two small per-chip columns
    #               (pass bitmap, uint16 iteration counts): ~3 bytes/chip.
    #   "summary" — population statistics only; combined with
    #               chip_shard_size, a run's peak memory is O(shard) on the
    #               output side too, independent of the population size.
    # Results are identical across modes — the knob only selects what is
    # *retained*, never what is computed.
    # effilint: disable=EFT001 -- retention selects what a run *keeps*, never what it computes; a richer record answers slimmer requests
    artifacts: str = "dense"

    def __post_init__(self) -> None:
        from repro.api.parallel import validate_shard_workers
        from repro.core.configuration import KERNELS
        from repro.core.reduction import artifacts_rank
        from repro.kernels import TEST_KERNELS

        if self.chip_shard_size is not None and self.chip_shard_size < 1:
            raise ValueError("chip_shard_size must be >= 1")
        artifacts_rank(self.artifacts)
        if self.configure_kernel not in KERNELS:
            raise ValueError(
                f"configure_kernel must be one of {KERNELS}, "
                f"got {self.configure_kernel!r}"
            )
        if self.test_kernel not in TEST_KERNELS:
            raise ValueError(
                f"test_kernel must be one of {TEST_KERNELS}, "
                f"got {self.test_kernel!r}"
            )
        if self.test_budget not in ("uniform", "adaptive"):
            raise ValueError(
                "test_budget must be 'uniform' or 'adaptive', "
                f"got {self.test_budget!r}"
            )
        from repro.core.criticality import CRITICALITY_KERNELS

        if self.criticality_kernel not in CRITICALITY_KERNELS:
            raise ValueError(
                f"criticality_kernel must be one of {CRITICALITY_KERNELS}, "
                f"got {self.criticality_kernel!r}"
            )
        validate_shard_workers(self.shard_workers)

    def result_fields(self) -> tuple:
        """The knobs that determine a run's *numbers*.

        Used in result-store keys (:mod:`repro.results`): shard size and
        retention are excluded because they never change what is computed
        — counts, yields and per-chip columns are bit-identical across
        both by contract.  (One caveat: floating-point *moments* with no
        retained column — iteration moments in pure ``"summary"``
        retention, xi moments everywhere below ``"dense"`` — merge in
        shard order, so two shard sizes can differ in the final ulp;
        moments with a retained column are recomputed exactly.)
        """
        return (
            self.align,
            self.k0,
            self.kd,
            self.xi_tolerance,
            self.test_budget,
        )


__all__ = ["OfflineConfig", "OnlineConfig"]
