"""The staged pipeline engine: cached preparations, batch runs, sweeps.

:class:`Engine` is the production entry point of the reproduction.  It owns
a content-addressed :class:`~repro.api.cache.PreparationCache` and wires
the stage objects of :mod:`repro.api.stages`::

    engine = Engine()
    prep = engine.prepare(circuit, clock_period=t1)          # cached
    result = engine.run(circuit, population, period=t1)       # full flow

Batch serving goes through :class:`Scenario` specs::

    records = engine.run_many([
        Scenario(circuit, period=t1, n_chips=500, seed=1),
        Scenario(circuit, period=t2, n_chips=500, seed=2),
    ])

Scenarios sharing a circuit and offline knobs share one preparation — the
offline stage runs exactly once per distinct cache key.  Population runs
can fan out over a :class:`concurrent.futures.ProcessPoolExecutor` with
``max_workers``; preparations are computed in the parent so workers never
repeat offline work.

Large scenario grids go through :meth:`Engine.sweep`: it expands a
:class:`ScenarioGrid` (or takes scenarios directly), *skips every scenario
already present in a persistent* :class:`~repro.results.RunStore`, fans the
remainder across the process pool, and yields :class:`RunRecord` rows
incrementally — interrupting and re-running a sweep only ever pays for the
scenarios that are still missing.

On the output side the online stages stream chip shards through a
:class:`~repro.core.reduction.RunReducer`; ``OnlineConfig.artifacts``
selects what each run retains (``"summary"`` statistics, ``"compact"``
per-chip columns, or the historical ``"dense"`` arrays — the default).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.api.cache import CacheStats, PreparationCache, PreparationKey
from repro.api.config import OfflineConfig, OnlineConfig
from repro.api.parallel import (
    ShardExecutor,
    resolve_shard_workers,
    validate_max_workers,
)
from repro.api.pipeline import ScenarioPipeline
from repro.api.stages import (
    AlignedTestStage,
    Chips,
    ConfigureStage,
    OfflineRequest,
    OfflineStage,
    PredictStage,
    TestStage,
    VerifyStage,
)
from repro.circuit.fingerprint import fingerprint_circuit
from repro.circuit.generator import Circuit
from repro.core.framework import PopulationRunResult, Preparation
from repro.core.reduction import (
    RunReducer,
    RunSummary,
    merge_run_summaries,
    summarize_shard,
)
from repro.core.yields import ChipSource, CircuitPopulation
from repro.opt.warmstart import WarmStartCache
from repro.tester.freqstep import PathwiseResult, pathwise_frequency_stepping
from repro.utils.rng import derive_seed
from repro.utils.timing import Stopwatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.results.store import RunKey, RunStore


@dataclass(frozen=True)
class Scenario:
    """One batch-run specification: which silicon, tested how, at what period.

    ``population`` overrides ``n_chips``/``seed`` when an explicit chip
    sample (dense, or a lazy :class:`~repro.core.yields.ChipSource` — even
    one drawn from a different circuit variant, as in Fig. 7) must be
    shared across scenarios; otherwise the engine derives a lazy source of
    ``n_chips`` chips from ``seed``.  ``clock_period`` is the design
    period sizing the buffer ranges and defaults to ``period`` — pass it
    explicitly when sweeping ``period`` so the sweep shares one
    preparation.
    """

    circuit: Circuit
    period: float
    n_chips: int = 1000
    offline: OfflineConfig | None = None
    online: OnlineConfig | None = None
    seed: int = 20160605
    clock_period: float | None = None
    population: CircuitPopulation | ChipSource | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.population is None:
            if self.n_chips < 1:
                raise ValueError(
                    f"Scenario needs at least one chip, got n_chips="
                    f"{self.n_chips}: an empty population has no yield or "
                    "iteration statistics"
                )
        elif self.population.n_chips == 0:
            raise ValueError(
                "Scenario population is empty (0 chips): an empty "
                "population has no yield or iteration statistics"
            )

    @property
    def design_period(self) -> float:
        return self.period if self.clock_period is None else self.clock_period

    def chip_source(self) -> CircuitPopulation | ChipSource:
        """The chips this scenario runs on.

        An explicit ``population`` passes through unchanged; otherwise the
        scenario describes a lazy :class:`ChipSource` of ``n_chips`` chips
        whose seed is derived from ``seed`` and the circuit name — the
        exact chips :func:`repro.core.yields.sample_circuit` would draw
        with that derived seed.
        """
        if self.population is not None:
            return self.population
        return ChipSource(
            self.circuit,
            self.n_chips,
            derive_seed(self.seed, self.circuit.name, "population"),
        )


class ScenarioGrid:
    """Cartesian expansion of a scenario sweep.

    Axes: ``circuits`` x ``periods`` x ``n_chips`` x ``seeds`` x
    ``online`` configs; scalars describe singleton axes.  ``clock_period``
    defaults to the *first* period of the grid so the whole period axis of
    one circuit shares a single preparation (pass ``clock_period``
    explicitly to override, e.g. with a circuit's calibrated T1).

    ``ScenarioGrid`` is what :meth:`Engine.sweep` expands; it is also an
    iterable of :class:`Scenario`, so ``run_many(grid)`` works too.
    """

    def __init__(
        self,
        circuits: Circuit | Iterable[Circuit],
        periods: float | Iterable[float],
        *,
        n_chips: int | Iterable[int] = 1000,
        seeds: int | Iterable[int] = 20160605,
        online: OnlineConfig | Iterable[OnlineConfig | None] | None = None,
        offline: OfflineConfig | None = None,
        clock_period: float | None = None,
        label: str = "",
    ):
        self.circuits = (
            (circuits,) if isinstance(circuits, Circuit) else tuple(circuits)
        )
        self.periods = tuple(
            (float(periods),)
            if isinstance(periods, (int, float))
            else (float(p) for p in periods)
        )
        self.n_chips = (
            (int(n_chips),) if isinstance(n_chips, int) else tuple(n_chips)
        )
        self.seeds = (int(seeds),) if isinstance(seeds, int) else tuple(seeds)
        self.online = (
            (online,)
            if online is None or isinstance(online, OnlineConfig)
            else tuple(online)
        )
        self.offline = offline
        self.clock_period = clock_period
        self.label = label
        for name, axis in (
            ("circuits", self.circuits),
            ("periods", self.periods),
            ("n_chips", self.n_chips),
            ("seeds", self.seeds),
            ("online", self.online),
        ):
            if not axis:
                raise ValueError(f"ScenarioGrid axis {name!r} is empty")

    def __len__(self) -> int:
        return (
            len(self.circuits)
            * len(self.periods)
            * len(self.n_chips)
            * len(self.seeds)
            * len(self.online)
        )

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios())

    def _label(
        self, circuit: Circuit, period: float, n: int, seed: int,
        online_index: int,
    ) -> str:
        parts = [self.label or circuit.name, f"T={period:g}"]
        if self.label and len(self.circuits) > 1:
            parts.insert(1, circuit.name)
        if len(self.n_chips) > 1:
            parts.append(f"n={n}")
        if len(self.seeds) > 1:
            parts.append(f"seed={seed}")
        if len(self.online) > 1:
            parts.append(f"online={online_index}")
        return " ".join(parts)

    def scenarios(self) -> list[Scenario]:
        """Expand the grid, in row-major axis order."""
        clock = (
            self.clock_period if self.clock_period is not None
            else self.periods[0]
        )
        return [
            Scenario(
                circuit,
                period=period,
                n_chips=n,
                seed=seed,
                offline=self.offline,
                online=online,
                clock_period=clock,
                label=self._label(circuit, period, n, seed, online_index),
            )
            for circuit, period, n, seed, (online_index, online) in product(
                self.circuits, self.periods, self.n_chips, self.seeds,
                enumerate(self.online),
            )
        ]


@dataclass(frozen=True)
class RunRecord:
    """One tidy result row of :meth:`Engine.run_many` / :meth:`Engine.sweep`."""

    label: str
    circuit: str
    period: float
    n_chips: int
    seed: int
    yield_fraction: float
    mean_iterations: float
    iterations_per_tested_path: float
    n_tested: int
    offline_seconds: float
    tester_seconds_per_chip: float
    config_seconds_per_chip: float
    cache_hit: bool
    result: PopulationRunResult = field(repr=False)
    from_store: bool = False

    @property
    def summary(self) -> RunSummary:
        """The reduced run outcome (always present, every retention mode)."""
        return self.result.summary

    def as_dict(self) -> dict:
        """Scalar columns only — ready for a table or a dataframe."""
        return {
            "label": self.label,
            "circuit": self.circuit,
            "period": self.period,
            "n_chips": self.n_chips,
            "seed": self.seed,
            "yield_fraction": self.yield_fraction,
            "mean_iterations": self.mean_iterations,
            "iterations_per_tested_path": self.iterations_per_tested_path,
            "n_tested": self.n_tested,
            "offline_seconds": self.offline_seconds,
            "tester_seconds_per_chip": self.tester_seconds_per_chip,
            "config_seconds_per_chip": self.config_seconds_per_chip,
            "cache_hit": self.cache_hit,
            "from_store": self.from_store,
        }


def _iter_population_shards(
    population: Chips, shard_size: int | None
) -> Iterator[CircuitPopulation]:
    """Realized chip shards of a population, in chip order.

    A lazy :class:`ChipSource` materializes one shard at a time (and the
    shard is dropped after the loop body), so the caller's peak
    delay-matrix memory is O(shard); a dense population is sliced by view.
    """
    if isinstance(population, ChipSource):
        for _start, _stop, shard in population.iter_shards(shard_size):
            yield shard
        return
    n = population.n_chips
    step = n if shard_size is None else shard_size
    for start in range(0, n, max(step, 1)):
        stop = min(start + step, n)
        yield CircuitPopulation(
            population.required[start:stop],
            population.background[start:stop],
            population.hold_requirements[start:stop],
        )


#: RunSummary.stage_seconds keys, in pipeline order.
_STAGE_KEYS = ("test", "predict", "configure", "verify")


def _run_shard_stages(
    circuit: Circuit,
    shard: Chips,
    period: float,
    preparation: Preparation,
    stage: TestStage,
    predict: PredictStage,
    configure: ConfigureStage,
    verify: VerifyStage,
) -> tuple:
    """One realized chip shard through the four online stages, timed.

    Returns the stage artifacts plus a per-stage wall-clock dict (the
    ``RunSummary.stage_seconds`` contribution of this shard).  Shared by
    the serial shard loop and the :class:`~repro.api.parallel.ShardExecutor`
    thread jobs, so both paths produce identical artifacts by construction.
    """
    watch = Stopwatch()
    with watch.measure("test"):
        tested = stage.run(preparation, shard, period=period, circuit=circuit)
    with watch.measure("predict"):
        bounds = predict.run(preparation, tested)
    with watch.measure("configure"):
        configured = configure.run(preparation, bounds, period)
    with watch.measure("verify"):
        verified = verify.run(circuit, shard, configured, period)
    timing = {key: watch.total(key) for key in _STAGE_KEYS}
    return tested, bounds, configured, verified, timing


def iter_shard_summaries(
    circuit: Circuit,
    population: Chips,
    period: float,
    preparation: Preparation,
    online: OnlineConfig,
    test_stage: TestStage | None = None,
) -> Iterator[RunSummary]:
    """Online pipeline as a *stream*: one reduced summary per chip shard.

    Each chip shard runs the whole online pipeline (test, predict,
    configure, verify) and its reduced :class:`RunSummary` is yielded as
    soon as the shard completes — the seam the serving layer
    (:mod:`repro.service`) streams results through while a run is still in
    flight.  Merging the yielded parts with
    :func:`~repro.core.reduction.merge_run_summaries` reproduces the
    unsharded run exactly (chips are independent through every stage).

    A custom ``test_stage`` sees the population in one piece (its
    iteration accounting may aggregate across chips, as the path-wise
    baseline's does); only the default aligned stage is shard-driven.
    """
    stage = test_stage or AlignedTestStage(online)
    verify = VerifyStage(online.chip_shard_size)
    configure = ConfigureStage(online)
    predict = PredictStage()
    shard_size = online.chip_shard_size if test_stage is None else None
    reducer = RunReducer(period, online.artifacts)
    for shard in _iter_population_shards(population, shard_size):
        tested, bounds, configured, verified, timing = _run_shard_stages(
            circuit, shard, period, preparation,
            stage, predict, configure, verify,
        )
        yield reducer.add_shard(
            tested.test,
            bounds.lower,
            bounds.upper,
            configured.configuration,
            verified.passed,
            tested.tester_seconds_per_chip,
            # The paper's Ts is the whole off-tester stage: prediction
            # + configuration.
            bounds.predict_seconds_per_chip + configured.config_seconds_per_chip,
            stage_seconds=timing,
        )


def _shard_ranges(n_chips: int, shard_size: int | None) -> list[tuple[int, int]]:
    """Chip-shard ``[start, stop)`` ranges, in chip order."""
    step = n_chips if shard_size is None else max(int(shard_size), 1)
    return [
        (start, min(start + step, n_chips)) for start in range(0, n_chips, step)
    ]


def _materialize_shard(
    population: Chips, start: int, stop: int
) -> CircuitPopulation:
    """Realize chips ``[start, stop)`` — in the *calling* thread.

    :class:`ChipSource` shards materialize independently via counter-based
    sampling (no shared RNG state), so concurrent threads each realize
    exactly their own chips; dense populations slice by view.
    """
    if isinstance(population, ChipSource):
        return population.realize(start, stop)
    return CircuitPopulation(
        population.required[start:stop],
        population.background[start:stop],
        population.hold_requirements[start:stop],
    )


def _run_shard_job(
    circuit: Circuit,
    population: Chips,
    start: int,
    stop: int,
    period: float,
    preparation: Preparation,
    online: OnlineConfig,
) -> RunSummary:
    """One thread-pool job of the intra-run shard fan-out.

    Materializes its own shard (so the parent never holds more than the
    in-flight shards' delay matrices), runs the four online stages and
    reduces to the shard's :class:`RunSummary` — the exact part the serial
    reducer loop would have produced for the same chip range.
    """
    shard = _materialize_shard(population, start, stop)
    tested, bounds, configured, verified, timing = _run_shard_stages(
        circuit, shard, period, preparation,
        AlignedTestStage(online), PredictStage(),
        ConfigureStage(online), VerifyStage(online.chip_shard_size),
    )
    return summarize_shard(
        period,
        tested.test,
        bounds.lower,
        bounds.upper,
        configured.configuration,
        verified.passed,
        tested.tester_seconds_per_chip,
        bounds.predict_seconds_per_chip + configured.config_seconds_per_chip,
        artifacts=online.artifacts,
        stage_seconds=timing,
    )


def _run_prepared(
    circuit: Circuit,
    population: Chips,
    period: float,
    preparation: Preparation,
    online: OnlineConfig,
    test_stage: TestStage | None = None,
) -> RunSummary:
    """Execute the online stages against one preparation, shard by shard.

    The collected form of :func:`iter_shard_summaries`: with
    ``online.artifacts="summary"`` the dense per-shard arrays are dropped
    as soon as each shard is reduced, so peak memory is O(shard) on the
    output side as well as the input side.  Module-level so process-pool
    workers can run it without shipping the engine (and its cache) to
    every worker.

    ``online.shard_workers`` switches the shard loop to a
    :class:`~repro.api.parallel.ShardExecutor` thread pool: shards run
    concurrently (the compiled kernels release the GIL) and their parts
    merge in shard order through :func:`merge_run_summaries` — the same
    reduction the serial loop performs, so results are bit-identical.
    Only the default aligned stage fans out; a custom ``test_stage`` may
    aggregate across chips and always sees the population whole.
    """
    workers = resolve_shard_workers(online.shard_workers)
    if test_stage is None and workers > 1:
        ranges = _shard_ranges(population.n_chips, online.chip_shard_size)
        if len(ranges) > 1:
            parts = ShardExecutor(workers).map(
                _run_shard_job,
                [
                    (circuit, population, start, stop, period, preparation,
                     online)
                    for start, stop in ranges
                ],
            )
            return merge_run_summaries(parts)
    parts = list(
        iter_shard_summaries(
            circuit, population, period, preparation, online, test_stage
        )
    )
    if not parts:
        raise ValueError("cannot summarize an empty population (no shards)")
    return merge_run_summaries(parts)


#: Per-worker tables of the distinct circuits/preparations for one batch
#: call, installed by the pool initializer so each heavy object is serialized
#: once per worker instead of once per scenario.  Only ever set in worker
#: processes — the parent resolves indices directly.
_WORKER_CIRCUITS: list[Circuit] = []
_WORKER_PREPARATIONS: list[Preparation] = []


def _init_worker(
    circuits: list[Circuit], preparations: list[Preparation]
) -> None:
    global _WORKER_CIRCUITS, _WORKER_PREPARATIONS
    _WORKER_CIRCUITS = circuits
    _WORKER_PREPARATIONS = preparations


@dataclass(frozen=True)
class _SourceShard:
    """Lightweight pool-task spec: one chip shard of one lazy population.

    Ships (seed, range) instead of pickled delay matrices; the worker
    rebuilds the :class:`ChipSource` from its per-worker circuit table and
    materializes exactly its own shard.
    """

    circuit_index: int
    n_chips: int
    seed: int
    start: int
    stop: int

    def resolve(self, circuits: list[Circuit]) -> CircuitPopulation:
        source = ChipSource(circuits[self.circuit_index], self.n_chips, self.seed)
        return source.realize(self.start, self.stop)


#: What the population slot of a pool task can carry.
_TaskChips = CircuitPopulation | _SourceShard


def _run_scenario_task(
    payload: tuple[int, _TaskChips, float, int, OnlineConfig],
) -> RunSummary:
    circuit_index, population, period, prep_index, online = payload
    if isinstance(population, _SourceShard):
        population = population.resolve(_WORKER_CIRCUITS)
    return _run_prepared(
        _WORKER_CIRCUITS[circuit_index],
        population,
        period,
        _WORKER_PREPARATIONS[prep_index],
        online,
    )


def _shard_payload(
    payload: tuple[int, Chips, float, int, OnlineConfig],
    source_circuit_index: int,
) -> list[tuple[int, _TaskChips, float, int, OnlineConfig]]:
    """Split one scenario payload into per-shard pool tasks.

    Lazy sources always become :class:`_SourceShard` specs (one per chip
    shard, or one for the whole population without ``chip_shard_size``) so
    the parent never materializes nor pickles their delay matrices; dense
    populations are sliced into shard copies as before.
    ``source_circuit_index`` locates the *source's* circuit in the worker
    table — for an explicit source it may differ from the scenario circuit
    the pipeline prepares and verifies against.
    """
    circuit_index, population, period, prep_index, online = payload
    shard = online.chip_shard_size
    if isinstance(population, ChipSource):
        step = population.n_chips if shard is None else shard
        return [
            (
                circuit_index,
                _SourceShard(
                    source_circuit_index,
                    population.n_chips,
                    population.seed,
                    start,
                    min(start + step, population.n_chips),
                ),
                period,
                prep_index,
                online,
            )
            for start in range(0, population.n_chips, step)
        ]
    if shard is None or population.n_chips <= shard:
        return [payload]
    return [
        (
            circuit_index,
            population.subset(range(start, min(start + shard, population.n_chips))),
            period,
            prep_index,
            online,
        )
        for start in range(0, population.n_chips, shard)
    ]


class _CircuitTable:
    """Distinct circuits of one batch, deduplicated by *content*.

    Keyed by :func:`fingerprint_circuit`, not ``id()``: two structurally
    identical circuits loaded separately collapse to one slot, so the pool
    initializer serializes each distinct circuit to every worker exactly
    once.
    """

    def __init__(self) -> None:
        self.circuits: list[Circuit] = []
        self._index: dict[str, int] = {}

    def index(self, circuit: Circuit) -> int:
        fingerprint = fingerprint_circuit(circuit)
        slot = self._index.get(fingerprint)
        if slot is None:
            slot = len(self.circuits)
            self._index[fingerprint] = slot
            self.circuits.append(circuit)
        return slot


class Engine:
    """Staged pipeline engine with a shared two-tier preparation cache.

    ``cache_dir`` enables the persistent on-disk cache tier: preparations
    are serialized under their content-addressed key, so cold processes and
    repeat experiment runs skip the offline stage entirely.  Pass either
    ``cache`` (a fully configured :class:`PreparationCache`) or
    ``cache_dir``, not both.
    """

    def __init__(
        self,
        offline: OfflineConfig | None = None,
        online: OnlineConfig | None = None,
        cache: PreparationCache | None = None,
        offline_stage_factory: Callable[[OfflineConfig], OfflineStage] | None = None,
        cache_dir: str | Path | None = None,
        warm_cache: WarmStartCache | None = None,
    ):
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either cache or cache_dir, not both")
        self.offline = offline or OfflineConfig()
        self.online = online or OnlineConfig()
        # Not `cache or ...`: an empty cache has len() 0 and is falsy, and
        # must still be honored (it may own a disk tier).
        self.cache = (
            cache if cache is not None else PreparationCache(disk_dir=cache_dir)
        )
        # One warm-start cache for every offline solve this engine runs:
        # sweep variants of one circuit share model *structure*, so each
        # preparation's MILPs start from the previous variant's basis and
        # incumbent (values re-validated per solve; optima unchanged).
        self.warm_cache = warm_cache if warm_cache is not None else WarmStartCache()
        # Injection point for tests (counting stubs) and future backends.
        # Custom factories keep the plain factory(config) signature; the
        # default stage is handed the engine's shared warm cache.
        self._offline_stage_factory = offline_stage_factory or (
            lambda config: OfflineStage(config, warm_cache=self.warm_cache)
        )

    # -- offline ---------------------------------------------------------------

    def preparation_key(
        self,
        circuit: Circuit,
        clock_period: float,
        offline: OfflineConfig | None = None,
    ) -> PreparationKey:
        return PreparationKey.build(
            circuit, clock_period, offline or self.offline
        )

    def prepare(
        self,
        circuit: Circuit,
        clock_period: float,
        offline: OfflineConfig | None = None,
    ) -> Preparation:
        """Run (or fetch) the offline stage for a circuit/design period."""
        config = offline or self.offline
        key = self.preparation_key(circuit, clock_period, config)
        stage = self._offline_stage_factory(config)
        return self.cache.get_or_compute(
            key, lambda: stage.run(OfflineRequest(circuit, clock_period))
        )

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    # -- single runs -----------------------------------------------------------

    def run(
        self,
        circuit: Circuit,
        population: Chips,
        period: float,
        *,
        preparation: Preparation | None = None,
        clock_period: float | None = None,
        offline: OfflineConfig | None = None,
        online: OnlineConfig | None = None,
        test_stage: TestStage | None = None,
    ) -> PopulationRunResult:
        """Test, predict, configure and pass/fail every chip at ``period``.

        ``population`` may be a dense :class:`CircuitPopulation` or a lazy
        :class:`ChipSource` — with a source plus
        ``OnlineConfig.chip_shard_size`` the delay matrices stream through
        the stages one shard at a time, and
        ``OnlineConfig(artifacts="summary")`` additionally drops the
        per-chip outputs as each shard is reduced (peak memory O(shard) end
        to end).  Without an explicit ``preparation`` the cached offline
        stage for ``clock_period`` (default: ``period``) is used.
        ``test_stage`` swaps the measurement strategy (e.g.
        :class:`~repro.api.stages.PathwiseTestStage`).
        """
        prep = preparation or self.prepare(
            circuit, clock_period if clock_period is not None else period, offline
        )
        summary = _run_prepared(
            circuit, population, period, prep, online or self.online, test_stage
        )
        return PopulationRunResult.from_summary(summary)

    def pathwise_baseline(
        self,
        circuit: Circuit,
        population: Chips,
        offline: OfflineConfig | None = None,
    ) -> PathwiseResult:
        """The comparison method of [2, 6, 8, 9]: per-path binary search
        over all required paths at the same resolution ``epsilon``."""
        from repro.core.calibration import calibrate_epsilon

        config = offline or self.offline
        model = circuit.paths.model
        epsilon = calibrate_epsilon(config, model.stds())
        required = (
            population.required_shard()
            if isinstance(population, ChipSource)
            else population.required
        )
        return pathwise_frequency_stepping(
            required,
            model.means,
            model.stds(),
            epsilon,
            sigma_window=config.sigma_window,
        )

    # -- batch runs and sweeps -------------------------------------------------

    def _scenario_chips(self, scenario: Scenario) -> Chips:
        """An explicit population passes through; otherwise a lazy source.

        Implicit populations stay recipes end to end: the serial path
        streams them through the stages, the pool path ships per-shard
        specs, and only workers (or shard loops) materialize delays.
        """
        return scenario.chip_source()

    def run_scenario(self, scenario: Scenario) -> RunRecord:
        """Run one scenario through the cached pipeline."""
        return self.run_many([scenario])[0]

    def run_many(
        self,
        scenarios: Iterable[Scenario] | ScenarioGrid,
        max_workers: int | None = None,
        *,
        overlap: int | None = None,
    ) -> list[RunRecord]:
        """Fan a batch of scenarios across cached preparations.

        Preparations are resolved first (in scenario order, deduplicated by
        cache key) so the offline stage runs once per distinct key; the
        per-population online stages then execute serially or, with
        ``max_workers > 1``, on a process pool.  ``overlap`` instead
        pipelines preparation against population work (see :meth:`sweep`).
        Records come back in input order.  ``run_many`` is :meth:`sweep`
        without a result store — every scenario is computed.
        """
        return list(
            self.sweep(scenarios, max_workers=max_workers, overlap=overlap)
        )

    def run_key(self, scenario: Scenario) -> "RunKey | None":
        """The content-addressed result-store key of a scenario.

        ``None`` when the scenario is not storable: an explicit *dense*
        population has no compact content identity, so such scenarios are
        always recomputed.  Lazy sources (explicit or derived) key on their
        ``(circuit fingerprint, n_chips, seed)`` recipe.
        """
        from repro.results.store import RunKey

        chips = self._scenario_chips(scenario)
        if not isinstance(chips, ChipSource):
            return None
        return RunKey.build(
            circuit=scenario.circuit,
            source=chips,
            period=scenario.period,
            clock_period=scenario.design_period,
            offline=scenario.offline or self.offline,
            online=scenario.online or self.online,
        )

    def sweep(
        self,
        scenarios: Iterable[Scenario] | ScenarioGrid,
        *,
        store: "RunStore | str | Path | None" = None,
        max_workers: int | None = None,
        overlap: int | None = None,
    ) -> Iterator[RunRecord]:
        """Run a scenario sweep, resumably, yielding records incrementally.

        ``store`` may be an already-open :class:`~repro.results.RunStore`
        or a directory path (one is opened there); both are normalized
        through :func:`repro.results.ensure_store`, so callers never
        duplicate default-path logic.  With a store, scenarios whose
        results are already stored are *loaded* (bit-identically, no
        offline or online stage runs) and every computed result is written
        back —
        interrupting a sweep and re-running it only pays for the scenarios
        that are still missing, and re-running a completed sweep executes
        zero online stages.  The remaining scenarios run exactly like
        :meth:`run_many` (shared preparations; optional process-pool
        fan-out with one task per chip shard).  Records are yielded in
        input order, each as soon as its scenario completes.  When a
        pooled sweep is abandoned mid-iteration (consumer ``break``,
        Ctrl+C), scenarios whose shards already finished in the workers
        are still salvaged into the store, and tasks that never started
        are cancelled rather than waited for.

        ``overlap`` selects the *pipelined* scheduler instead of the
        process pool (the two are mutually exclusive): a dedicated thread
        prepares scenario ``k+1`` (offline stage, strictly in input order
        — warm-start hand-off preserved) while scenario ``k``'s population
        work runs, with at most ``overlap`` scenarios in flight
        (``overlap=2`` is the classic one-ahead pipeline).  Computed
        results are written to the store the moment each run completes, so
        an abandoned pipelined sweep salvages every finished scenario too.
        """
        from repro.results.store import ensure_store

        validate_max_workers(max_workers)
        validate_max_workers(overlap, name="overlap")
        if overlap is not None and max_workers is not None and max_workers > 1:
            raise ValueError(
                "overlap (pipelined scheduler) and max_workers > 1 (process "
                "pool) are mutually exclusive; pick one"
            )
        expanded = (
            scenarios.scenarios()
            if isinstance(scenarios, ScenarioGrid)
            else list(scenarios)
        )
        return self._sweep_iter(expanded, ensure_store(store), max_workers, overlap)

    def _sweep_iter(
        self,
        scenarios: list[Scenario],
        store: "RunStore | None",
        max_workers: int | None,
        overlap: int | None = None,
    ) -> Iterator[RunRecord]:
        # 1. Probe what the store already has — before any offline work, so
        # a fully warm sweep never touches the preparation cache either.
        # Probing reads only each record's metadata; the payload is loaded
        # lazily when the record is yielded, so a warm sweep holds one
        # record at a time, not the whole sweep's artifacts.
        keys: list["RunKey | None"] = [None] * len(scenarios)
        stored_hits: set[int] = set()
        if store is not None:
            for i, scenario in enumerate(scenarios):
                keys[i] = self.run_key(scenario)
                if keys[i] is None:
                    continue
                online = scenario.online or self.online
                if store.probe(keys[i], artifacts=online.artifacts):
                    stored_hits.add(i)
        pending = [i for i in range(len(scenarios)) if i not in stored_hits]

        def stored_record(i: int) -> RunRecord:
            """Load a probed record at its yield point (one at a time)."""
            scenario = scenarios[i]
            online = scenario.online or self.online
            stored = store.load(keys[i], artifacts=online.artifacts)
            if stored is not None:
                return self._record(
                    scenario,
                    stored.summary,
                    offline_seconds=stored.offline_seconds,
                    cache_hit=True,
                    from_store=True,
                )
            # Late miss: the record's payload went bad between probe and
            # load (and was dropped).  Compute this one on the spot.
            offline = scenario.offline or self.offline
            hit = (
                self.preparation_key(
                    scenario.circuit, scenario.design_period, offline
                )
                in self.cache
            )
            prep = self.prepare(
                scenario.circuit, scenario.design_period, offline
            )
            summary = _run_prepared(
                scenario.circuit,
                self._scenario_chips(scenario),
                scenario.period,
                prep,
                online,
            )
            if keys[i] is not None:
                store.store(
                    keys[i], summary, offline_seconds=prep.offline_seconds
                )
            return self._record(
                scenario,
                summary,
                offline_seconds=prep.offline_seconds,
                cache_hit=hit,
                from_store=False,
            )

        # Pipelined scheduler: skip the eager preparation pass entirely —
        # each scenario's offline prep happens on the pipeline's prep
        # thread, overlapped with the previous scenario's population work.
        if overlap is not None and pending:
            yield from self._sweep_pipelined(
                scenarios, store, keys, stored_hits, pending, overlap,
                stored_record,
            )
            return

        # 2. Resolve preparations for the missing scenarios (deduplicated
        # by cache key: the offline stage runs once per distinct key).
        preps: list[Preparation] = []
        prep_index: dict[int, int] = {}
        cache_hit: dict[int, bool] = {}
        seen: dict[PreparationKey, int] = {}
        for i in pending:
            scenario = scenarios[i]
            offline = scenario.offline or self.offline
            key = self.preparation_key(
                scenario.circuit, scenario.design_period, offline
            )
            if key in seen:
                prep_index[i] = seen[key]
                cache_hit[i] = True
                continue
            hit = key in self.cache
            prep = self.prepare(scenario.circuit, scenario.design_period, offline)
            seen[key] = len(preps)
            prep_index[i] = seen[key]
            preps.append(prep)
            cache_hit[i] = hit

        # 3. Build payloads.  Circuits are deduplicated by *fingerprint*,
        # so structurally identical circuits ship to workers once.
        table = _CircuitTable()
        payloads: dict[int, tuple] = {}
        source_circuit_index: dict[int, int] = {}
        for i in pending:
            scenario = scenarios[i]
            chips = self._scenario_chips(scenario)
            circuit_index = table.index(scenario.circuit)
            # A lazy source samples from *its own* circuit, which an
            # explicit Fig. 7-style population may draw from a different
            # variant than the one being prepared/verified — register it
            # separately so pool workers rebuild the source correctly.
            source_circuit_index[i] = (
                table.index(chips.circuit)
                if isinstance(chips, ChipSource)
                else circuit_index
            )
            payloads[i] = (
                circuit_index,
                chips,
                scenario.period,
                prep_index[i],
                scenario.online or self.online,
            )

        # 4. Execute the missing scenarios and yield everything in input
        # order, each record as soon as its scenario completes.
        def finish(i: int, summary: RunSummary) -> RunRecord:
            prep = preps[prep_index[i]]
            if store is not None and keys[i] is not None:
                store.store(
                    keys[i], summary, offline_seconds=prep.offline_seconds
                )
            return self._record(
                scenarios[i],
                summary,
                offline_seconds=prep.offline_seconds,
                cache_hit=cache_hit[i],
                from_store=False,
            )

        # With a pool, scenarios whose OnlineConfig sets chip_shard_size fan
        # out as one task per chip shard — a single huge population spreads
        # across all workers — and reassemble afterwards.  Chips are
        # independent through every online stage, so sharded and unsharded
        # runs are identical.  Lazy sources travel as _SourceShard specs
        # (the parent never holds their delay matrices); explicit dense
        # populations are sliced into shard copies on the pool path only —
        # the serial path streams shards inside the stages instead.
        sharded: list[list[tuple]] = []
        if max_workers is not None and max_workers > 1:
            sharded = [
                _shard_payload(payloads[i], source_circuit_index[i])
                for i in pending
            ]
        tasks = [task for shards in sharded for task in shards]
        if len(tasks) > 1:
            # Each distinct circuit/preparation is shipped once per worker
            # via the initializer, not once per scenario.
            pool = ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_init_worker,
                initargs=(table.circuits, preps),
            )
            futures = {
                i: [pool.submit(_run_scenario_task, task) for task in shards]
                for i, shards in zip(pending, sharded)
            }
            finished: set[int] = set()
            try:
                for i in range(len(scenarios)):
                    if i in stored_hits:
                        yield stored_record(i)
                        continue
                    parts = [future.result() for future in futures[i]]
                    record = finish(i, merge_run_summaries(parts))
                    finished.add(i)
                    yield record
            finally:
                # Abandoned mid-sweep (consumer break, Ctrl+C, error):
                # salvage every scenario whose shards all completed into the
                # store — those results are paid for — then cancel what
                # never started so shutdown only waits on in-flight shards.
                if store is not None:
                    for i, shard_futures in futures.items():
                        if i in finished or keys[i] is None:
                            continue
                        if not all(
                            f.done() and not f.cancelled()
                            and f.exception() is None
                            for f in shard_futures
                        ):
                            continue
                        try:
                            store.store(
                                keys[i],
                                merge_run_summaries(
                                    [f.result() for f in shard_futures]
                                ),
                                offline_seconds=(
                                    preps[prep_index[i]].offline_seconds
                                ),
                            )
                        except Exception:
                            pass
                pool.shutdown(wait=False, cancel_futures=True)
        else:
            for i in range(len(scenarios)):
                if i in stored_hits:
                    yield stored_record(i)
                    continue
                circuit_index, chips, period, p_index, online = payloads[i]
                summary = _run_prepared(
                    table.circuits[circuit_index], chips, period,
                    preps[p_index], online,
                )
                yield finish(i, summary)

    def _sweep_pipelined(
        self,
        scenarios: list[Scenario],
        store: "RunStore | None",
        keys: list,
        stored_hits: set[int],
        pending: list[int],
        overlap: int,
        stored_record: Callable[[int], RunRecord],
    ) -> Iterator[RunRecord]:
        """Overlapped prepare/run execution of a sweep's missing scenarios.

        One :class:`~repro.api.pipeline.ScenarioPipeline` drives the
        pending scenarios: preparation stays strictly sequential in input
        order (preserving the preparation-cache dedup *and* the
        warm-start hand-off between sweep variants), population runs
        execute one at a time overlapped with the next preparation, and
        at most ``overlap`` scenarios are in flight.  Completed results
        are stored from the run worker the moment they finish; records
        are yielded in input order as soon as available.
        """

        def prep(j: int) -> tuple[Preparation, bool]:
            scenario = scenarios[pending[j]]
            offline = scenario.offline or self.offline
            key = self.preparation_key(
                scenario.circuit, scenario.design_period, offline
            )
            hit = key in self.cache
            preparation = self.prepare(
                scenario.circuit, scenario.design_period, offline
            )
            return preparation, hit

        def run(
            j: int, payload: tuple[Preparation, bool]
        ) -> tuple[RunSummary, float, bool]:
            scenario = scenarios[pending[j]]
            preparation, hit = payload
            summary = _run_prepared(
                scenario.circuit,
                self._scenario_chips(scenario),
                scenario.period,
                preparation,
                scenario.online or self.online,
            )
            return summary, preparation.offline_seconds, hit

        def persist(
            j: int,
            payload: tuple[Preparation, bool],
            result: tuple[RunSummary, float, bool],
        ) -> None:
            # Fires in the run worker as each scenario completes, so an
            # abandoned sweep still banks every finished run.
            i = pending[j]
            if store is not None and keys[i] is not None:
                store.store(
                    keys[i], result[0],
                    offline_seconds=payload[0].offline_seconds,
                )

        pipeline = ScenarioPipeline(
            len(pending), prep, run, in_flight=overlap, on_complete=persist
        )
        completions = pipeline.results()
        done: dict[int, tuple[RunSummary, float, bool]] = {}
        try:
            for i in range(len(scenarios)):
                if i in stored_hits:
                    yield stored_record(i)
                    continue
                while i not in done:
                    try:
                        j, result = next(completions)
                    except StopIteration:
                        raise RuntimeError(
                            "pipelined sweep ended before scenario "
                            f"{i} completed"
                        ) from None
                    done[pending[j]] = result
                summary, offline_seconds, hit = done.pop(i)
                yield self._record(
                    scenarios[i],
                    summary,
                    offline_seconds=offline_seconds,
                    cache_hit=hit,
                    from_store=False,
                )
        finally:
            pipeline.close()

    @staticmethod
    def _record(
        scenario: Scenario,
        summary: RunSummary,
        offline_seconds: float,
        cache_hit: bool,
        from_store: bool = False,
    ) -> RunRecord:
        return RunRecord(
            label=scenario.label or scenario.circuit.name,
            circuit=scenario.circuit.name,
            period=scenario.period,
            n_chips=summary.n_chips,
            seed=scenario.seed,
            yield_fraction=summary.yield_fraction,
            mean_iterations=summary.mean_iterations,
            iterations_per_tested_path=summary.iterations_per_tested_path,
            n_tested=summary.n_tested,
            offline_seconds=offline_seconds,
            tester_seconds_per_chip=summary.tester_seconds_per_chip,
            config_seconds_per_chip=summary.config_seconds_per_chip,
            cache_hit=cache_hit,
            result=PopulationRunResult.from_summary(summary),
            from_store=from_store,
        )


def records_table(records: Sequence[RunRecord]) -> str:
    """Render batch records as the repo's plain-text table format."""
    from repro.utils.tables import Table

    table = Table([
        "label", "circuit", "period", "chips", "yield",
        "ta", "tv", "npt", "cache",
    ])
    for record in records:
        table.add_row([
            record.label,
            record.circuit,
            round(record.period, 2),
            record.n_chips,
            round(record.yield_fraction, 3),
            round(record.mean_iterations, 1),
            round(record.iterations_per_tested_path, 2),
            record.n_tested,
            "store" if record.from_store
            else ("hit" if record.cache_hit else "miss"),
        ])
    return table.render()


__all__ = [
    "Engine",
    "RunRecord",
    "Scenario",
    "ScenarioGrid",
    "iter_shard_summaries",
    "records_table",
]
