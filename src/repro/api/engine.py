"""The staged pipeline engine: cached preparations, single and batch runs.

:class:`Engine` is the production entry point of the reproduction.  It owns
a content-addressed :class:`~repro.api.cache.PreparationCache` and wires
the stage objects of :mod:`repro.api.stages`::

    engine = Engine()
    prep = engine.prepare(circuit, clock_period=t1)          # cached
    result = engine.run(circuit, population, period=t1)       # full flow

Batch serving goes through :class:`Scenario` specs::

    records = engine.run_many([
        Scenario(circuit, period=t1, n_chips=500, seed=1),
        Scenario(circuit, period=t2, n_chips=500, seed=2),
    ])

Scenarios sharing a circuit and offline knobs share one preparation — the
offline stage runs exactly once per distinct cache key.  Population runs
can fan out over a :class:`concurrent.futures.ProcessPoolExecutor` with
``max_workers``; preparations are computed in the parent so workers never
repeat offline work.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.api.cache import CacheStats, PreparationCache, PreparationKey
from repro.api.config import OfflineConfig, OnlineConfig
from repro.api.stages import (
    AlignedTestStage,
    Chips,
    ConfigureStage,
    OfflineRequest,
    OfflineStage,
    PredictStage,
    TestStage,
    VerifyStage,
)
from repro.circuit.generator import Circuit
from repro.core.configuration import ConfigurationResult
from repro.core.framework import PopulationRunResult, Preparation
from repro.core.population import concat_population_test_results
from repro.core.yields import ChipSource, CircuitPopulation
from repro.tester.freqstep import PathwiseResult, pathwise_frequency_stepping
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class Scenario:
    """One batch-run specification: which silicon, tested how, at what period.

    ``population`` overrides ``n_chips``/``seed`` when an explicit chip
    sample (dense, or a lazy :class:`~repro.core.yields.ChipSource` — even
    one drawn from a different circuit variant, as in Fig. 7) must be
    shared across scenarios; otherwise the engine derives a lazy source of
    ``n_chips`` chips from ``seed``.  ``clock_period`` is the design
    period sizing the buffer ranges and defaults to ``period`` — pass it
    explicitly when sweeping ``period`` so the sweep shares one
    preparation.
    """

    circuit: Circuit
    period: float
    n_chips: int = 1000
    offline: OfflineConfig | None = None
    online: OnlineConfig | None = None
    seed: int = 20160605
    clock_period: float | None = None
    population: CircuitPopulation | ChipSource | None = None
    label: str = ""

    @property
    def design_period(self) -> float:
        return self.period if self.clock_period is None else self.clock_period


@dataclass(frozen=True)
class RunRecord:
    """One tidy result row of :meth:`Engine.run_many`."""

    label: str
    circuit: str
    period: float
    n_chips: int
    seed: int
    yield_fraction: float
    mean_iterations: float
    iterations_per_tested_path: float
    n_tested: int
    offline_seconds: float
    tester_seconds_per_chip: float
    config_seconds_per_chip: float
    cache_hit: bool
    result: PopulationRunResult = field(repr=False)

    def as_dict(self) -> dict:
        """Scalar columns only — ready for a table or a dataframe."""
        return {
            "label": self.label,
            "circuit": self.circuit,
            "period": self.period,
            "n_chips": self.n_chips,
            "seed": self.seed,
            "yield_fraction": self.yield_fraction,
            "mean_iterations": self.mean_iterations,
            "iterations_per_tested_path": self.iterations_per_tested_path,
            "n_tested": self.n_tested,
            "offline_seconds": self.offline_seconds,
            "tester_seconds_per_chip": self.tester_seconds_per_chip,
            "config_seconds_per_chip": self.config_seconds_per_chip,
            "cache_hit": self.cache_hit,
        }


def _run_prepared(
    circuit: Circuit,
    population: Chips,
    period: float,
    preparation: Preparation,
    online: OnlineConfig,
    test_stage: TestStage | None = None,
) -> PopulationRunResult:
    """Execute the online stages against one preparation.

    ``population`` is a dense :class:`CircuitPopulation` or a lazy
    :class:`ChipSource`; with a source the test and verify stages stream
    ``online.chip_shard_size`` chips at a time, so this process's peak
    delay-matrix memory is one shard.  Module-level so process-pool workers
    can run it without shipping the engine (and its cache) to every worker.
    """
    tested = (test_stage or AlignedTestStage(online)).run(preparation, population)
    bounds = PredictStage().run(preparation, tested)
    configured = ConfigureStage(online).run(preparation, bounds, period)
    verified = VerifyStage(online.chip_shard_size).run(
        circuit, population, configured, period
    )
    return PopulationRunResult(
        period=period,
        test=tested.test,
        bounds_lower=bounds.lower,
        bounds_upper=bounds.upper,
        configuration=configured.configuration,
        passed=verified.passed,
        tester_seconds_per_chip=tested.tester_seconds_per_chip,
        # The paper's Ts is the whole off-tester stage: prediction + config.
        config_seconds_per_chip=(
            bounds.predict_seconds_per_chip + configured.config_seconds_per_chip
        ),
    )


#: Per-worker tables of the distinct circuits/preparations for one run_many
#: call, installed by the pool initializer so each heavy object is serialized
#: once per worker instead of once per scenario.  Only ever set in worker
#: processes — the parent resolves indices directly.
_WORKER_CIRCUITS: list[Circuit] = []
_WORKER_PREPARATIONS: list[Preparation] = []


def _init_worker(
    circuits: list[Circuit], preparations: list[Preparation]
) -> None:
    global _WORKER_CIRCUITS, _WORKER_PREPARATIONS
    _WORKER_CIRCUITS = circuits
    _WORKER_PREPARATIONS = preparations


@dataclass(frozen=True)
class _SourceShard:
    """Lightweight pool-task spec: one chip shard of one lazy population.

    Ships (seed, range) instead of pickled delay matrices; the worker
    rebuilds the :class:`ChipSource` from its per-worker circuit table and
    materializes exactly its own shard.
    """

    circuit_index: int
    n_chips: int
    seed: int
    start: int
    stop: int

    def resolve(self, circuits: list[Circuit]) -> CircuitPopulation:
        source = ChipSource(circuits[self.circuit_index], self.n_chips, self.seed)
        return source.realize(self.start, self.stop)


#: What the population slot of a pool task can carry.
_TaskChips = CircuitPopulation | _SourceShard


def _run_scenario_task(
    payload: tuple[int, _TaskChips, float, int, OnlineConfig],
) -> PopulationRunResult:
    circuit_index, population, period, prep_index, online = payload
    if isinstance(population, _SourceShard):
        population = population.resolve(_WORKER_CIRCUITS)
    return _run_prepared(
        _WORKER_CIRCUITS[circuit_index],
        population,
        period,
        _WORKER_PREPARATIONS[prep_index],
        online,
    )


def _merge_shard_runs(parts: list[PopulationRunResult]) -> PopulationRunResult:
    """Reassemble one scenario's result from its chip-shard runs.

    Chips are independent through every online stage, so concatenating the
    per-shard arrays reproduces the unsharded result exactly; the per-chip
    timing figures recombine as chip-weighted means.
    """
    if len(parts) == 1:
        return parts[0]
    n_chips = np.array([p.passed.shape[0] for p in parts], dtype=float)
    total = n_chips.sum()
    configuration = ConfigurationResult(
        feasible=np.concatenate([p.configuration.feasible for p in parts]),
        settings=np.vstack([p.configuration.settings for p in parts]),
        xi=np.concatenate([p.configuration.xi for p in parts]),
        buffer_names=parts[0].configuration.buffer_names,
    )
    return PopulationRunResult(
        period=parts[0].period,
        test=concat_population_test_results([p.test for p in parts]),
        bounds_lower=np.vstack([p.bounds_lower for p in parts]),
        bounds_upper=np.vstack([p.bounds_upper for p in parts]),
        configuration=configuration,
        passed=np.concatenate([p.passed for p in parts]),
        tester_seconds_per_chip=float(
            (n_chips * [p.tester_seconds_per_chip for p in parts]).sum() / total
        ),
        config_seconds_per_chip=float(
            (n_chips * [p.config_seconds_per_chip for p in parts]).sum() / total
        ),
    )


def _shard_payload(
    payload: tuple[int, Chips, float, int, OnlineConfig],
    source_circuit_index: int,
) -> list[tuple[int, _TaskChips, float, int, OnlineConfig]]:
    """Split one scenario payload into per-shard pool tasks.

    Lazy sources always become :class:`_SourceShard` specs (one per chip
    shard, or one for the whole population without ``chip_shard_size``) so
    the parent never materializes nor pickles their delay matrices; dense
    populations are sliced into shard copies as before.
    ``source_circuit_index`` locates the *source's* circuit in the worker
    table — for an explicit source it may differ from the scenario circuit
    the pipeline prepares and verifies against.
    """
    circuit_index, population, period, prep_index, online = payload
    shard = online.chip_shard_size
    if isinstance(population, ChipSource):
        step = population.n_chips if shard is None else shard
        return [
            (
                circuit_index,
                _SourceShard(
                    source_circuit_index,
                    population.n_chips,
                    population.seed,
                    start,
                    min(start + step, population.n_chips),
                ),
                period,
                prep_index,
                online,
            )
            for start in range(0, population.n_chips, step)
        ]
    if shard is None or population.n_chips <= shard:
        return [payload]
    return [
        (
            circuit_index,
            population.subset(range(start, min(start + shard, population.n_chips))),
            period,
            prep_index,
            online,
        )
        for start in range(0, population.n_chips, shard)
    ]


class Engine:
    """Staged pipeline engine with a shared two-tier preparation cache.

    ``cache_dir`` enables the persistent on-disk cache tier: preparations
    are serialized under their content-addressed key, so cold processes and
    repeat experiment runs skip the offline stage entirely.  Pass either
    ``cache`` (a fully configured :class:`PreparationCache`) or
    ``cache_dir``, not both.
    """

    def __init__(
        self,
        offline: OfflineConfig | None = None,
        online: OnlineConfig | None = None,
        cache: PreparationCache | None = None,
        offline_stage_factory: Callable[[OfflineConfig], OfflineStage] | None = None,
        cache_dir: str | Path | None = None,
    ):
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either cache or cache_dir, not both")
        self.offline = offline or OfflineConfig()
        self.online = online or OnlineConfig()
        # Not `cache or ...`: an empty cache has len() 0 and is falsy, and
        # must still be honored (it may own a disk tier).
        self.cache = (
            cache if cache is not None else PreparationCache(disk_dir=cache_dir)
        )
        # Injection point for tests (counting stubs) and future backends.
        self._offline_stage_factory = offline_stage_factory or OfflineStage

    # -- offline ---------------------------------------------------------------

    def preparation_key(
        self,
        circuit: Circuit,
        clock_period: float,
        offline: OfflineConfig | None = None,
    ) -> PreparationKey:
        return PreparationKey.build(
            circuit, clock_period, offline or self.offline
        )

    def prepare(
        self,
        circuit: Circuit,
        clock_period: float,
        offline: OfflineConfig | None = None,
    ) -> Preparation:
        """Run (or fetch) the offline stage for a circuit/design period."""
        config = offline or self.offline
        key = self.preparation_key(circuit, clock_period, config)
        stage = self._offline_stage_factory(config)
        return self.cache.get_or_compute(
            key, lambda: stage.run(OfflineRequest(circuit, clock_period))
        )

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    # -- single runs -----------------------------------------------------------

    def run(
        self,
        circuit: Circuit,
        population: Chips,
        period: float,
        *,
        preparation: Preparation | None = None,
        clock_period: float | None = None,
        offline: OfflineConfig | None = None,
        online: OnlineConfig | None = None,
        test_stage: TestStage | None = None,
    ) -> PopulationRunResult:
        """Test, predict, configure and pass/fail every chip at ``period``.

        ``population`` may be a dense :class:`CircuitPopulation` or a lazy
        :class:`ChipSource` — with a source plus
        ``OnlineConfig.chip_shard_size`` the delay matrices stream through
        the stages one shard at a time.  Without an explicit
        ``preparation`` the cached offline stage for ``clock_period``
        (default: ``period``) is used.  ``test_stage`` swaps the
        measurement strategy (e.g.
        :class:`~repro.api.stages.PathwiseTestStage`).
        """
        prep = preparation or self.prepare(
            circuit, clock_period if clock_period is not None else period, offline
        )
        return _run_prepared(
            circuit, population, period, prep, online or self.online, test_stage
        )

    def pathwise_baseline(
        self,
        circuit: Circuit,
        population: Chips,
        offline: OfflineConfig | None = None,
    ) -> PathwiseResult:
        """The comparison method of [2, 6, 8, 9]: per-path binary search
        over all required paths at the same resolution ``epsilon``."""
        from repro.core.calibration import calibrate_epsilon

        config = offline or self.offline
        model = circuit.paths.model
        epsilon = calibrate_epsilon(config, model.stds())
        required = (
            population.required_shard()
            if isinstance(population, ChipSource)
            else population.required
        )
        return pathwise_frequency_stepping(
            required,
            model.means,
            model.stds(),
            epsilon,
            sigma_window=config.sigma_window,
        )

    # -- batch runs ------------------------------------------------------------

    def _scenario_chips(self, scenario: Scenario) -> Chips:
        """An explicit population passes through; otherwise a lazy source.

        Implicit populations stay recipes end to end: the serial path
        streams them through the stages, the pool path ships per-shard
        specs, and only workers (or shard loops) materialize delays.
        """
        if scenario.population is not None:
            return scenario.population
        return ChipSource(
            scenario.circuit,
            scenario.n_chips,
            derive_seed(scenario.seed, scenario.circuit.name, "population"),
        )

    def run_scenario(self, scenario: Scenario) -> RunRecord:
        """Run one scenario through the cached pipeline."""
        return self.run_many([scenario])[0]

    def run_many(
        self,
        scenarios: Iterable[Scenario],
        max_workers: int | None = None,
    ) -> list[RunRecord]:
        """Fan a batch of scenarios across cached preparations.

        Preparations are resolved first (in scenario order, deduplicated by
        cache key) so the offline stage runs once per distinct key; the
        per-population online stages then execute serially or, with
        ``max_workers > 1``, on a process pool.  Records come back in input
        order.
        """
        scenarios = list(scenarios)
        unique_preps: list[Preparation] = []
        prep_indices: list[int] = []
        cache_hits: list[bool] = []
        seen: dict[PreparationKey, int] = {}
        unique_circuits: list[Circuit] = []
        circuit_indices: list[int] = []
        circuits_seen: dict[int, int] = {}
        for scenario in scenarios:
            offline = scenario.offline or self.offline
            if id(scenario.circuit) not in circuits_seen:
                circuits_seen[id(scenario.circuit)] = len(unique_circuits)
                unique_circuits.append(scenario.circuit)
            circuit_indices.append(circuits_seen[id(scenario.circuit)])
            key = self.preparation_key(
                scenario.circuit, scenario.design_period, offline
            )
            if key in seen:
                prep_indices.append(seen[key])
                cache_hits.append(True)
                continue
            hit = key in self.cache
            prep = self.prepare(scenario.circuit, scenario.design_period, offline)
            seen[key] = len(unique_preps)
            prep_indices.append(len(unique_preps))
            unique_preps.append(prep)
            cache_hits.append(hit)

        payloads = []
        source_circuit_indices: list[int] = []
        for scenario, circuit_index, prep_index in zip(
            scenarios, circuit_indices, prep_indices
        ):
            chips = self._scenario_chips(scenario)
            # A lazy source samples from *its own* circuit, which an
            # explicit Fig. 7-style population may draw from a different
            # variant than the one being prepared/verified — register it
            # separately so pool workers rebuild the source correctly.
            if isinstance(chips, ChipSource):
                if id(chips.circuit) not in circuits_seen:
                    circuits_seen[id(chips.circuit)] = len(unique_circuits)
                    unique_circuits.append(chips.circuit)
                source_circuit_indices.append(circuits_seen[id(chips.circuit)])
            else:
                source_circuit_indices.append(circuit_index)
            payloads.append((
                circuit_index,
                chips,
                scenario.period,
                prep_index,
                scenario.online or self.online,
            ))

        # With a pool, scenarios whose OnlineConfig sets chip_shard_size fan
        # out as one task per chip shard — a single huge population spreads
        # across all workers — and reassemble afterwards.  Chips are
        # independent through every online stage, so sharded and unsharded
        # runs are identical.  Lazy sources travel as _SourceShard specs
        # (the parent never holds their delay matrices); explicit dense
        # populations are sliced into shard copies on the pool path only —
        # the serial path streams shards inside the stages instead.
        sharded = (
            [
                _shard_payload(payload, source_ci)
                for payload, source_ci in zip(payloads, source_circuit_indices)
            ]
            if max_workers is not None and max_workers > 1
            else [[payload] for payload in payloads]
        )
        tasks = [task for shards in sharded for task in shards]
        if max_workers is not None and max_workers > 1 and len(tasks) > 1:
            # Each distinct circuit/preparation is shipped once per worker
            # via the initializer, not once per scenario.
            with ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_init_worker,
                initargs=(unique_circuits, unique_preps),
            ) as pool:
                task_results = list(pool.map(_run_scenario_task, tasks))
            results = []
            cursor = 0
            for shards in sharded:
                results.append(
                    _merge_shard_runs(task_results[cursor : cursor + len(shards)])
                )
                cursor += len(shards)
        else:
            results = [
                _run_prepared(
                    unique_circuits[circuit_index],
                    population,
                    period,
                    unique_preps[prep_index],
                    online,
                )
                for circuit_index, population, period, prep_index, online
                in payloads
            ]

        return [
            self._record(
                scenario, payload[1], result, unique_preps[payload[3]], hit
            )
            for scenario, payload, result, hit in zip(
                scenarios, payloads, results, cache_hits
            )
        ]

    @staticmethod
    def _record(
        scenario: Scenario,
        population: Chips,
        result: PopulationRunResult,
        preparation: Preparation,
        cache_hit: bool,
    ) -> RunRecord:
        return RunRecord(
            label=scenario.label or scenario.circuit.name,
            circuit=scenario.circuit.name,
            period=scenario.period,
            n_chips=population.n_chips,
            seed=scenario.seed,
            yield_fraction=result.yield_fraction,
            mean_iterations=result.mean_iterations,
            iterations_per_tested_path=result.iterations_per_tested_path,
            n_tested=result.n_tested,
            offline_seconds=preparation.offline_seconds,
            tester_seconds_per_chip=result.tester_seconds_per_chip,
            config_seconds_per_chip=result.config_seconds_per_chip,
            cache_hit=cache_hit,
            result=result,
        )


def records_table(records: Sequence[RunRecord]) -> str:
    """Render batch records as the repo's plain-text table format."""
    from repro.utils.tables import Table

    table = Table([
        "label", "circuit", "period", "chips", "yield",
        "ta", "tv", "npt", "cache",
    ])
    for record in records:
        table.add_row([
            record.label,
            record.circuit,
            round(record.period, 2),
            record.n_chips,
            round(record.yield_fraction, 3),
            round(record.mean_iterations, 1),
            round(record.iterations_per_tested_path, 2),
            record.n_tested,
            "hit" if record.cache_hit else "miss",
        ])
    return table.render()


__all__ = ["Engine", "RunRecord", "Scenario", "records_table"]
