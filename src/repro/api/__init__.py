"""Staged pipeline API — the production surface of the reproduction.

The paper's flow splits into an expensive offline stage and cheap online
stages; this package makes that split first-class:

* :class:`~repro.api.config.OfflineConfig` / :class:`~repro.api.config.OnlineConfig`
  — the configuration split along the cache seam,
* :mod:`repro.api.stages` — explicit stage objects with typed artifacts
  (``OfflineStage -> TestStage -> PredictStage -> ConfigureStage ->
  VerifyStage``),
* :class:`~repro.api.cache.PreparationCache` — content-addressed sharing of
  offline work across runs,
* :class:`~repro.api.engine.Engine` — wires it all, with
  :meth:`~repro.api.engine.Engine.run_many` batch serving over
  :class:`~repro.api.engine.Scenario` specs.

See ``docs/api.md`` for the stage graph and the migration path from the
legacy ``EffiTest`` facade.
"""

from repro.api.cache import (
    CacheStats,
    PreparationCache,
    PreparationKey,
    fingerprint_circuit,
)
from repro.api.config import OfflineConfig, OnlineConfig
from repro.api.engine import (
    Engine,
    RunRecord,
    Scenario,
    ScenarioGrid,
    records_table,
)
from repro.api.stages import (
    AlignedTestStage,
    BoundsArtifact,
    Chips,
    ConfigArtifact,
    ConfigureStage,
    OfflineRequest,
    OfflineStage,
    PathwiseTestStage,
    PredictStage,
    TestArtifact,
    TestStage,
    VerifyArtifact,
    VerifyStage,
)

__all__ = [
    "AlignedTestStage",
    "BoundsArtifact",
    "CacheStats",
    "Chips",
    "ConfigArtifact",
    "ConfigureStage",
    "Engine",
    "OfflineConfig",
    "OfflineRequest",
    "OfflineStage",
    "OnlineConfig",
    "PathwiseTestStage",
    "PredictStage",
    "PreparationCache",
    "PreparationKey",
    "RunRecord",
    "Scenario",
    "ScenarioGrid",
    "TestArtifact",
    "TestStage",
    "VerifyArtifact",
    "VerifyStage",
    "fingerprint_circuit",
    "records_table",
]
