"""Overlapped prepare/run scheduling for scenario sweeps.

A cold sweep alternates two very different workloads: the *offline*
preparation of the next scenario (solver-heavy, touches the preparation
and warm-start caches) and the *online* population run of the current one
(NumPy/kernel-heavy, releases the GIL for most of its time).  The serial
sweep loop runs them back to back; :class:`ScenarioPipeline` overlaps
them — one dedicated thread prepares scenarios strictly in input order
(preserving the :class:`~repro.opt.warmstart.WarmStartCache` hand-off
chain between sweep variants) while a run pool executes the population
work, with a bounded number of scenarios in flight.

The pipeline is deliberately engine-agnostic: it schedules three caller
callbacks (``prepare``, ``run``, ``on_complete``) over integer item
indices and never looks inside the payloads.  Results stream out in
*completion* order via :meth:`results`; callers that need input order
buffer the handful of out-of-order completions (bounded by ``in_flight``).
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterator

#: Output-queue tag marking the prep thread's retirement; its payload is
#: the number of result events the consumer should still expect in total.
_PREP_DONE = object()


class ScenarioPipeline:
    """Bounded-in-flight prepare/run overlap over ``n_items`` work items.

    * ``prepare(i) -> payload`` runs on a single dedicated thread, strictly
      in input order — item ``i+1`` never prepares before item ``i``.
    * ``run(i, payload) -> result`` runs on a thread pool of
      ``run_workers`` (default 1: runs execute one at a time, overlapped
      only with preparation).
    * ``on_complete(i, payload, result)`` (optional) fires in the run
      worker thread immediately after a successful run — the hook sweep
      callers use to persist results the moment they are paid for, so an
      abandoned sweep salvages every finished run.

    At most ``in_flight`` items are past ``prepare`` but not yet completed
    at any moment; ``in_flight=2`` is the classic one-ahead pipeline
    (scenario ``k+1`` prepares while scenario ``k`` runs).

    :meth:`results` yields ``(index, result)`` in completion order and
    re-raises the first prepare/run/on_complete failure.  Always
    :meth:`close` the pipeline (normally in a ``finally``) — close stops
    the prep thread, cancels queued runs and *waits* for in-flight runs,
    so their ``on_complete`` effects are never torn mid-write.  Do not
    consume :meth:`results` after ``close``.
    """

    def __init__(
        self,
        n_items: int,
        prepare: Callable[[int], Any],
        run: Callable[[int, Any], Any],
        *,
        in_flight: int = 2,
        run_workers: int = 1,
        on_complete: Callable[[int, Any, Any], None] | None = None,
    ):
        if n_items < 0:
            raise ValueError(f"n_items must be >= 0, got {n_items}")
        if in_flight < 1:
            raise ValueError(f"in_flight must be >= 1, got {in_flight}")
        if run_workers < 1:
            raise ValueError(f"run_workers must be >= 1, got {run_workers}")
        self._n = n_items
        self._prepare = prepare
        self._run = run
        self._on_complete = on_complete
        self._slots = threading.Semaphore(in_flight)
        self._out: queue.SimpleQueue = queue.SimpleQueue()
        self._stop = threading.Event()
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=run_workers, thread_name_prefix="repro-sweep-run"
        )
        self._prep_thread = threading.Thread(
            target=self._prep_loop, name="repro-sweep-prep", daemon=True
        )
        self._prep_thread.start()

    # -- worker side -----------------------------------------------------------

    def _prep_loop(self) -> None:
        emitted = 0  # result events guaranteed to reach the queue
        try:
            for i in range(self._n):
                # Block for a free slot, waking periodically so a close()
                # during a long run still stops the prep thread promptly.
                acquired = False
                while not self._stop.is_set():
                    if self._slots.acquire(timeout=0.05):
                        acquired = True
                        break
                if not acquired:
                    break
                try:
                    payload = self._prepare(i)
                except BaseException as exc:  # noqa: BLE001 - forwarded
                    self._slots.release()
                    self._out.put((i, None, exc))
                    emitted += 1
                    continue
                try:
                    self._pool.submit(self._run_one, i, payload)
                except RuntimeError:  # pool already shut down by close()
                    self._slots.release()
                    break
                emitted += 1
        finally:
            self._out.put((_PREP_DONE, emitted, None))

    def _run_one(self, i: int, payload: Any) -> None:
        result: Any = None
        failure: BaseException | None = None
        try:
            result = self._run(i, payload)
            if self._on_complete is not None:
                self._on_complete(i, payload, result)
        except BaseException as exc:  # noqa: BLE001 - forwarded
            failure = exc
        finally:
            self._out.put((i, result, failure))
            self._slots.release()

    # -- consumer side ---------------------------------------------------------

    def results(self) -> Iterator[tuple[int, Any]]:
        """Yield ``(index, result)`` as items complete; raise on failure.

        Caveat: a run cancelled by :meth:`close` before it started never
        emits an event, so this generator must not be resumed after
        ``close`` — the sweep's contract (close in ``finally``, never
        iterate afterwards).
        """
        expected: int | None = None
        received = 0
        while expected is None or received < expected:
            tag, result, failure = self._out.get()
            if tag is _PREP_DONE:
                expected = result
                continue
            received += 1
            if failure is not None:
                raise failure
            yield tag, result

    def close(self) -> None:
        """Stop preparing, cancel queued runs, wait for in-flight ones."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._prep_thread.join(timeout=5.0)


__all__ = ["ScenarioPipeline"]
