"""Worker-count plumbing and the intra-run shard thread pool.

Two kinds of parallelism live in the API layer and they compose:

* **Across runs** — :meth:`repro.api.engine.Engine.run_many` fans whole
  runs over a :class:`concurrent.futures.ProcessPoolExecutor`
  (``max_workers``).  Processes, because a run's Python-level work is
  GIL-bound on the pure-NumPy kernels.
* **Within a run** — :class:`ShardExecutor` runs the per-shard
  test/configure/verify work of a *single* run on a thread pool
  (``OnlineConfig.shard_workers``).  Threads, because the compiled
  kernels (:mod:`repro.kernels`) release the GIL and the shards share
  the preparation read-only; parts merge through the same
  :class:`~repro.core.reduction.RunReducer` path in shard order, so the
  result is bit-identical to the serial loop.

This module owns the validation/resolution helpers for both knobs so the
engine, the config dataclass and the CLI agree on the rules.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence


def process_cpu_count() -> int:
    """CPUs available to *this process* (affinity-aware where possible).

    ``os.process_cpu_count`` is 3.13+; fall back to the scheduling
    affinity (Linux) and then ``os.cpu_count``.  Never returns < 1.
    """
    probe = getattr(os, "process_cpu_count", None)
    count: int | None = None
    if probe is not None:
        count = probe()
    if count is None:
        affinity = getattr(os, "sched_getaffinity", None)
        if affinity is not None:
            try:
                count = len(affinity(0))
            except OSError:  # pragma: no cover - exotic platforms
                count = None
    if count is None:
        count = os.cpu_count()
    return max(1, count or 1)


def validate_max_workers(value: int | None, name: str = "max_workers") -> None:
    """Reject worker counts that would silently misbehave.

    ``None`` means "pick a default" and is always fine.  Anything else
    must be an integer >= 1: ``ProcessPoolExecutor(max_workers=0)``
    raises a cryptic error deep in ``concurrent.futures``, and a bool
    sneaking through (``True == 1``) is almost certainly a bug upstream.
    """
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be a positive int or None, got {value!r}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")


def validate_shard_workers(value: int | str | None) -> None:
    """Validate an ``OnlineConfig.shard_workers`` setting.

    Accepts ``None`` (serial), the string ``"auto"`` (one worker per
    available CPU) or an explicit integer >= 1.
    """
    if value is None or value == "auto":
        return
    if isinstance(value, str):
        raise ValueError(
            f'shard_workers must be None, "auto" or a positive int, got {value!r}'
        )
    validate_max_workers(value, name="shard_workers")


def resolve_shard_workers(value: int | str | None) -> int:
    """Turn a validated ``shard_workers`` setting into a worker count."""
    validate_shard_workers(value)
    if value is None:
        return 1
    if value == "auto":
        return process_cpu_count()
    return int(value)


class ShardExecutor:
    """A small ordered map-over-threads for per-shard run work.

    ``map`` submits ``fn(*args)`` for every args-tuple in ``items`` and
    returns the results *in submission order* (shard order), regardless
    of completion order — callers feed the parts straight into
    :meth:`repro.core.reduction.RunReducer.add_shard` and get the same
    merge the serial loop produces.  Exceptions propagate after all
    in-flight work has been collected, so a failing shard does not leak
    threads mid-run.
    """

    def __init__(self, max_workers: int):
        validate_max_workers(max_workers)
        self.max_workers = int(max_workers)

    def map(
        self,
        fn: Callable[..., Any],
        items: Iterable[Sequence[Any]],
    ) -> list[Any]:
        jobs = list(items)
        if not jobs:
            return []
        if self.max_workers == 1 or len(jobs) == 1:
            return [fn(*args) for args in jobs]
        workers = min(self.max_workers, len(jobs))
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        ) as pool:
            futures = [pool.submit(fn, *args) for args in jobs]
            return [future.result() for future in futures]


__all__ = [
    "ShardExecutor",
    "process_cpu_count",
    "resolve_shard_workers",
    "validate_max_workers",
    "validate_shard_workers",
]
