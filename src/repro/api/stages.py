"""Explicit pipeline stages with typed artifacts.

The flow of Fig. 4 decomposes into five stages, each a small object with a
``run`` method consuming and producing typed artifact dataclasses::

    OfflineStage   (circuit, clock_period)        -> Preparation
    TestStage      (preparation, population)      -> TestArtifact
    PredictStage   (preparation, TestArtifact)    -> BoundsArtifact
    ConfigureStage (preparation, BoundsArtifact)  -> ConfigArtifact
    VerifyStage    (circuit, pop, ConfigArtifact) -> VerifyArtifact

Mode switches that the monolithic framework threaded through config flags
become stage swaps: the Fig. 8 test-all-paths mode is an
:class:`OfflineStage` whose config selects every path (the predict stage
then has nothing to predict), and the path-wise baseline of [2, 6, 8, 9] is
:class:`PathwiseTestStage` slotted in place of :class:`AlignedTestStage`.

:class:`~repro.api.engine.Engine` wires the stages and caches
:class:`OfflineStage` outputs; the stages themselves are engine-agnostic
and can be composed by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.api.config import OfflineConfig, OnlineConfig
from repro.circuit.generator import Circuit
from repro.circuit.insertion import plan_buffers
from repro.core.alignment import build_batch_alignment
from repro.core.budget import certify_refinement, coarse_epsilon
from repro.core.calibration import calibrate_epsilon
from repro.core.configuration import ConfigurationResult, build_config_structure, configure_chips
from repro.core.framework import Preparation
from repro.core.grouping import group_and_select
from repro.core.holdtime import (
    compute_hold_bounds,
    hold_feasible_settings,
    solve_hold_bounds_exact,
)
from repro.core.multiplexing import plan_multiplexing
from repro.core.population import (
    PopulationTestResult,
    test_population,
    test_population_lazy,
)
from repro.core.prediction import build_predictor
from repro.core.yields import ChipSource, CircuitPopulation, configured_pass
from repro.opt.warmstart import WarmStartCache
from repro.tester.freqstep import pathwise_frequency_stepping
from repro.utils.rng import derive_seed
from repro.utils.timing import Stopwatch

#: Stages consuming chips accept either a dense realized population or the
#: lazy recipe; :class:`~repro.core.yields.ChipSource` inputs are streamed
#: shard by shard so the full delay matrices never exist in this process.
Chips = CircuitPopulation | ChipSource


# ----------------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------------


@dataclass(frozen=True)
class OfflineRequest:
    """Input of the offline stage: what to prepare, sized for what period."""

    circuit: Circuit
    clock_period: float  # design period sizing the buffer ranges


@dataclass(frozen=True)
class TestArtifact:
    """On-tester outcome: measured delay ranges for every chip."""

    test: PopulationTestResult
    tester_seconds_per_chip: float


@dataclass(frozen=True)
class BoundsArtifact:
    """Dense ``(n_chips, n_paths)`` delay bounds: tested + predicted.

    Prediction time counts toward the paper's ``Ts`` (off-tester work),
    alongside the configuration time.
    """

    lower: np.ndarray
    upper: np.ndarray
    predict_seconds_per_chip: float = 0.0


@dataclass(frozen=True)
class ConfigArtifact:
    """Per-chip buffer configuration from the minimax-xi search."""

    configuration: ConfigurationResult
    config_seconds_per_chip: float


@dataclass(frozen=True)
class VerifyArtifact:
    """Final pass/fail of every configured chip at the operating period."""

    passed: np.ndarray

    @property
    def yield_fraction(self) -> float:
        return float(self.passed.mean())


# ----------------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------------


class OfflineStage:
    """The paper's ``Tp``: everything computed before any chip is touched.

    ``warm_cache`` (normally the engine's shared
    :class:`~repro.opt.warmstart.WarmStartCache`) threads simplex bases and
    integer incumbents across the offline MILPs of structurally identical
    preparations — sweep variants of one circuit warm-start each other.
    Hints never change the attained optimum *value* — only where the
    solver starts and, among tied optima, which vertex it reaches first.
    """

    def __init__(
        self,
        config: OfflineConfig | None = None,
        warm_cache: WarmStartCache | None = None,
    ):
        self.config = config or OfflineConfig()
        self.warm_cache = warm_cache

    def run(self, request: OfflineRequest) -> Preparation:
        cfg = self.config
        circuit = request.circuit
        watch = Stopwatch()

        with watch.measure("offline"):
            buffer_plan = plan_buffers(
                list(circuit.buffered_ffs),
                request.clock_period,
                range_fraction=cfg.range_fraction,
                n_steps=cfg.n_steps,
            )

            model = circuit.paths.model
            prior_means = model.means
            prior_stds = model.stds()

            if cfg.test_all_paths:
                grouping = None
                selected = np.arange(circuit.paths.n_paths, dtype=np.intp)
                fill = False
            else:
                grouping = group_and_select(
                    model,
                    start_threshold=cfg.start_threshold,
                    threshold_step=cfg.threshold_step,
                    floor_threshold=cfg.floor_threshold,
                    pc_criterion=cfg.pc_criterion,
                    variance_fraction=cfg.variance_fraction,
                    relative_threshold=cfg.relative_threshold,
                )
                selected = grouping.tested_indices
                fill = cfg.fill_slots

            plan = plan_multiplexing(
                circuit.paths,
                selected,
                mutual_exclusions=circuit.mutual_exclusions,
                fill_slots=fill,
                affinity=cfg.batch_affinity,
                fill_sigma_fraction=cfg.fill_sigma_fraction,
                max_fill_factor=cfg.max_fill_factor,
                fill_rank=cfg.fill_rank,
            )

            solver_stats: list = []
            if cfg.hold_exact:
                hold_bounds, hold_stats = solve_hold_bounds_exact(
                    circuit.short_paths,
                    buffer_plan,
                    target_yield=cfg.hold_yield,
                    n_samples=cfg.hold_samples,
                    seed=derive_seed(cfg.seed, circuit.name, "hold"),
                    backend=cfg.hold_backend,
                    warm=self.warm_cache,
                )
                if hold_stats is not None:
                    solver_stats.append(hold_stats)
            else:
                hold_bounds = compute_hold_bounds(
                    circuit.short_paths,
                    buffer_plan,
                    target_yield=cfg.hold_yield,
                    n_samples=cfg.hold_samples,
                    seed=derive_seed(cfg.seed, circuit.name, "hold"),
                )
            default_settings = hold_feasible_settings(
                buffer_plan, hold_bounds, circuit.ff_names
            )

            specs = []
            x_inits = []
            for batch in plan.batches:
                spec = build_batch_alignment(
                    batch.path_indices,
                    circuit.paths.source_idx,
                    circuit.paths.sink_idx,
                    circuit.ff_names,
                    buffer_plan,
                    hold_pairs=hold_bounds.pairs,
                    hold_lambdas=hold_bounds.lambdas,
                    default_settings=default_settings,
                )
                specs.append(spec)
                x_inits.append(
                    np.array([default_settings[name] for name in spec.buffer_names])
                )

            predictor = None
            if plan.n_measured < circuit.paths.n_paths:
                predictor = build_predictor(model, plan.measured)

            structure = build_config_structure(
                circuit.paths, buffer_plan, hold_bounds
            )

            epsilon = calibrate_epsilon(cfg, prior_stds)

        return Preparation(
            buffer_plan=buffer_plan,
            grouping=grouping,
            plan=plan,
            specs=specs,
            x_inits=x_inits,
            hold_bounds=hold_bounds,
            default_settings=default_settings,
            predictor=predictor,
            structure=structure,
            epsilon=epsilon,
            prior_means=prior_means,
            prior_stds=prior_stds,
            offline_seconds=watch.total("offline"),
            sigma_window=cfg.sigma_window,
            solver_stats=tuple(solver_stats),
            model=model,
        )


class TestStage(Protocol):
    """Any on-tester measurement strategy producing delay ranges.

    ``period`` and ``circuit`` are the operating context of the run; the
    uniform budget ignores them, the adaptive budget needs both to certify
    that coarse measurements cannot flip the chip's final verdict (the
    engine always supplies them).
    """

    def run(
        self,
        preparation: Preparation,
        population: Chips,
        period: float | None = None,
        circuit: Circuit | None = None,
    ) -> TestArtifact:  # pragma: no cover - protocol
        ...


def _check_adaptive_context(
    preparation: Preparation, period: float | None, circuit: Circuit | None
) -> None:
    """Fail fast when the adaptive budget lacks its certification inputs."""
    if period is None or circuit is None:
        raise ValueError(
            "test_budget='adaptive' certifies verdicts against the operating "
            "period and circuit; run through the engine or pass period= and "
            "circuit= to the stage's run()"
        )
    if preparation.model is None:
        raise ValueError(
            "preparation carries no delay model (it predates adaptive test "
            "budgets — e.g. an old on-disk cache entry); recompute the "
            "offline stage"
        )


class AlignedTestStage:
    """§3.3: multiplexed frequency stepping with delay alignment.

    ``OnlineConfig.chip_shard_size`` streams the population through the
    test engine in memory-bounded chip shards (identical results for any
    shard size — chips are independent).  With a lazy
    :class:`~repro.core.yields.ChipSource` each shard's required-path
    delays are materialized on demand and dropped after testing, so the
    dense ``(n_chips, n_paths)`` matrix never exists in this process.

    ``OnlineConfig.test_budget="adaptive"`` switches to the graduated
    test of :mod:`repro.core.budget`: a coarse pass at
    criticality-allocated per-path resolution, a per-chip certificate
    that refinement cannot change the configure/verify verdict, and a
    uniform rerun (bit-identical to the default budget) for the chips the
    certificate rejects.  Yield verdicts match the uniform budget; mean
    iterations (``t_a``) drop.  The adaptive path needs the realized
    population (background + hold delays feed the certificate), so a lazy
    source is materialized here.
    """

    def __init__(self, online: OnlineConfig | None = None):
        self.online = online or OnlineConfig()

    def run(
        self,
        preparation: Preparation,
        population: Chips,
        period: float | None = None,
        circuit: Circuit | None = None,
    ) -> TestArtifact:
        if self.online.test_budget == "adaptive":
            return self._run_adaptive(preparation, population, period, circuit)
        watch = Stopwatch()
        with watch.measure("tester"):
            if isinstance(population, ChipSource):
                delays_of_shard = population.required_shard
            else:
                dense = population.required
                delays_of_shard = lambda start, stop: dense[start:stop]  # noqa: E731
            test = test_population_lazy(
                delays_of_shard,
                population.n_chips,
                preparation.plan,
                preparation.specs,
                preparation.prior_means,
                preparation.prior_stds,
                preparation.epsilon,
                sigma_window=preparation.sigma_window,
                k0=self.online.k0,
                kd=self.online.kd,
                align=self.online.align,
                x_inits=preparation.x_inits,
                chip_shard_size=self.online.chip_shard_size,
                kernel=self.online.test_kernel,
            )
        return TestArtifact(
            test=test,
            tester_seconds_per_chip=watch.total("tester") / population.n_chips,
        )

    def _run_adaptive(
        self,
        preparation: Preparation,
        population: Chips,
        period: float | None,
        circuit: Circuit | None,
    ) -> TestArtifact:
        _check_adaptive_context(preparation, period, circuit)
        if isinstance(population, ChipSource):
            population = population.realize()
        online = self.online
        watch = Stopwatch()
        with watch.measure("tester"):

            def aligned_test(delays, epsilon):
                return test_population(
                    delays,
                    preparation.plan,
                    preparation.specs,
                    preparation.prior_means,
                    preparation.prior_stds,
                    epsilon,
                    sigma_window=preparation.sigma_window,
                    k0=online.k0,
                    kd=online.kd,
                    align=online.align,
                    x_inits=preparation.x_inits,
                    chip_shard_size=online.chip_shard_size,
                    kernel=online.test_kernel,
                )

            eps_uniform = preparation.epsilon
            eps_coarse = coarse_epsilon(
                preparation.model,
                preparation.plan.measured,
                eps_uniform,
                kernel=online.criticality_kernel,
            )
            coarse = aligned_test(population.required, eps_coarse)
            certified = certify_refinement(
                preparation.structure,
                circuit.short_paths,
                preparation.predictor,
                coarse,
                population,
                period,
                eps_uniform,
                sigma_window=preparation.sigma_window,
                xi_tolerance=online.xi_tolerance,
                kernel=online.configure_kernel,
            )
            lower = coarse.lower.copy()
            upper = coarse.upper.copy()
            iterations = coarse.iterations.copy()
            per_batch = coarse.iterations_per_batch.copy()
            refine = np.flatnonzero(~certified)
            if refine.size:
                # Chips are row-independent through the whole test engine,
                # so this rerun reproduces the uniform budget's rows bit
                # for bit — an uncertified chip pays coarse + full.
                full = aligned_test(population.required[refine], eps_uniform)
                lower[refine] = full.lower
                upper[refine] = full.upper
                iterations[refine] += full.iterations
                per_batch[refine] += full.iterations_per_batch
            test = PopulationTestResult(
                measured_indices=coarse.measured_indices,
                lower=lower,
                upper=upper,
                iterations=iterations,
                iterations_per_batch=per_batch,
            )
        return TestArtifact(
            test=test,
            tester_seconds_per_chip=watch.total("tester") / population.n_chips,
        )


class PathwiseTestStage:
    """The baseline of [2, 6, 8, 9]: every required path stepped alone.

    A drop-in :class:`TestStage`: its artifact covers *all* paths (each path
    is its own batch), so the downstream stages run unchanged with nothing
    left to predict.  A lazy source is realized eagerly here — the baseline
    exists for comparison runs, not for out-of-core scale.

    With ``OnlineConfig.test_budget="adaptive"`` the same graduated-test
    machinery as :class:`AlignedTestStage` applies: the per-path binary
    searches first run at criticality-allocated coarse resolutions, chips
    whose verdict the certificate pins keep the coarse ranges, the rest
    rerun at full resolution (bit-identical to the uniform baseline).
    """

    def __init__(self, online: OnlineConfig | None = None):
        self.online = online or OnlineConfig()

    def run(
        self,
        preparation: Preparation,
        population: Chips,
        period: float | None = None,
        circuit: Circuit | None = None,
    ) -> TestArtifact:
        if self.online.test_budget == "adaptive":
            return self._run_adaptive(preparation, population, period, circuit)
        watch = Stopwatch()
        with watch.measure("tester"):
            required = (
                population.required_shard()
                if isinstance(population, ChipSource)
                else population.required
            )
            result = pathwise_frequency_stepping(
                required,
                preparation.prior_means,
                preparation.prior_stds,
                preparation.epsilon,
                sigma_window=preparation.sigma_window,
                kernel=self.online.test_kernel,
            )
            n_chips, n_paths = result.lower.shape
            test = PopulationTestResult(
                measured_indices=np.arange(n_paths, dtype=np.intp),
                lower=result.lower,
                upper=result.upper,
                iterations=np.full(n_chips, result.total_iterations, dtype=int),
                # Per-path counts are deterministic, so every chip's row is
                # the same vector: share it as a broadcast view instead of
                # materializing O(chips x paths) copies.
                iterations_per_batch=np.broadcast_to(
                    result.iterations_per_path, (n_chips, n_paths)
                ),
            )
        return TestArtifact(
            test=test,
            tester_seconds_per_chip=watch.total("tester") / population.n_chips,
        )

    def _run_adaptive(
        self,
        preparation: Preparation,
        population: Chips,
        period: float | None,
        circuit: Circuit | None,
    ) -> TestArtifact:
        _check_adaptive_context(preparation, period, circuit)
        if isinstance(population, ChipSource):
            population = population.realize()
        online = self.online
        watch = Stopwatch()
        with watch.measure("tester"):
            n_paths = len(preparation.prior_means)
            all_paths = np.arange(n_paths, dtype=np.intp)

            def pathwise_test(delays, epsilon):
                return pathwise_frequency_stepping(
                    delays,
                    preparation.prior_means,
                    preparation.prior_stds,
                    epsilon,
                    sigma_window=preparation.sigma_window,
                    kernel=online.test_kernel,
                )

            eps_uniform = preparation.epsilon
            eps_coarse = coarse_epsilon(
                preparation.model,
                all_paths,
                eps_uniform,
                kernel=online.criticality_kernel,
            )
            coarse = pathwise_test(population.required, eps_coarse)
            n_chips = coarse.lower.shape[0]
            coarse_test = PopulationTestResult(
                measured_indices=all_paths,
                lower=coarse.lower,
                upper=coarse.upper,
                iterations=np.full(
                    n_chips, coarse.total_iterations, dtype=int
                ),
                iterations_per_batch=np.broadcast_to(
                    coarse.iterations_per_path, (n_chips, n_paths)
                ),
            )
            certified = certify_refinement(
                preparation.structure,
                circuit.short_paths,
                None,  # every path is measured; nothing is predicted
                coarse_test,
                population,
                period,
                eps_uniform,
                sigma_window=preparation.sigma_window,
                xi_tolerance=online.xi_tolerance,
                kernel=online.configure_kernel,
            )
            lower = coarse.lower.copy()
            upper = coarse.upper.copy()
            iterations = np.full(n_chips, coarse.total_iterations, dtype=int)
            per_batch = np.tile(coarse.iterations_per_path, (n_chips, 1))
            refine = np.flatnonzero(~certified)
            if refine.size:
                full = pathwise_test(population.required[refine], eps_uniform)
                lower[refine] = full.lower
                upper[refine] = full.upper
                iterations[refine] += full.total_iterations
                per_batch[refine] += full.iterations_per_path
            test = PopulationTestResult(
                measured_indices=all_paths,
                lower=lower,
                upper=upper,
                iterations=iterations,
                iterations_per_batch=per_batch,
            )
        return TestArtifact(
            test=test,
            tester_seconds_per_chip=watch.total("tester") / population.n_chips,
        )


class PredictStage:
    """§3.4 input assembly: tested ranges + conditional predictions."""

    def run(
        self, preparation: Preparation, tested: TestArtifact
    ) -> BoundsArtifact:
        test = tested.test
        n_chips = test.n_chips
        n_paths = len(preparation.prior_means)
        watch = Stopwatch()
        with watch.measure("predict"):
            lower = np.empty((n_chips, n_paths))
            upper = np.empty((n_chips, n_paths))
            lower[:, test.measured_indices] = test.lower
            upper[:, test.measured_indices] = test.upper

            predictor = preparation.predictor
            if predictor is not None and test.n_measured < n_paths:
                # Conservative conditioning on measured *upper* bounds (§3.4).
                pred_lower, pred_upper = predictor.predict_intervals(
                    test.upper, sigma_window=preparation.sigma_window
                )
                lower[:, predictor.predicted_idx] = pred_lower
                upper[:, predictor.predicted_idx] = pred_upper
        return BoundsArtifact(
            lower=lower,
            upper=upper,
            predict_seconds_per_chip=watch.total("predict") / n_chips,
        )


class ConfigureStage:
    """§3.4: minimax-xi buffer configuration per chip."""

    def __init__(self, online: OnlineConfig | None = None):
        self.online = online or OnlineConfig()

    def run(
        self, preparation: Preparation, bounds: BoundsArtifact, period: float
    ) -> ConfigArtifact:
        watch = Stopwatch()
        with watch.measure("config"):
            configuration = configure_chips(
                preparation.structure,
                bounds.lower,
                bounds.upper,
                period,
                xi_tolerance=self.online.xi_tolerance,
                kernel=self.online.configure_kernel,
            )
        n_chips = bounds.lower.shape[0]
        return ConfigArtifact(
            configuration=configuration,
            config_seconds_per_chip=watch.total("config") / n_chips,
        )


class VerifyStage:
    """Final pass/fail test of the configured chips.

    With a lazy :class:`~repro.core.yields.ChipSource` the population is
    re-materialized shard by shard (``chip_shard_size`` chips at a time)
    and checked against the matching rows of the configuration — recompute
    over storage, so verification stays O(shard) too.
    """

    def __init__(self, chip_shard_size: int | None = None):
        self.chip_shard_size = chip_shard_size

    def run(
        self,
        circuit: Circuit,
        population: Chips,
        configured: ConfigArtifact,
        period: float,
    ) -> VerifyArtifact:
        result = configured.configuration
        if isinstance(population, ChipSource):
            passed = np.empty(population.n_chips, dtype=bool)
            for start, stop, shard in population.iter_shards(self.chip_shard_size):
                rows = ConfigurationResult(
                    feasible=result.feasible[start:stop],
                    settings=result.settings[start:stop],
                    xi=result.xi[start:stop],
                    buffer_names=result.buffer_names,
                )
                passed[start:stop] = configured_pass(circuit, shard, rows, period)
        else:
            passed = configured_pass(circuit, population, result, period)
        return VerifyArtifact(passed=passed)


__all__ = [
    "AlignedTestStage",
    "BoundsArtifact",
    "Chips",
    "ConfigArtifact",
    "ConfigureStage",
    "OfflineRequest",
    "OfflineStage",
    "PathwiseTestStage",
    "PredictStage",
    "TestArtifact",
    "TestStage",
    "VerifyArtifact",
    "VerifyStage",
]
