"""Content-addressed preparation cache.

Offline preparation is the expensive stage of the flow (grouping,
multiplexing, hold-bound Monte-Carlo, predictor factorization).  Its output
is fully determined by three inputs:

1. the circuit — fingerprinted over exactly the data the offline stage
   consumes (path endpoints, the joint delay model, hold requirements,
   mutual exclusions, buffer sites),
2. the design clock period that sizes the buffer ranges, and
3. the :class:`~repro.api.config.OfflineConfig` field tuple.

:class:`PreparationCache` maps that key to a computed
:class:`~repro.core.framework.Preparation` so runs that differ only in
online knobs (operating period, population, alignment, xi tolerance) share
one preparation.  The in-memory tier is thread-safe and LRU-bounded; an
optional second, on-disk tier (``disk_dir``) persists serialized
preparations under the same content-addressed key, so cold processes and
repeat experiment runs skip the offline stage entirely.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.api.config import OfflineConfig
from repro.circuit.fingerprint import fingerprint_circuit
from repro.utils.diskio import (
    LockTimeout,
    file_lock,
    prune_by_mtime,
    write_atomic,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.circuit.generator import Circuit
    from repro.core.framework import Preparation


#: Bump when the on-disk payload layout (or anything entering the digest)
#: changes; old artifacts are then simply never matched again.
#: 2: Preparation grew ``solver_stats``; OfflineConfig grew
#: ``hold_exact``/``hold_backend`` (both enter cache_fields()).
#: 3: Preparation grew ``model`` (needed by adaptive test budgets);
#: OfflineConfig grew ``fill_rank`` (enters cache_fields()).
DISK_FORMAT_VERSION = 3


@dataclass(frozen=True)
class PreparationKey:
    """Cache key: circuit content, design period, offline knobs."""

    circuit_fingerprint: str
    clock_period: float
    offline_fields: tuple

    @staticmethod
    def build(
        circuit: "Circuit", clock_period: float, config: OfflineConfig
    ) -> "PreparationKey":
        return PreparationKey(
            circuit_fingerprint=fingerprint_circuit(circuit),
            clock_period=float(clock_period),
            offline_fields=config.cache_fields(),
        )

    def digest(self) -> str:
        """Stable hex name for the disk tier.

        ``clock_period`` enters as its exact ``float.hex`` bits and the
        offline fields as their repr (ints, floats, bools, strs, None —
        all round-trip stably), so equal keys name equal files on every
        platform and process.
        """
        payload = repr((
            DISK_FORMAT_VERSION,
            self.circuit_fingerprint,
            self.clock_period.hex(),
            self.offline_fields,
        ))
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Counters exposed for tests and capacity planning."""

    hits: int
    misses: int
    size: int
    disk_hits: int = 0

    @property
    def computes(self) -> int:
        """Number of times the offline stage actually ran."""
        return self.misses

    @property
    def warm_lookups(self) -> int:
        """Lookups served without running the offline stage (any tier)."""
        return self.hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        """Warm fraction of all lookups (0.0 when nothing was looked up).

        The long-lived service reports this as its *prep warmth*: a
        coalescing daemon serving near-duplicate traffic should converge
        toward 1.0 as its preparation tiers fill.
        """
        total = self.hits + self.disk_hits + self.misses
        return self.warm_lookups / total if total else 0.0


class PreparationCache:
    """Two-tier cache of offline preparations.

    Tier 1 is a thread-safe in-memory LRU; ``max_entries`` bounds memory
    (preparations hold dense predictor weights, so long-lived engines
    serving many circuits should keep the default bound rather than growing
    without limit).  Tier 2, enabled with ``disk_dir``, persists each
    preparation as a pickle named by the content-addressed key digest:
    every process pointed at the directory — cold restarts, pool workers,
    repeat experiment runs — loads instead of recomputing.  Treat the
    directory as trusted (pickles execute on load) and delete it to
    invalidate.  ``max_disk_entries`` prunes the oldest artifacts (by
    modification time) past the bound; ``None`` keeps everything.
    """

    def __init__(
        self,
        max_entries: int = 64,
        disk_dir: str | Path | None = None,
        max_disk_entries: int | None = None,
    ):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_disk_entries is not None and max_disk_entries <= 0:
            raise ValueError("max_disk_entries must be positive")
        self.max_entries = max_entries
        self.max_disk_entries = max_disk_entries
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._entries: OrderedDict[PreparationKey, "Preparation"] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PreparationKey) -> bool:
        """True when either tier can serve ``key`` without computing."""
        with self._lock:
            if key in self._entries:
                return True
        path = self._disk_path(key)
        return path is not None and path.exists()

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                disk_hits=self._disk_hits,
            )

    # -- disk tier -------------------------------------------------------------

    def _disk_path(self, key: PreparationKey) -> Path | None:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"prep-{key.digest()}.pkl"

    def _disk_load(self, key: PreparationKey) -> "Preparation | None":
        """Fetch from the disk tier; any failure degrades to a miss."""
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated write, version skew, unpicklable garbage: drop the
            # artifact and recompute rather than failing the run.
            path.unlink(missing_ok=True)
            return None

    def _disk_store(self, key: PreparationKey, value: "Preparation") -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            # Serialize racing writers (daemons, pool workers sharing one
            # cache directory) on a per-key lease and double-check under
            # it: preparations are content-addressed, so if the artifact
            # exists the race is already won and rewriting multi-MB
            # pickles is pure waste.  A contended lease means the holder
            # is writing this very artifact — skip, don't wait long.
            with file_lock(path.with_suffix(".lock"), timeout=5.0):
                if path.exists():
                    return
                write_atomic(
                    path,
                    lambda handle: pickle.dump(
                        value, handle, protocol=pickle.HIGHEST_PROTOCOL
                    ),
                )
        except LockTimeout:
            return
        except Exception:
            # Full/read-only disk, an unpicklable preparation variant —
            # a failed store never fails the computation it was caching.
            return
        self._disk_prune()

    def _disk_prune(self) -> None:
        if self.disk_dir is None:
            return
        prune_by_mtime(self.disk_dir, "prep-*.pkl", self.max_disk_entries)

    # -- lookup ----------------------------------------------------------------

    def get_or_compute(
        self, key: PreparationKey, compute: Callable[[], "Preparation"]
    ) -> "Preparation":
        """Return the cached preparation for ``key``, computing on miss.

        Lookup order: memory, disk, compute.  A disk hit is promoted into
        the memory tier; a compute is written through to both.  Compute and
        disk I/O run outside the lock (offline preparation can take
        seconds); concurrent misses on the same key may compute twice, but
        the first stored value wins so callers always share one object
        afterwards.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
        loaded = self._disk_load(key)
        value = loaded if loaded is not None else compute()
        with self._lock:
            if key in self._entries:  # lost the race: reuse the winner
                self._entries.move_to_end(key)
                if loaded is not None:
                    self._disk_hits += 1
                else:
                    self._misses += 1
                return self._entries[key]
            self._entries[key] = value
            if loaded is not None:
                self._disk_hits += 1
            else:
                self._misses += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        if loaded is None:
            self._disk_store(key, value)
        return value

    def clear(self, disk: bool = False) -> None:
        """Reset the memory tier (and, with ``disk=True``, the disk tier)."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._disk_hits = 0
        if disk and self.disk_dir is not None:
            for artifact in self.disk_dir.glob("prep-*.pkl"):
                artifact.unlink(missing_ok=True)


__all__ = [
    "CacheStats",
    "PreparationCache",
    "PreparationKey",
    "fingerprint_circuit",
]
