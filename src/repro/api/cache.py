"""Content-addressed preparation cache.

Offline preparation is the expensive stage of the flow (grouping,
multiplexing, hold-bound Monte-Carlo, predictor factorization).  Its output
is fully determined by three inputs:

1. the circuit — fingerprinted over exactly the data the offline stage
   consumes (path endpoints, the joint delay model, hold requirements,
   mutual exclusions, buffer sites),
2. the design clock period that sizes the buffer ranges, and
3. the :class:`~repro.api.config.OfflineConfig` field tuple.

:class:`PreparationCache` maps that key to a computed
:class:`~repro.core.framework.Preparation` so runs that differ only in
online knobs (operating period, population, alignment, xi tolerance) share
one preparation.  The cache is thread-safe and LRU-bounded.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import astuple, dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.api.config import OfflineConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.circuit.generator import Circuit
    from repro.core.framework import Preparation


def _update_array(digest: "hashlib._Hash", array: np.ndarray) -> None:
    arr = np.ascontiguousarray(array)
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())


#: Memoized fingerprints keyed by object id; weakref callbacks evict dead
#: entries and an identity check guards against id reuse.
_fingerprint_memo: dict[int, tuple["weakref.ref[Circuit]", str]] = {}


def fingerprint_circuit(circuit: "Circuit") -> str:
    """Hex digest over everything the offline stage reads from a circuit.

    Two circuits with equal fingerprints yield identical preparations under
    equal configs; anything that changes delay statistics (e.g.
    :meth:`Circuit.with_inflated_randomness`) changes the fingerprint.
    Circuits are immutable, so the digest is memoized per object — repeat
    runs and scenario batches hash the arrays once, not per call.
    """
    memo_key = id(circuit)
    entry = _fingerprint_memo.get(memo_key)
    if entry is not None and entry[0]() is circuit:
        return entry[1]
    fingerprint = _compute_fingerprint(circuit)
    ref = weakref.ref(
        circuit, lambda _ref: _fingerprint_memo.pop(memo_key, None)
    )
    _fingerprint_memo[memo_key] = (ref, fingerprint)
    return fingerprint


def _compute_fingerprint(circuit: "Circuit") -> str:
    digest = hashlib.sha256()
    digest.update(circuit.name.encode())
    digest.update(repr(astuple(circuit.spec)).encode())
    digest.update("\x1f".join(circuit.ff_names).encode())
    digest.update("\x1f".join(circuit.buffered_ffs).encode())
    for path_set in (circuit.paths, circuit.short_paths, circuit.background):
        _update_array(digest, path_set.source_idx)
        _update_array(digest, path_set.sink_idx)
        _update_array(digest, path_set.model.means)
        _update_array(digest, path_set.model.loadings)
        _update_array(digest, path_set.model.independent)
    digest.update(repr(sorted(circuit.mutual_exclusions)).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class PreparationKey:
    """Cache key: circuit content, design period, offline knobs."""

    circuit_fingerprint: str
    clock_period: float
    offline_fields: tuple

    @staticmethod
    def build(
        circuit: "Circuit", clock_period: float, config: OfflineConfig
    ) -> "PreparationKey":
        return PreparationKey(
            circuit_fingerprint=fingerprint_circuit(circuit),
            clock_period=float(clock_period),
            offline_fields=config.cache_fields(),
        )


@dataclass(frozen=True)
class CacheStats:
    """Counters exposed for tests and capacity planning."""

    hits: int
    misses: int
    size: int

    @property
    def computes(self) -> int:
        """Number of times the offline stage actually ran."""
        return self.misses


class PreparationCache:
    """Thread-safe LRU cache of offline preparations.

    ``max_entries`` bounds memory: preparations hold dense predictor
    weights, so long-lived engines serving many circuits should keep the
    default bound rather than growing without limit.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[PreparationKey, "Preparation"] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PreparationKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits, misses=self._misses, size=len(self._entries)
            )

    def get_or_compute(
        self, key: PreparationKey, compute: Callable[[], "Preparation"]
    ) -> "Preparation":
        """Return the cached preparation for ``key``, computing on miss.

        The compute callable runs outside the lock (offline preparation can
        take seconds); concurrent misses on the same key may compute twice,
        but the first stored value wins so callers always share one object
        afterwards.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
        value = compute()
        with self._lock:
            if key in self._entries:  # lost the race: reuse the winner
                self._entries.move_to_end(key)
                self._misses += 1
                return self._entries[key]
            self._entries[key] = value
            self._misses += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0


__all__ = [
    "CacheStats",
    "PreparationCache",
    "PreparationKey",
    "fingerprint_circuit",
]
