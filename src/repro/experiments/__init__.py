"""Reproduction harness for the paper's evaluation (Table 1, Table 2,
Figure 7, Figure 8).

Run from the command line::

    python -m repro.experiments all --quick

or drive programmatically via :func:`run_table1` etc.
"""

from repro.experiments.benchdata import (
    BENCHMARK_NAMES,
    PAPER_BY_NAME,
    PAPER_RESULTS,
    QUICK_NAMES,
    all_benchmark_specs,
    benchmark_spec,
)
from repro.experiments.context import (
    DEFAULT_OFFLINE,
    DEFAULT_ONLINE,
    CircuitContext,
    build_context,
)
from repro.experiments.figure7 import Figure7Row, render_figure7, run_figure7
from repro.experiments.figure8 import Figure8Row, render_figure8, run_figure8
from repro.experiments.table1 import Table1Row, render_table1, run_table1
from repro.experiments.table2 import Table2Row, render_table2, run_table2

__all__ = [
    "BENCHMARK_NAMES",
    "CircuitContext",
    "DEFAULT_OFFLINE",
    "DEFAULT_ONLINE",
    "Figure7Row",
    "Figure8Row",
    "PAPER_BY_NAME",
    "PAPER_RESULTS",
    "QUICK_NAMES",
    "Table1Row",
    "Table2Row",
    "all_benchmark_specs",
    "benchmark_spec",
    "build_context",
    "render_figure7",
    "render_figure8",
    "render_table1",
    "render_table2",
    "run_figure7",
    "run_figure8",
    "run_table1",
    "run_table2",
]
