"""Table 1 reproduction: test cost with delay alignment and statistical
prediction.

Per circuit: circuit sizes (``ns``, ``ng``, ``nb``, ``np``), tested paths
``npt``, average frequency-stepping iterations per chip ``ta`` and per
tested path ``tv = ta/npt`` for EffiTest, the adaptive-budget iterations
``ta*`` (``OnlineConfig(test_budget="adaptive")`` — the graduated
coarse/certify/refine test at verdict-identical yield), the path-wise
baseline ``t'a`` and ``t'v``, the reduction ratios ``ra`` and ``rv``,
and the runtimes ``Tp`` (offline), ``Tt`` (on-tester optimization per
chip) and ``Ts`` (configuration per chip).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.experiments.benchdata import BENCHMARK_NAMES, PAPER_BY_NAME
from repro.experiments.context import CircuitContext, build_context
from repro.utils.tables import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.results import RunStore


@dataclass(frozen=True)
class Table1Row:
    """One measured row of Table 1."""

    name: str
    ns: int
    ng: int
    nb: int
    np_: int
    npt: int
    ta: float
    tv: float
    ta_adaptive: float
    ta_pathwise: float
    tv_pathwise: float
    ra_percent: float
    rv_percent: float
    tp_seconds: float
    tt_seconds: float
    ts_seconds: float


def run_circuit(
    context: CircuitContext, store: "RunStore | None" = None
) -> Table1Row:
    """Measure one circuit's Table 1 row at its T1 operating point.

    The EffiTest run goes through :meth:`~repro.api.Engine.sweep`: with a
    ``store`` a previously completed row reloads its record instead of
    re-testing the population (the path-wise baseline, the comparison
    column, is recomputed — it is not an engine scenario).
    """
    circuit = context.circuit
    (record,) = context.engine.sweep([context.scenario(context.t1)], store=store)
    adaptive = context.scenario(
        context.t1,
        online=replace(context.online, test_budget="adaptive"),
        label=f"{context.name}@{context.t1:g}/adaptive",
    )
    (adaptive_record,) = context.engine.sweep([adaptive], store=store)
    baseline = context.pathwise_baseline()

    ta = record.mean_iterations
    npt = record.n_tested
    tv = record.iterations_per_tested_path
    ta_p = float(baseline.total_iterations)
    tv_p = baseline.mean_iterations_per_path
    return Table1Row(
        name=circuit.name,
        ns=circuit.spec.n_flipflops,
        ng=circuit.spec.n_gates,
        nb=circuit.spec.n_buffers,
        np_=circuit.paths.n_paths,
        npt=npt,
        ta=ta,
        tv=tv,
        ta_adaptive=adaptive_record.mean_iterations,
        ta_pathwise=ta_p,
        tv_pathwise=tv_p,
        ra_percent=100.0 * (ta_p - ta) / ta_p if ta_p else 0.0,
        rv_percent=100.0 * (tv_p - tv) / tv_p if tv_p else 0.0,
        tp_seconds=record.offline_seconds,
        tt_seconds=record.tester_seconds_per_chip,
        ts_seconds=record.config_seconds_per_chip,
    )


def run_table1(
    circuits: tuple[str, ...] = BENCHMARK_NAMES,
    n_chips: int = 1000,
    seed: int = 20160605,
    engine=None,
    store: "RunStore | None" = None,
) -> list[Table1Row]:
    """Measure Table 1 rows for the requested circuits.

    A shared ``engine`` lets other experiments on the same circuits reuse
    the offline preparations computed here; a ``store`` makes the run
    resumable (and warm on re-runs).
    """
    rows = []
    for name in circuits:
        context = build_context(
            name, n_chips=n_chips, seed=seed, engine=engine, prepare=False
        )
        rows.append(run_circuit(context, store=store))
    return rows


def render_table1(rows: list[Table1Row], with_paper: bool = True) -> str:
    """Format measured rows, optionally interleaved with the paper's."""
    table = Table(
        ["circuit", "ns", "ng", "nb", "np", "npt", "ta", "tv", "ta*",
         "t'a", "t'v", "ra%", "rv%", "Tp(s)", "Tt(s)", "Ts(s)"],
    )
    for row in rows:
        table.add_row([
            row.name, row.ns, row.ng, row.nb, row.np_, row.npt,
            round(row.ta, 1), round(row.tv, 2), round(row.ta_adaptive, 1),
            round(row.ta_pathwise, 0), round(row.tv_pathwise, 2),
            round(row.ra_percent, 2), round(row.rv_percent, 2),
            round(row.tp_seconds, 2), round(row.tt_seconds, 4),
            round(row.ts_seconds, 4),
        ])
        if with_paper and row.name in PAPER_BY_NAME:
            p = PAPER_BY_NAME[row.name]
            table.add_row([
                "  (paper)", p.ns, p.ng, p.nb, p.np_, p.npt,
                p.ta, p.tv, "-", p.ta_pathwise, p.tv_pathwise,
                p.ra_percent, p.rv_percent, "-", "-", "-",
            ])
    return table.render()
