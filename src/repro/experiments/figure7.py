"""Figure 7 reproduction: yield under enlarged random variation.

The paper inflates every path delay's standard deviation by 10 % *without
changing the covariances* (pure extra randomness), then compares three
yields per circuit at the original T1 operating point:

1. no buffers in the circuit,
2. buffers configured by EffiTest (tested + predicted delays),
3. buffers with a perfect (ideal) configuration.

Expected shape: (1) < (2) < (3) everywhere, with (2) losing a bit more to
(3) than in Table 2 because prediction degrades as the purely random part
grows (eq. 5's conditional variance stays larger).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.api import Scenario
from repro.core.yields import chip_source, ideal_yield, no_buffer_yield
from repro.experiments.benchdata import BENCHMARK_NAMES
from repro.experiments.context import build_context
from repro.utils.rng import derive_seed
from repro.utils.tables import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.results import RunStore


@dataclass(frozen=True)
class Figure7Row:
    """The three bars of Fig. 7 for one circuit (fractions, not %)."""

    name: str
    period: float
    no_buffer: float
    effitest: float
    ideal: float


def run_circuit(
    name: str,
    n_chips: int = 1000,
    seed: int = 20160605,
    inflation: float = 1.1,
    engine=None,
    store: "RunStore | None" = None,
) -> Figure7Row:
    """Measure Fig. 7 bars for one circuit.

    The operating period is the *original* circuit's T1; the population is
    drawn from the inflated model, and the whole EffiTest flow (grouping,
    prediction, test, configuration) runs against the inflated statistics.
    The EffiTest bar goes through :meth:`~repro.api.Engine.sweep` (the
    inflated model changes the circuit fingerprint, so both the run key
    and the preparation key are distinct from the base circuit's).
    """
    base = build_context(name, n_chips=8, seed=seed, prepare=False, engine=engine)
    inflated = base.circuit.with_inflated_randomness(inflation)
    source = chip_source(
        inflated, n_chips, seed=derive_seed(seed, name, "figure7")
    )

    scenario = Scenario(
        inflated,
        period=base.t1,
        clock_period=base.t1,
        population=source,
        offline=base.offline,
        online=replace(base.online, artifacts="summary"),
        label=f"{name}@fig7",
    )
    (record,) = base.engine.sweep([scenario], store=store)

    # The comparison bars are local evaluations over the same chips.
    population = source.realize()
    preparation = base.engine.prepare(inflated, base.t1, base.offline)
    return Figure7Row(
        name=name,
        period=base.t1,
        no_buffer=no_buffer_yield(population, base.t1),
        effitest=record.yield_fraction,
        ideal=ideal_yield(inflated, population, preparation.structure, base.t1),
    )


def run_figure7(
    circuits: tuple[str, ...] = BENCHMARK_NAMES,
    n_chips: int = 1000,
    seed: int = 20160605,
    inflation: float = 1.1,
    engine=None,
    store: "RunStore | None" = None,
) -> list[Figure7Row]:
    return [
        run_circuit(
            name, n_chips=n_chips, seed=seed, inflation=inflation,
            engine=engine, store=store,
        )
        for name in circuits
    ]


def render_figure7(rows: list[Figure7Row]) -> str:
    """Text rendering of the bar chart (values + ordering check)."""
    table = Table(["circuit", "no buffers", "EffiTest", "ideal config", "ordering ok"])
    for row in rows:
        table.add_row([
            row.name,
            round(row.no_buffer, 3),
            round(row.effitest, 3),
            round(row.ideal, 3),
            row.no_buffer <= row.effitest + 1e-9 <= row.ideal + 2e-9,
        ])
    return table.render()
