"""Table 2 reproduction: yield comparison at two operating periods.

For each circuit and for T1/T2 (periods where the no-buffer yield is 50 %
and 84.13 %): ``yi`` — yield with a perfect delay measurement; ``yt`` —
yield with delays measured/predicted by EffiTest; ``yr = yi - yt`` — the
drop caused by test/prediction inaccuracy (the paper reports ~0.2–2.4
percentage points).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.yields import ideal_yield, no_buffer_yield
from repro.experiments.benchdata import BENCHMARK_NAMES, PAPER_BY_NAME
from repro.experiments.context import CircuitContext, build_context
from repro.utils.tables import Table


@dataclass(frozen=True)
class Table2Row:
    """Measured yields (percent) for one circuit."""

    name: str
    t1: float
    t2: float
    no_buffer_t1: float
    yi_t1: float
    yt_t1: float
    no_buffer_t2: float
    yi_t2: float
    yt_t2: float

    @property
    def yr_t1(self) -> float:
        return self.yi_t1 - self.yt_t1

    @property
    def yr_t2(self) -> float:
        return self.yi_t2 - self.yt_t2


def run_circuit(context: CircuitContext) -> Table2Row:
    """Measure one circuit's Table 2 row."""
    circuit = context.circuit
    prep = context.preparation
    pop = context.population

    values = {}
    for label, period in (("t1", context.t1), ("t2", context.t2)):
        run = context.run(period, pop)
        values[f"yt_{label}"] = 100.0 * run.yield_fraction
        values[f"yi_{label}"] = 100.0 * ideal_yield(
            circuit, pop, prep.structure, period
        )
        values[f"no_buffer_{label}"] = 100.0 * no_buffer_yield(pop, period)

    return Table2Row(name=circuit.name, t1=context.t1, t2=context.t2, **values)


def run_table2(
    circuits: tuple[str, ...] = BENCHMARK_NAMES,
    n_chips: int = 1000,
    seed: int = 20160605,
    engine=None,
) -> list[Table2Row]:
    rows = []
    for name in circuits:
        context = build_context(name, n_chips=n_chips, seed=seed, engine=engine)
        rows.append(run_circuit(context))
    return rows


def render_table2(rows: list[Table2Row], with_paper: bool = True) -> str:
    table = Table(
        ["circuit", "nobuf@T1", "yi@T1", "yt@T1", "yr@T1",
         "nobuf@T2", "yi@T2", "yt@T2", "yr@T2"],
    )
    for row in rows:
        table.add_row([
            row.name,
            round(row.no_buffer_t1, 2), round(row.yi_t1, 2),
            round(row.yt_t1, 2), round(row.yr_t1, 2),
            round(row.no_buffer_t2, 2), round(row.yi_t2, 2),
            round(row.yt_t2, 2), round(row.yr_t2, 2),
        ])
        if with_paper and row.name in PAPER_BY_NAME:
            p = PAPER_BY_NAME[row.name]
            table.add_row([
                "  (paper)", 50.0, p.yi_t1, p.yt_t1,
                round(p.yi_t1 - p.yt_t1, 2),
                84.13, p.yi_t2, p.yt_t2, round(p.yi_t2 - p.yt_t2, 2),
            ])
    return table.render()
