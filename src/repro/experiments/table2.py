"""Table 2 reproduction: yield comparison at two operating periods.

For each circuit and for T1/T2 (periods where the no-buffer yield is 50 %
and 84.13 %): ``yi`` — yield with a perfect delay measurement; ``yt`` —
yield with delays measured/predicted by EffiTest; ``yr = yi - yt`` — the
drop caused by test/prediction inaccuracy (the paper reports ~0.2–2.4
percentage points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.yields import ideal_yield, no_buffer_yield
from repro.experiments.benchdata import BENCHMARK_NAMES, PAPER_BY_NAME
from repro.experiments.context import CircuitContext, build_context
from repro.utils.tables import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.results import RunStore


@dataclass(frozen=True)
class Table2Row:
    """Measured yields (percent) for one circuit."""

    name: str
    t1: float
    t2: float
    no_buffer_t1: float
    yi_t1: float
    yt_t1: float
    no_buffer_t2: float
    yi_t2: float
    yt_t2: float

    @property
    def yr_t1(self) -> float:
        return self.yi_t1 - self.yt_t1

    @property
    def yr_t2(self) -> float:
        return self.yi_t2 - self.yt_t2


def run_circuit(
    context: CircuitContext, store: "RunStore | None" = None
) -> Table2Row:
    """Measure one circuit's Table 2 row.

    The two EffiTest yield runs (T1, T2) go through one
    :meth:`~repro.api.Engine.sweep`; the T1 scenario is keyed identically
    to Table 1's, so ``python -m repro.experiments all`` pays it once.
    The ideal/no-buffer comparisons are cheap local evaluations over the
    same dense population.
    """
    circuit = context.circuit
    pop = context.population

    scenarios = [
        context.scenario(period) for period in (context.t1, context.t2)
    ]
    records = list(context.engine.sweep(scenarios, store=store))

    values = {}
    structure = context.require_preparation().structure
    for label, period, record in zip(
        ("t1", "t2"), (context.t1, context.t2), records
    ):
        values[f"yt_{label}"] = 100.0 * record.yield_fraction
        values[f"yi_{label}"] = 100.0 * ideal_yield(
            circuit, pop, structure, period
        )
        values[f"no_buffer_{label}"] = 100.0 * no_buffer_yield(pop, period)

    return Table2Row(name=circuit.name, t1=context.t1, t2=context.t2, **values)


def run_table2(
    circuits: tuple[str, ...] = BENCHMARK_NAMES,
    n_chips: int = 1000,
    seed: int = 20160605,
    engine=None,
    store: "RunStore | None" = None,
) -> list[Table2Row]:
    rows = []
    for name in circuits:
        context = build_context(
            name, n_chips=n_chips, seed=seed, engine=engine, prepare=False
        )
        rows.append(run_circuit(context, store=store))
    return rows


def render_table2(rows: list[Table2Row], with_paper: bool = True) -> str:
    table = Table(
        ["circuit", "nobuf@T1", "yi@T1", "yt@T1", "yr@T1",
         "nobuf@T2", "yi@T2", "yt@T2", "yr@T2"],
    )
    for row in rows:
        table.add_row([
            row.name,
            round(row.no_buffer_t1, 2), round(row.yi_t1, 2),
            round(row.yt_t1, 2), round(row.yr_t1, 2),
            round(row.no_buffer_t2, 2), round(row.yi_t2, 2),
            round(row.yt_t2, 2), round(row.yr_t2, 2),
        ])
        if with_paper and row.name in PAPER_BY_NAME:
            p = PAPER_BY_NAME[row.name]
            table.add_row([
                "  (paper)", 50.0, p.yi_t1, p.yt_t1,
                round(p.yi_t1 - p.yt_t1, 2),
                84.13, p.yi_t2, p.yt_t2, round(p.yi_t2 - p.yt_t2, 2),
            ])
    return table.render()
