"""Published benchmark statistics (Table 1 of the paper).

These numbers — flip-flops ``ns``, gates ``ng``, inserted buffers ``nb``
and required paths ``np`` — calibrate the synthetic generator so every
experiment runs at the paper's circuit sizes.  The paper's reference values
for its own metrics are kept alongside so reports can print
paper-vs-measured columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.generator import CircuitSpec


@dataclass(frozen=True)
class PaperRow:
    """The paper's published Table 1/Table 2 values for one circuit."""

    name: str
    ns: int
    ng: int
    nb: int
    np_: int
    npt: int
    ta: float
    tv: float
    ta_pathwise: float
    tv_pathwise: float
    ra_percent: float
    rv_percent: float
    # Table 2
    yi_t1: float
    yt_t1: float
    yi_t2: float
    yt_t2: float


#: Table 1 + Table 2 of the paper, verbatim.
PAPER_RESULTS: tuple[PaperRow, ...] = (
    PaperRow("s9234", 211, 5597, 2, 80, 15, 37, 2.47, 700, 8.75, 94.71, 71.77,
             77.11, 75.80, 95.94, 95.61),
    PaperRow("s13207", 638, 7951, 5, 485, 19, 39, 2.05, 4001, 8.25, 99.03, 75.15,
             72.37, 72.09, 96.42, 96.03),
    PaperRow("s15850", 534, 9772, 5, 397, 22, 76, 3.45, 3684, 9.28, 97.94, 62.82,
             69.34, 69.09, 94.33, 94.10),
    PaperRow("s38584", 1426, 19253, 7, 370, 21, 62, 2.95, 3093, 8.36, 98.00, 64.71,
             85.97, 85.01, 98.48, 97.10),
    PaperRow("mem_ctrl", 1065, 10327, 10, 3016, 62, 195, 3.15, 27415, 9.09,
             99.29, 65.35, 67.11, 64.98, 94.58, 92.40),
    PaperRow("usb_funct", 1746, 14381, 17, 482, 32, 114, 3.56, 4569, 9.48,
             97.51, 62.45, 71.77, 69.40, 96.57, 94.60),
    PaperRow("ac97_ctrl", 2199, 9208, 21, 780, 78, 288, 3.69, 7340, 9.41,
             96.08, 60.79, 75.05, 73.40, 94.92, 93.09),
    PaperRow("pci_bridge32", 3321, 12494, 32, 3472, 84, 298, 3.55, 29061, 8.37,
             98.97, 57.59, 73.66, 71.50, 96.76, 95.71),
)

PAPER_BY_NAME: dict[str, PaperRow] = {row.name: row for row in PAPER_RESULTS}

#: Circuit names in the paper's presentation order.
BENCHMARK_NAMES: tuple[str, ...] = tuple(row.name for row in PAPER_RESULTS)

#: Small subset used by default in tests and quick runs.
QUICK_NAMES: tuple[str, ...] = ("s9234", "s13207", "usb_funct")


def benchmark_spec(name: str) -> CircuitSpec:
    """The generator spec calibrated to one of the paper's circuits."""
    row = PAPER_BY_NAME.get(name)
    if row is None:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        )
    return CircuitSpec(
        name=row.name,
        n_flipflops=row.ns,
        n_gates=row.ng,
        n_buffers=row.nb,
        n_paths=row.np_,
    )


def all_benchmark_specs() -> list[CircuitSpec]:
    return [benchmark_spec(name) for name in BENCHMARK_NAMES]
