"""Command-line experiment runner.

Usage::

    python -m repro.experiments table1 [--circuits s9234,s13207] [--chips N]
    python -m repro.experiments table2 ...
    python -m repro.experiments figure7 ...
    python -m repro.experiments figure8 ...
    python -m repro.experiments all --quick

``--chips`` trades precision for runtime; the paper used 10 000 chips per
circuit (pass ``--chips 10000`` to match; defaults are smaller).

Runs are **interrupt-safe**: every completed scenario lands in a
persistent :class:`~repro.results.RunStore` under ``--store`` (default
``.effitest-store/``; preparations persist next to it), so a killed run
resumes where it stopped and an unchanged re-run reloads every record
without executing a single online stage.  Pass ``--no-store`` to force a
fully fresh computation.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import Engine
from repro.experiments.benchdata import BENCHMARK_NAMES, QUICK_NAMES
from repro.experiments.figure7 import render_figure7, run_figure7
from repro.experiments.figure8 import render_figure8, run_figure8
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.table2 import render_table2, run_table2
from repro.results import RunStore, store_layout

_EXPERIMENTS = ("table1", "table2", "figure7", "figure8")

#: Default persistent store directory (relative to the working directory).
DEFAULT_STORE = ".effitest-store"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the EffiTest paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=_EXPERIMENTS + ("all",),
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--circuits",
        default=None,
        help="comma-separated circuit names (default: all eight)",
    )
    parser.add_argument(
        "--chips",
        type=int,
        default=None,
        help="Monte-Carlo chips per circuit (default: 1000; figure8: 200)",
    )
    parser.add_argument("--seed", type=int, default=20160605)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="restrict to three small circuits and fewer chips",
    )
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help="directory of the persistent run store + preparation cache "
        f"(default: {DEFAULT_STORE})",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="run fully fresh: no persistent results or preparations",
    )
    return parser


def _circuits(args: argparse.Namespace) -> tuple[str, ...]:
    if args.circuits:
        names = tuple(n.strip() for n in args.circuits.split(",") if n.strip())
        unknown = [n for n in names if n not in BENCHMARK_NAMES]
        if unknown:
            raise SystemExit(f"unknown circuits: {unknown}; known: {BENCHMARK_NAMES}")
        return names
    return QUICK_NAMES if args.quick else BENCHMARK_NAMES


def build_store(args: argparse.Namespace) -> RunStore | None:
    """The persistent run store selected by ``--store`` / ``--no-store``."""
    if getattr(args, "no_store", False):
        return None
    root = getattr(args, "store", None) or DEFAULT_STORE
    runs, _preparations = store_layout(root)
    return RunStore(runs)


def build_engine(args: argparse.Namespace) -> Engine:
    """An engine whose preparation cache persists next to the run store."""
    if getattr(args, "no_store", False):
        return Engine()
    root = getattr(args, "store", None) or DEFAULT_STORE
    _runs, preparations = store_layout(root)
    return Engine(cache_dir=preparations)


def run_one(
    name: str,
    args: argparse.Namespace,
    engine: Engine | None = None,
    store: RunStore | None = None,
) -> str:
    """Regenerate one artefact; a shared ``engine`` pools preparations
    (``all`` pays the offline stage once per circuit, not per experiment)
    and a ``store`` reloads scenarios completed by earlier runs."""
    circuits = _circuits(args)
    chips = args.chips
    engine = engine or Engine()
    before = engine.cache_stats
    store_before = store.stats if store is not None else None
    start = time.perf_counter()
    if name == "table1":
        text = render_table1(run_table1(
            circuits, chips or (300 if args.quick else 1000), args.seed,
            engine=engine, store=store,
        ))
    elif name == "table2":
        text = render_table2(run_table2(
            circuits, chips or (300 if args.quick else 1000), args.seed,
            engine=engine, store=store,
        ))
    elif name == "figure7":
        text = render_figure7(run_figure7(
            circuits, chips or (300 if args.quick else 1000), args.seed,
            engine=engine, store=store,
        ))
    elif name == "figure8":
        text = render_figure8(run_figure8(
            circuits, chips or (50 if args.quick else 200), args.seed,
            engine=engine, store=store,
        ))
    else:  # pragma: no cover - guarded by argparse choices
        raise ValueError(name)
    elapsed = time.perf_counter() - start
    stats = engine.cache_stats
    header = (
        f"== {name} ({', '.join(circuits)}; {elapsed:.1f}s; "
        f"prep cache {stats.hits - before.hits} hits / "
        f"{stats.misses - before.misses} misses"
    )
    if store is not None and store_before is not None:
        after = store.stats
        header += (
            f"; run store {after.hits - store_before.hits} loaded / "
            f"{after.stores - store_before.stores} computed"
        )
    header += ") =="
    return f"{header}\n{text}"


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = _EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    engine = build_engine(args)
    store = build_store(args)
    for name in names:
        print(run_one(name, args, engine=engine, store=store))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
