"""Figure 8 reproduction: test cost without statistical prediction.

All ``np`` required paths are frequency-stepped (no path selection), in
three modes:

1. **path-wise** — every path alone (the baseline of [2, 6, 8, 9]),
2. **path multiplexing** — batches per §3.2 but all buffers parked at
   their defaults (no alignment),
3. **proposed** — multiplexing + delay alignment by the tuning buffers.

The figure reports iterations *per path*; the expected shape is a strict
ordering path-wise > multiplexing > proposed for every circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.experiments.benchdata import BENCHMARK_NAMES
from repro.experiments.context import DEFAULT_OFFLINE, build_context
from repro.utils.tables import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.results import RunStore


@dataclass(frozen=True)
class Figure8Row:
    """Iterations per path in the three modes (one circuit)."""

    name: str
    pathwise: float
    multiplexed: float
    proposed: float


def run_circuit(
    name: str,
    n_chips: int = 200,
    seed: int = 20160605,
    engine=None,
    store: "RunStore | None" = None,
) -> Figure8Row:
    """Measure the three bars for one circuit.

    Smaller default populations than Table 1: testing *all* paths is
    exactly the cost explosion the paper argues against, so this is the
    most expensive experiment — which makes its two engine runs (aligned
    and unaligned multiplexing) the most valuable ones to resume from a
    :class:`~repro.results.RunStore`.  Alignment is an online knob, so
    both scenarios share one cached preparation.
    """
    offline = replace(DEFAULT_OFFLINE, test_all_paths=True)
    context = build_context(
        name, n_chips=n_chips, seed=seed, offline=offline, engine=engine,
        prepare=False,
    )
    n_paths = context.circuit.paths.n_paths

    baseline = context.pathwise_baseline()

    aligned, unaligned = context.engine.sweep(
        [
            context.scenario(context.t1, label=f"{name}@aligned"),
            context.scenario(
                context.t1,
                online=replace(context.online, align=False),
                label=f"{name}@unaligned",
            ),
        ],
        store=store,
    )

    return Figure8Row(
        name=name,
        pathwise=baseline.mean_iterations_per_path,
        multiplexed=unaligned.mean_iterations / n_paths,
        proposed=aligned.mean_iterations / n_paths,
    )


def run_figure8(
    circuits: tuple[str, ...] = BENCHMARK_NAMES,
    n_chips: int = 200,
    seed: int = 20160605,
    engine=None,
    store: "RunStore | None" = None,
) -> list[Figure8Row]:
    return [
        run_circuit(name, n_chips=n_chips, seed=seed, engine=engine, store=store)
        for name in circuits
    ]


def render_figure8(rows: list[Figure8Row]) -> str:
    table = Table(["circuit", "path-wise", "multiplexing", "proposed", "ordering ok"])
    for row in rows:
        table.add_row([
            row.name,
            round(row.pathwise, 2),
            round(row.multiplexed, 2),
            round(row.proposed, 2),
            row.proposed <= row.multiplexed <= row.pathwise,
        ])
    return table.render()
