"""Shared per-circuit experiment context.

Every experiment needs the same artefacts for a circuit: the generated
instance, the calibrated operating periods T1/T2 (no-buffer yield 50 % /
84.13 %, from a dedicated calibration population), the offline preparation
and an evaluation population.  Building them once per circuit keeps the
experiment drivers small and guarantees Table 1, Table 2 and the figures
all describe the same silicon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.generator import Circuit, generate_circuit
from repro.core.framework import EffiTest, EffiTestConfig, Preparation
from repro.core.yields import CircuitPopulation, operating_periods, sample_circuit
from repro.experiments.benchdata import benchmark_spec
from repro.utils.rng import derive_seed

#: Calibration sample size for the T1/T2 quantiles.
CALIBRATION_CHIPS = 4096

#: Defaults shared by all experiment drivers.
DEFAULT_CONFIG = EffiTestConfig(relative_threshold=0.015)


@dataclass
class CircuitContext:
    """Everything an experiment needs about one benchmark circuit."""

    circuit: Circuit
    t1: float
    t2: float
    framework: EffiTest
    preparation: Preparation
    population: CircuitPopulation

    @property
    def name(self) -> str:
        return self.circuit.name


def build_context(
    name: str,
    n_chips: int = 1000,
    seed: int = 20160605,
    config: EffiTestConfig | None = None,
    prepare: bool = True,
) -> CircuitContext:
    """Generate, calibrate and prepare one benchmark circuit.

    Seeds are derived per purpose (generation / calibration / evaluation),
    so enlarging the evaluation population does not move T1/T2.
    """
    spec = benchmark_spec(name)
    circuit = generate_circuit(spec, seed=derive_seed(seed, name, "circuit"))

    calibration = sample_circuit(
        circuit, CALIBRATION_CHIPS, seed=derive_seed(seed, name, "calibration")
    )
    t1, t2 = operating_periods(calibration)

    framework = EffiTest(circuit, config or DEFAULT_CONFIG)
    preparation = framework.prepare(clock_period=t1) if prepare else None

    population = sample_circuit(
        circuit, n_chips, seed=derive_seed(seed, name, "evaluation")
    )
    return CircuitContext(
        circuit=circuit,
        t1=t1,
        t2=t2,
        framework=framework,
        preparation=preparation,
        population=population,
    )
