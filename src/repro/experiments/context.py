"""Shared per-circuit experiment context, driven by the staged engine.

Every experiment needs the same artefacts for a circuit: the generated
instance, the calibrated operating periods T1/T2 (no-buffer yield 50 % /
84.13 %, from a dedicated calibration population), the offline preparation
and an evaluation population.  Contexts run through one shared
:class:`repro.api.Engine`, so experiments that revisit a circuit (or a
period sweep over one) reuse the cached preparation instead of re-paying
the offline stage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.api import Engine, OfflineConfig, OnlineConfig, Scenario
from repro.circuit.generator import Circuit, generate_circuit
from repro.core.framework import PopulationRunResult, Preparation
from repro.core.yields import (
    ChipSource,
    CircuitPopulation,
    chip_source,
    operating_periods,
    sample_circuit,
)
from repro.experiments.benchdata import benchmark_spec
from repro.tester.freqstep import PathwiseResult
from repro.utils.rng import derive_seed

#: Calibration sample size for the T1/T2 quantiles.
CALIBRATION_CHIPS = 4096

#: Offline defaults shared by all experiment drivers.
DEFAULT_OFFLINE = OfflineConfig(relative_threshold=0.015)

#: Online defaults shared by all experiment drivers.
DEFAULT_ONLINE = OnlineConfig()


@dataclass
class CircuitContext:
    """Everything an experiment needs about one benchmark circuit."""

    circuit: Circuit
    t1: float
    t2: float
    engine: Engine
    offline: OfflineConfig
    online: OnlineConfig
    preparation: Preparation | None
    population: CircuitPopulation
    #: The evaluation population as a recipe: experiments that need to
    #: re-materialize chips (scaling studies, shard sweeps) derive from
    #: this instead of copying the dense arrays.  ``population`` is its
    #: eager realization — bit-identical rows by construction.
    population_source: ChipSource | None = None

    @property
    def name(self) -> str:
        return self.circuit.name

    def require_preparation(self) -> Preparation:
        """The offline preparation, computed (or cache-loaded) on demand.

        Experiments that only need sweep records never call this, so a
        warm store-backed re-run skips the offline stage entirely; the
        ones that do (ideal-yield comparisons read the configuration
        structure) pay it lazily.
        """
        if self.preparation is None:
            self.preparation = self.engine.prepare(
                self.circuit, self.t1, self.offline
            )
        return self.preparation

    def scenario(
        self,
        period: float | None = None,
        online: OnlineConfig | None = None,
        label: str = "",
        artifacts: str | None = "summary",
    ) -> Scenario:
        """One sweep scenario over this context's evaluation population.

        The population rides along as the lazy ``population_source``
        recipe, so the scenario is storable in a
        :class:`~repro.results.RunStore` and re-runs load instead of
        recompute.  Experiments keep ``artifacts="summary"`` — the tables
        and figures only consume population statistics (pass ``None`` to
        inherit the online config's retention).
        """
        online = online or self.online
        if artifacts is not None and online.artifacts != artifacts:
            online = replace(online, artifacts=artifacts)
        period = period if period is not None else self.t1
        return Scenario(
            self.circuit,
            period=period,
            offline=self.offline,
            online=online,
            clock_period=self.t1,
            population=self.population_source or self.population,
            label=label or f"{self.name}@{period:g}",
        )

    def run(
        self,
        period: float | None = None,
        population: CircuitPopulation | None = None,
        online: OnlineConfig | None = None,
    ) -> PopulationRunResult:
        """Full pipeline run against this context's cached preparation."""
        return self.engine.run(
            self.circuit,
            population if population is not None else self.population,
            period if period is not None else self.t1,
            preparation=self.preparation,
            clock_period=self.t1,
            offline=self.offline,
            online=online or self.online,
        )

    def pathwise_baseline(
        self, population: CircuitPopulation | None = None
    ) -> PathwiseResult:
        """Path-wise frequency stepping at this context's resolution."""
        return self.engine.pathwise_baseline(
            self.circuit,
            population if population is not None else self.population,
            offline=self.offline,
        )


def build_context(
    name: str,
    n_chips: int = 1000,
    seed: int = 20160605,
    offline: OfflineConfig | None = None,
    online: OnlineConfig | None = None,
    prepare: bool = True,
    engine: Engine | None = None,
) -> CircuitContext:
    """Generate, calibrate and prepare one benchmark circuit.

    Seeds are derived per purpose (generation / calibration / evaluation),
    so enlarging the evaluation population does not move T1/T2.  Pass a
    shared ``engine`` to pool preparations across contexts.
    """
    spec = benchmark_spec(name)
    circuit = generate_circuit(spec, seed=derive_seed(seed, name, "circuit"))

    calibration = sample_circuit(
        circuit, CALIBRATION_CHIPS, seed=derive_seed(seed, name, "calibration")
    )
    t1, t2 = operating_periods(calibration)

    offline = offline or DEFAULT_OFFLINE
    online = online or DEFAULT_ONLINE
    engine = engine or Engine(offline=offline, online=online)
    preparation = engine.prepare(circuit, t1, offline) if prepare else None

    source = chip_source(
        circuit, n_chips, seed=derive_seed(seed, name, "evaluation")
    )
    return CircuitContext(
        circuit=circuit,
        t1=t1,
        t2=t2,
        engine=engine,
        offline=offline,
        online=online,
        preparation=preparation,
        population=source.realize(),
        population_source=source,
    )
