"""Grid-based spatial correlation of process variation.

Implements the multi-level grid (quad-tree) model of Chang & Sapatnekar
[17 in the paper]: the die is recursively divided into 4^l cells at levels
l = 1..L, and the variation of a parameter at a location is a weighted sum
of one *global* factor, one factor per enclosing grid cell per level, and an
optional per-gate *independent* factor, all i.i.d. standard normal:

    xi(loc) = sqrt(g) * G + sum_l sqrt(a_l) * C_l(cell_l(loc)) + sqrt(e) * E

with g + sum(a_l) + e = 1 so xi is standard normal.  The correlation of two
locations is ``g + sum of a_l over shared cells`` — matching the paper's
experimental setup: *side-by-side gates correlate at 1.0* (same cells at all
levels, e = 0) while *far-apart gates correlate at 0.25* (global only).

Factor indices are globally flattened per parameter so canonical delay
forms (:mod:`repro.variation.canonical`) can share one coefficient vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_in_range, check_probability
from repro.variation.parameters import ProcessSpace


@dataclass(frozen=True)
class SpatialModel:
    """Multi-level grid correlation model over the unit die ``[0,1]^2``.

    Parameters
    ----------
    space:
        The process parameters; each gets an independent copy of the field.
    levels:
        Number of grid levels L; level l has ``4**l`` cells.
    global_share:
        Variance fraction carried by the global factor (paper: 0.25).
    independent_share:
        Variance fraction carried by per-gate independent randomness.  The
        remainder ``1 - global_share - independent_share`` is split evenly
        across the L grid levels.
    """

    space: ProcessSpace = field(default_factory=ProcessSpace)
    levels: int = 4
    global_share: float = 0.25
    independent_share: float = 0.02

    def __post_init__(self) -> None:
        check_probability(self.global_share, "global_share")
        check_probability(self.independent_share, "independent_share")
        check_in_range(self.levels, 1, 8, "levels")
        if self.global_share + self.independent_share > 1.0 + 1e-12:
            raise ValueError("global_share + independent_share must not exceed 1")

    # -- factor bookkeeping ---------------------------------------------------

    @property
    def regional_share(self) -> float:
        """Variance fraction split across the grid levels."""
        return 1.0 - self.global_share - self.independent_share

    @property
    def level_share(self) -> float:
        """Variance fraction of one grid level."""
        return self.regional_share / self.levels

    @property
    def factors_per_parameter(self) -> int:
        """Global factor + all grid cells of all levels (one parameter)."""
        return 1 + sum(4**level for level in range(1, self.levels + 1))

    @property
    def n_factors(self) -> int:
        """Total correlated factors across all parameters."""
        return len(self.space) * self.factors_per_parameter

    def _level_offset(self, level: int) -> int:
        """Index of the first cell factor of ``level`` within one parameter
        block (level 0 is the global factor at offset 0)."""
        return 1 + sum(4**lv for lv in range(1, level))

    def cell_index(self, level: int, x: float, y: float) -> int:
        """Grid-cell ordinal of location ``(x, y)`` at ``level``."""
        side = 2**level
        cx = min(int(x * side), side - 1)
        cy = min(int(y * side), side - 1)
        return cy * side + cx

    def factor_profile(self, x: float, y: float) -> tuple[np.ndarray, np.ndarray, float]:
        """Loadings of the variation at ``(x, y)`` on the correlated factors.

        Returns ``(indices, coefficients, independent_coeff)`` for **one**
        parameter block; for parameter ``p`` the global factor index must be
        offset by ``p * factors_per_parameter``.  The coefficients satisfy
        ``sum(coeff^2) + independent_coeff^2 == 1``.
        """
        check_probability(x, "x")
        check_probability(y, "y")
        indices = [0]
        coeffs = [np.sqrt(self.global_share)]
        level_coeff = np.sqrt(self.level_share)
        for level in range(1, self.levels + 1):
            indices.append(self._level_offset(level) + self.cell_index(level, x, y))
            coeffs.append(level_coeff)
        return (
            np.asarray(indices, dtype=np.intp),
            np.asarray(coeffs, dtype=float),
            float(np.sqrt(self.independent_share)),
        )

    def correlation(self, ax: float, ay: float, bx: float, by: float) -> float:
        """Model correlation between the variations at two locations.

        Equals 1.0 only for co-located points when ``independent_share`` is 0
        (the paper's side-by-side case) and ``global_share`` for points that
        share no grid cell.
        """
        rho = self.global_share
        for level in range(1, self.levels + 1):
            if self.cell_index(level, ax, ay) == self.cell_index(level, bx, by):
                rho += self.level_share
        return rho
