"""Process-parameter definitions.

The paper models gate-delay variation through three transistor-level
parameters with the standard deviations it states in §4: channel length
(15.7 % of nominal), oxide thickness (5.3 %) and threshold voltage (4.4 %).
Gate delays respond linearly to each (first-order canonical model), so all
that matters downstream is each parameter's *relative* sigma and each cell
type's delay sensitivity to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ProcessParameter:
    """One varying process parameter.

    ``sigma_fraction`` is the standard deviation as a fraction of the
    nominal value (e.g. 0.157 for the paper's transistor length).
    """

    name: str
    sigma_fraction: float

    def __post_init__(self) -> None:
        check_positive(self.sigma_fraction, "sigma_fraction")


#: The paper's §4 parameter set.
TRANSISTOR_LENGTH = ProcessParameter("transistor_length", 0.157)
OXIDE_THICKNESS = ProcessParameter("oxide_thickness", 0.053)
THRESHOLD_VOLTAGE = ProcessParameter("threshold_voltage", 0.044)

PAPER_PARAMETERS: tuple[ProcessParameter, ...] = (
    TRANSISTOR_LENGTH,
    OXIDE_THICKNESS,
    THRESHOLD_VOLTAGE,
)


@dataclass(frozen=True)
class ProcessSpace:
    """An ordered collection of process parameters."""

    parameters: tuple[ProcessParameter, ...] = PAPER_PARAMETERS

    def __post_init__(self) -> None:
        names = [p.name for p in self.parameters]
        if len(names) != len(set(names)):
            raise ValueError("duplicate parameter names in ProcessSpace")
        if not self.parameters:
            raise ValueError("ProcessSpace needs at least one parameter")

    def __len__(self) -> int:
        return len(self.parameters)

    def __iter__(self):
        return iter(self.parameters)

    def index_of(self, name: str) -> int:
        for i, p in enumerate(self.parameters):
            if p.name == name:
                return i
        raise KeyError(f"no parameter named {name!r}")
