"""Block-based statistical static timing analysis on combinational DAGs.

Standard parameterized SSTA [10 in the paper]: propagate canonical arrival
forms through a topologically ordered DAG, adding gate delays along edges
and combining fan-in with Clark's statistical max.  The gate-level flow
(:mod:`repro.circuit.paths`) uses this both to rank flip-flop pairs by
criticality and to derive path delay forms.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import networkx as nx

from repro.variation.canonical import CanonicalForm

Node = Hashable


def topological_arrival_times(
    graph: nx.DiGraph,
    node_delays: Mapping[Node, CanonicalForm],
    sources: Iterable[Node],
    source_arrivals: Mapping[Node, CanonicalForm] | None = None,
) -> dict[Node, CanonicalForm]:
    """Latest (statistical) arrival time at every reachable node.

    ``node_delays[n]`` is the propagation delay *through* node ``n``; the
    arrival at ``n`` is ``max over predecessors(arrival) + delay(n)``.
    Sources start at ``source_arrivals`` (default: zero).
    """
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("combinational graph must be acyclic")
    arrivals: dict[Node, CanonicalForm] = {}
    source_set = set(sources)
    for node in source_set:
        start = (source_arrivals or {}).get(node, CanonicalForm(0.0))
        arrivals[node] = start

    for node in nx.topological_sort(graph):
        incoming = [arrivals[p] for p in graph.predecessors(node) if p in arrivals]
        if node in source_set:
            # A source's own arrival never depends on its predecessors.
            continue
        if not incoming:
            continue
        combined = incoming[0]
        for form in incoming[1:]:
            combined = combined.maximum(form)
        delay = node_delays.get(node)
        if delay is None:
            # A reachable interior node without a declared delay would
            # silently propagate a wrong (delay-free) arrival downstream.
            raise KeyError(
                f"node {node!r} is reachable from the sources but has no "
                "entry in node_delays"
            )
        arrivals[node] = combined + delay
    return arrivals


def statistical_max(forms: list[CanonicalForm]) -> CanonicalForm:
    """Clark max over a list of canonical forms (balanced reduction).

    A balanced tree keeps the moment-matching error lower than a left fold
    when many nearly-equal delays are combined.
    """
    if not forms:
        raise ValueError("statistical_max of an empty list")
    work = list(forms)
    while len(work) > 1:
        merged = []
        for i in range(0, len(work) - 1, 2):
            merged.append(work[i].maximum(work[i + 1]))
        if len(work) % 2:
            merged.append(work[-1])
        work = merged
    return work[0]
