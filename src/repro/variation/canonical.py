"""First-order canonical delay forms.

The standard currency of parameterized statistical timing analysis [10, 17
in the paper]: a delay is

    d = mean + sum_i a_i * X_i + b * R

with ``X_i`` shared i.i.d. standard-normal factors (global/grid process
variation) and ``R`` an independent standard normal private to this delay.
Sums are exact; ``max`` uses Clark's moment matching.  Covariances between
forms come from the shared factor coefficients, which is exactly what the
statistical delay prediction of §3.1 consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import stats


@dataclass
class CanonicalForm:
    """``mean + sum(sensitivity[i] * X_i) + independent * R``.

    ``sensitivities`` maps factor index -> coefficient; absent factors have
    coefficient 0.  ``independent`` is the coefficient of the private
    standard-normal term (so the purely random variance is its square).
    """

    mean: float = 0.0
    sensitivities: dict[int, float] = field(default_factory=dict)
    independent: float = 0.0

    # -- moments ---------------------------------------------------------------

    @property
    def variance(self) -> float:
        return sum(c * c for c in self.sensitivities.values()) + self.independent**2

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def covariance(self, other: "CanonicalForm") -> float:
        """Covariance with another form (shared factors only)."""
        if len(self.sensitivities) > len(other.sensitivities):
            return other.covariance(self)
        return sum(
            coeff * other.sensitivities.get(idx, 0.0)
            for idx, coeff in self.sensitivities.items()
        )

    def correlation(self, other: "CanonicalForm") -> float:
        denom = self.std * other.std
        if denom == 0:
            return 0.0
        return self.covariance(other) / denom

    def quantile(self, q: float) -> float:
        """Gaussian quantile of this delay."""
        return float(self.mean + self.std * stats.norm.ppf(q))

    # -- arithmetic --------------------------------------------------------------

    def __add__(self, other: "CanonicalForm | float | int") -> "CanonicalForm":
        if isinstance(other, (int, float)):
            return CanonicalForm(
                self.mean + other, dict(self.sensitivities), self.independent
            )
        merged = dict(self.sensitivities)
        for idx, coeff in other.sensitivities.items():
            merged[idx] = merged.get(idx, 0.0) + coeff
        independent = math.hypot(self.independent, other.independent)
        return CanonicalForm(self.mean + other.mean, merged, independent)

    __radd__ = __add__

    def scaled(self, factor: float) -> "CanonicalForm":
        """Multiply the whole delay by a constant."""
        return CanonicalForm(
            self.mean * factor,
            {i: c * factor for i, c in self.sensitivities.items()},
            abs(self.independent * factor),
        )

    # -- statistical max (Clark) ---------------------------------------------------

    def maximum(self, other: "CanonicalForm") -> "CanonicalForm":
        """Clark's moment-matched approximation of ``max(self, other)``.

        The result is again a canonical form whose factor coefficients are
        the tightness-weighted blend of the operands', preserving
        correlations with third-party delays to first order.
        """
        a_var, b_var = self.variance, other.variance
        rho = self.correlation(other)
        theta2 = a_var + b_var - 2.0 * rho * math.sqrt(a_var * b_var)
        if theta2 <= 1e-24:
            # Perfectly correlated with equal spread: max is the larger mean.
            return self if self.mean >= other.mean else other
        theta = math.sqrt(theta2)
        alpha = (self.mean - other.mean) / theta
        phi = stats.norm.pdf(alpha)
        cdf = stats.norm.cdf(alpha)
        tightness = float(cdf)

        mean = self.mean * tightness + other.mean * (1.0 - tightness) + theta * phi
        second = (
            (a_var + self.mean**2) * tightness
            + (b_var + other.mean**2) * (1.0 - tightness)
            + (self.mean + other.mean) * theta * phi
        )
        variance = max(second - mean * mean, 0.0)

        merged: dict[int, float] = {}
        for idx, coeff in self.sensitivities.items():
            merged[idx] = coeff * tightness
        for idx, coeff in other.sensitivities.items():
            merged[idx] = merged.get(idx, 0.0) + coeff * (1.0 - tightness)
        shared_var = sum(c * c for c in merged.values())
        independent = math.sqrt(max(variance - shared_var, 0.0))
        return CanonicalForm(mean, merged, independent)

    def __repr__(self) -> str:
        return (
            f"CanonicalForm(mean={self.mean:.4g}, std={self.std:.4g}, "
            f"factors={len(self.sensitivities)})"
        )


def covariance_matrix(forms: list[CanonicalForm]) -> np.ndarray:
    """Dense covariance matrix of a list of canonical forms."""
    n = len(forms)
    n_factors = 0
    for form in forms:
        if form.sensitivities:
            n_factors = max(n_factors, max(form.sensitivities) + 1)
    loadings = np.zeros((n, n_factors))
    for row, form in enumerate(forms):
        for idx, coeff in form.sensitivities.items():
            loadings[row, idx] = coeff
    cov = loadings @ loadings.T
    cov[np.diag_indices(n)] += np.array([f.independent**2 for f in forms])
    return cov


def loading_matrix(forms: list[CanonicalForm], n_factors: int | None = None) -> np.ndarray:
    """Stack factor coefficients into an ``(n_forms, n_factors)`` matrix."""
    if n_factors is None:
        n_factors = 0
        for form in forms:
            if form.sensitivities:
                n_factors = max(n_factors, max(form.sensitivities) + 1)
    out = np.zeros((len(forms), n_factors))
    for row, form in enumerate(forms):
        for idx, coeff in form.sensitivities.items():
            if idx >= n_factors:
                raise ValueError(
                    f"form {row} uses factor {idx} >= n_factors={n_factors}"
                )
            out[row, idx] = coeff
    return out
