"""Process-variation and statistical-timing substrate.

Models the paper's §4 variation setup: three process parameters (transistor
length, oxide thickness, threshold voltage at 15.7 %/5.3 %/4.4 % sigma) over
a multi-level spatial-correlation grid (side-by-side correlation 1.0, global
correlation 0.25), first-order canonical delay forms, joint Gaussian path
delay models, PCA, Monte-Carlo chip sampling and block-based SSTA.
"""

from repro.variation.canonical import CanonicalForm, covariance_matrix, loading_matrix
from repro.variation.correlation import PathDelayModel
from repro.variation.parameters import (
    OXIDE_THICKNESS,
    PAPER_PARAMETERS,
    THRESHOLD_VOLTAGE,
    TRANSISTOR_LENGTH,
    ProcessParameter,
    ProcessSpace,
)
from repro.variation.pca import PCAResult, pca, select_representatives
from repro.variation.sampling import (
    CHIP_BLOCK,
    ChipPopulation,
    sample_correlated,
    sample_correlated_shard,
    sample_population,
)
from repro.variation.spatial import SpatialModel
from repro.variation.ssta import statistical_max, topological_arrival_times

__all__ = [
    "CHIP_BLOCK",
    "CanonicalForm",
    "ChipPopulation",
    "OXIDE_THICKNESS",
    "PAPER_PARAMETERS",
    "PCAResult",
    "PathDelayModel",
    "ProcessParameter",
    "ProcessSpace",
    "SpatialModel",
    "THRESHOLD_VOLTAGE",
    "TRANSISTOR_LENGTH",
    "covariance_matrix",
    "loading_matrix",
    "pca",
    "sample_correlated",
    "sample_correlated_shard",
    "sample_population",
    "select_representatives",
    "statistical_max",
    "topological_arrival_times",
]
