"""Joint Gaussian path-delay models.

:class:`PathDelayModel` is the statistical object every EffiTest algorithm
consumes: a vector of path delays that is jointly Gaussian,

    D = mu + A z + diag(sigma_ind) e,     z, e ~ N(0, I)

where the *loading matrix* ``A`` carries the correlated (global + spatial)
variation and ``sigma_ind`` the purely random residue.  The covariance is
``A A^T + diag(sigma_ind^2)``.

The model supports exactly the manipulations the paper's experiments need:
Monte-Carlo chip sampling (shared ``z`` with other models, e.g. short-path
delays for hold analysis), sub-setting to path groups, and the Fig. 7
*randomness inflation* — "increase the standard deviation of all delays by
10 % without changing the covariances", which lands entirely in the
independent term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_finite
from repro.variation.canonical import CanonicalForm, loading_matrix


@dataclass(frozen=True)
class PathDelayModel:
    """Jointly Gaussian delays ``mu + A z + diag(sigma_ind) e``."""

    means: np.ndarray
    loadings: np.ndarray
    independent: np.ndarray

    def __post_init__(self) -> None:
        means = check_finite(self.means, "means")
        loadings = check_finite(self.loadings, "loadings")
        independent = check_finite(self.independent, "independent")
        if means.ndim != 1:
            raise ValueError("means must be 1-D")
        if loadings.ndim != 2 or loadings.shape[0] != means.shape[0]:
            raise ValueError(
                f"loadings shape {loadings.shape} incompatible with "
                f"{means.shape[0]} paths"
            )
        if independent.shape != means.shape:
            raise ValueError("independent must match means in shape")
        if np.any(independent < 0):
            raise ValueError("independent sigmas must be non-negative")
        object.__setattr__(self, "means", means)
        object.__setattr__(self, "loadings", loadings)
        object.__setattr__(self, "independent", independent)

    # -- construction -----------------------------------------------------------

    @staticmethod
    def from_canonical_forms(
        forms: list[CanonicalForm], n_factors: int | None = None
    ) -> "PathDelayModel":
        """Build from canonical delay forms sharing one factor space."""
        means = np.array([f.mean for f in forms], dtype=float)
        independent = np.array([f.independent for f in forms], dtype=float)
        loadings = loading_matrix(forms, n_factors)
        return PathDelayModel(means, loadings, independent)

    # -- basic statistics ---------------------------------------------------------

    @property
    def n_paths(self) -> int:
        return len(self.means)

    @property
    def n_factors(self) -> int:
        return self.loadings.shape[1]

    def variances(self) -> np.ndarray:
        return np.einsum("ij,ij->i", self.loadings, self.loadings) + self.independent**2

    def stds(self) -> np.ndarray:
        return np.sqrt(self.variances())

    def covariance(self) -> np.ndarray:
        cov = self.loadings @ self.loadings.T
        cov[np.diag_indices(self.n_paths)] += self.independent**2
        return cov

    def correlation(self) -> np.ndarray:
        cov = self.covariance()
        std = np.sqrt(np.diag(cov))
        std = np.where(std > 0, std, 1.0)
        return cov / np.outer(std, std)

    # -- derived models -------------------------------------------------------------

    def subset(self, indices) -> "PathDelayModel":
        """Model restricted to the given path indices (factor space kept)."""
        idx = np.asarray(indices, dtype=np.intp)
        return PathDelayModel(
            self.means[idx], self.loadings[idx, :], self.independent[idx]
        )

    def inflate_randomness(self, factor: float = 1.1) -> "PathDelayModel":
        """Raise every path's total sigma by ``factor`` keeping covariances.

        This reproduces the Fig. 7 setup: cross-covariances are untouched
        (the loading matrix is unchanged) and the extra variance
        ``(factor^2 - 1) * var_total`` is added to the independent term.
        """
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        var_total = self.variances()
        extra = (factor**2 - 1.0) * var_total
        new_independent = np.sqrt(self.independent**2 + extra)
        return PathDelayModel(self.means.copy(), self.loadings.copy(), new_independent)

    # -- sampling -------------------------------------------------------------------

    def sample(self, n_chips: int, seed: RandomState = None) -> np.ndarray:
        """Draw ``(n_chips, n_paths)`` delay realizations."""
        rng = as_generator(seed)
        z = rng.standard_normal((n_chips, self.n_factors))
        e = rng.standard_normal((n_chips, self.n_paths))
        return self.sample_with_factors(z, e)

    def sample_with_factors(self, z: np.ndarray, e: np.ndarray) -> np.ndarray:
        """Realize delays from externally drawn factors (shared across
        models: pass the same ``z`` to correlated short-path models)."""
        if z.shape[1] != self.n_factors:
            raise ValueError(
                f"z has {z.shape[1]} factors, model needs {self.n_factors}"
            )
        if e.shape != (z.shape[0], self.n_paths):
            raise ValueError("e must have shape (n_chips, n_paths)")
        return self.means + z @ self.loadings.T + e * self.independent
