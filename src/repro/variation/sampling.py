"""Monte-Carlo chip sampling.

A *chip* is one realization of all path delays — the paper simulates
10 000 chips per circuit.  Long-path (setup) and short-path (hold) delays
must be drawn from the *same* process realization, so
:func:`sample_population` draws one shared correlated factor vector ``z``
per chip and feeds it to every model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.variation.correlation import PathDelayModel


@dataclass(frozen=True)
class ChipPopulation:
    """Sampled delays for a population of chips.

    ``max_delays[c, p]`` is path ``p``'s maximum (setup-relevant) delay on
    chip ``c``; ``min_delays`` are the short-path (hold-relevant) delays,
    possibly over a different path list.
    """

    max_delays: np.ndarray
    min_delays: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.max_delays.ndim != 2:
            raise ValueError("max_delays must be (n_chips, n_paths)")
        if self.min_delays is not None and (
            self.min_delays.ndim != 2
            or self.min_delays.shape[0] != self.max_delays.shape[0]
        ):
            raise ValueError("min_delays must be (n_chips, n_short_paths)")

    @property
    def n_chips(self) -> int:
        return self.max_delays.shape[0]

    @property
    def n_paths(self) -> int:
        return self.max_delays.shape[1]

    def chip(self, index: int) -> np.ndarray:
        """Max delays of one chip."""
        return self.max_delays[index]

    def subset(self, chip_indices) -> "ChipPopulation":
        idx = np.asarray(chip_indices, dtype=np.intp)
        return ChipPopulation(
            self.max_delays[idx],
            None if self.min_delays is None else self.min_delays[idx],
        )


def sample_correlated(
    models: list[PathDelayModel],
    n_chips: int,
    seed: RandomState = None,
) -> list[np.ndarray]:
    """Sample several delay models from one shared process realization.

    All models must share the factor space; each receives the same ``z``
    per chip and its own independent residues.  Used to realize required
    paths, background paths and hold requirements of one chip consistently.
    """
    if n_chips <= 0:
        raise ValueError(f"n_chips must be positive, got {n_chips}")
    if not models:
        return []
    rng = as_generator(seed)
    n_factors = models[0].n_factors
    for m in models[1:]:
        if m.n_factors != n_factors:
            raise ValueError("all models must share one factor space")
    z = rng.standard_normal((n_chips, n_factors))
    out = []
    for m in models:
        e = rng.standard_normal((n_chips, m.n_paths))
        out.append(m.sample_with_factors(z, e))
    return out


def sample_population(
    max_model: PathDelayModel,
    n_chips: int,
    min_model: PathDelayModel | None = None,
    seed: RandomState = None,
) -> ChipPopulation:
    """Draw a chip population; long and short paths share process factors.

    The correlated factor vector ``z`` is drawn once per chip and applied to
    both models; the independent residues are private per delay, as in the
    underlying canonical model.
    """
    if n_chips <= 0:
        raise ValueError(f"n_chips must be positive, got {n_chips}")
    rng = as_generator(seed)
    n_factors = max_model.n_factors
    if min_model is not None and min_model.n_factors != n_factors:
        raise ValueError(
            "max_model and min_model must share a factor space "
            f"({n_factors} vs {min_model.n_factors})"
        )
    z = rng.standard_normal((n_chips, n_factors))
    e_max = rng.standard_normal((n_chips, max_model.n_paths))
    max_delays = max_model.sample_with_factors(z, e_max)
    min_delays = None
    if min_model is not None:
        e_min = rng.standard_normal((n_chips, min_model.n_paths))
        min_delays = min_model.sample_with_factors(z, e_min)
    return ChipPopulation(max_delays, min_delays)
