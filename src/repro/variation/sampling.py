"""Monte-Carlo chip sampling.

A *chip* is one realization of all path delays — the paper simulates
10 000 chips per circuit.  Long-path (setup) and short-path (hold) delays
must be drawn from the *same* process realization, so
:func:`sample_population` draws one shared correlated factor vector ``z``
per chip and feeds it to every model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.variation.correlation import PathDelayModel


@dataclass(frozen=True)
class ChipPopulation:
    """Sampled delays for a population of chips.

    ``max_delays[c, p]`` is path ``p``'s maximum (setup-relevant) delay on
    chip ``c``; ``min_delays`` are the short-path (hold-relevant) delays,
    possibly over a different path list.
    """

    max_delays: np.ndarray
    min_delays: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.max_delays.ndim != 2:
            raise ValueError("max_delays must be (n_chips, n_paths)")
        if self.min_delays is not None and (
            self.min_delays.ndim != 2
            or self.min_delays.shape[0] != self.max_delays.shape[0]
        ):
            raise ValueError("min_delays must be (n_chips, n_short_paths)")

    @property
    def n_chips(self) -> int:
        return self.max_delays.shape[0]

    @property
    def n_paths(self) -> int:
        return self.max_delays.shape[1]

    def chip(self, index: int) -> np.ndarray:
        """Max delays of one chip."""
        return self.max_delays[index]

    def subset(self, chip_indices) -> "ChipPopulation":
        idx = np.asarray(chip_indices, dtype=np.intp)
        return ChipPopulation(
            self.max_delays[idx],
            None if self.min_delays is None else self.min_delays[idx],
        )


def sample_correlated(
    models: list[PathDelayModel],
    n_chips: int,
    seed: RandomState = None,
) -> list[np.ndarray]:
    """Sample several delay models from one shared process realization.

    All models must share the factor space; each receives the same ``z``
    per chip and its own independent residues.  Used to realize required
    paths, background paths and hold requirements of one chip consistently.
    """
    if n_chips <= 0:
        raise ValueError(f"n_chips must be positive, got {n_chips}")
    if not models:
        return []
    rng = as_generator(seed)
    n_factors = models[0].n_factors
    for m in models[1:]:
        if m.n_factors != n_factors:
            raise ValueError("all models must share one factor space")
    z = rng.standard_normal((n_chips, n_factors))
    out = []
    for m in models:
        e = rng.standard_normal((n_chips, m.n_paths))
        out.append(m.sample_with_factors(z, e))
    return out


#: Chips are drawn in fixed-size blocks, each from its own seed-derived
#: stream.  The block — not the population — is the unit of randomness, so
#: any shard ``[start, stop)`` materializes to the same bits no matter how
#: the population is cut, in which order the shards are produced, or which
#: process produces them.  Changing this constant changes every sampled
#: population; it is part of the sampling format.
CHIP_BLOCK = 1024


def _block_generator(seed: int, block: int) -> np.random.Generator:
    """Independent generator for one chip block of one population seed.

    ``SeedSequence(seed, spawn_key=(block,))`` gives each block its own
    statistically independent PCG64 stream, addressable in O(1) — no draws
    from earlier blocks are ever consumed, which is what makes shard
    materialization independent of shard size and process boundary.
    """
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(block,)))


def sample_correlated_shard(
    models: list[PathDelayModel],
    seed: int,
    start: int,
    stop: int,
    only: list[int] | None = None,
) -> list[np.ndarray | None]:
    """Materialize chips ``[start, stop)`` of the blocked population ``seed``.

    The counter-based sibling of :func:`sample_correlated`: all models share
    one correlated factor vector ``z`` per chip, but chips come from
    per-block streams, so the returned rows are identical whether the range
    is materialized in one call, per shard, or in another process.  Chip
    indices are absolute — a population's chip ``i`` is the same chip for
    every caller — and chips are stable under growing the population.

    Within a block the draw order is ``z`` then one residue matrix per
    model, and the delays are always evaluated for the *full* block before
    slicing: ``z @ loadings.T`` is a BLAS product whose low bits depend on
    the operand shapes, so fixing the shape at ``CHIP_BLOCK`` rows is what
    makes every cut bit-identical.  ``only`` (indices into ``models``)
    skips the delay evaluation of unwanted models without perturbing the
    stream; their slots come back as ``None``.
    """
    if not 0 <= start <= stop:
        raise ValueError(f"invalid chip range [{start}, {stop})")
    if not models:
        return []
    n_factors = models[0].n_factors
    for m in models[1:]:
        if m.n_factors != n_factors:
            raise ValueError("all models must share one factor space")
    wanted = set(range(len(models)) if only is None else only)
    # Residues for models *before* a wanted one must still be drawn to keep
    # the stream layout fixed, but nothing reads the generator after the
    # last wanted model — stop there instead of draining the block.
    last_wanted = max(wanted, default=-1)
    chunks: list[list[np.ndarray]] = [[] for _ in models]
    for block in range(start // CHIP_BLOCK, -(-stop // CHIP_BLOCK)):
        rng = _block_generator(seed, block)
        z = rng.standard_normal((CHIP_BLOCK, n_factors))
        lo = max(start - block * CHIP_BLOCK, 0)
        hi = min(stop - block * CHIP_BLOCK, CHIP_BLOCK)
        for k, m in enumerate(models[: last_wanted + 1]):
            e = rng.standard_normal((CHIP_BLOCK, m.n_paths))
            if k in wanted:
                chunks[k].append(m.sample_with_factors(z, e)[lo:hi])
    empty = np.empty((0, 0))
    return [
        (np.concatenate(chunks[k]) if chunks[k] else
         empty.reshape(0, m.n_paths)) if k in wanted else None
        for k, m in enumerate(models)
    ]


def sample_population(
    max_model: PathDelayModel,
    n_chips: int,
    min_model: PathDelayModel | None = None,
    seed: RandomState = None,
) -> ChipPopulation:
    """Draw a chip population; long and short paths share process factors.

    The correlated factor vector ``z`` is drawn once per chip and applied to
    both models; the independent residues are private per delay, as in the
    underlying canonical model.
    """
    if n_chips <= 0:
        raise ValueError(f"n_chips must be positive, got {n_chips}")
    rng = as_generator(seed)
    n_factors = max_model.n_factors
    if min_model is not None and min_model.n_factors != n_factors:
        raise ValueError(
            "max_model and min_model must share a factor space "
            f"({n_factors} vs {min_model.n_factors})"
        )
    z = rng.standard_normal((n_chips, n_factors))
    e_max = rng.standard_normal((n_chips, max_model.n_paths))
    max_delays = max_model.sample_with_factors(z, e_max)
    min_delays = None
    if min_model is not None:
        e_min = rng.standard_normal((n_chips, min_model.n_paths))
        min_delays = min_model.sample_with_factors(z, e_min)
    return ChipPopulation(max_delays, min_delays)
