"""Principal component analysis of delay covariance matrices.

§3.1 of the paper decomposes each path group's covariance with PCA; only
the principal components carry correlation information, so the number of
paths to test per group equals the number of significant PCs, and the paths
chosen are those with the largest loading on each successive PC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_probability, check_symmetric


@dataclass(frozen=True)
class PCAResult:
    """Eigendecomposition of a covariance matrix, strongest component first.

    ``loadings[i, c]`` is the coefficient of variable ``i`` on component
    ``c`` in the expansion ``D_i = mu_i + sum_c loadings[i, c] * z_c``
    (i.e. ``eigvec * sqrt(eigval)``), so squared loadings sum to each
    variable's correlated variance.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray  # columns are components
    n_significant: int

    @property
    def loadings(self) -> np.ndarray:
        return self.eigenvectors * np.sqrt(np.maximum(self.eigenvalues, 0.0))

    def explained_fraction(self, k: int) -> float:
        """Fraction of total variance carried by the ``k`` strongest PCs."""
        total = float(np.sum(np.maximum(self.eigenvalues, 0.0)))
        if total <= 0:
            return 1.0
        return float(np.sum(np.maximum(self.eigenvalues[:k], 0.0))) / total


def pca(covariance: np.ndarray, variance_fraction: float = 0.95) -> PCAResult:
    """Decompose ``covariance``; ``n_significant`` is the smallest number of
    components explaining at least ``variance_fraction`` of total variance.

    Eigenvalues are clipped at zero (covariances estimated from canonical
    forms are PSD up to rounding) and sorted descending.
    """
    check_probability(variance_fraction, "variance_fraction")
    cov = check_symmetric(covariance, "covariance")
    eigvals, eigvecs = np.linalg.eigh(cov)
    order = np.argsort(eigvals)[::-1]
    eigvals = np.maximum(eigvals[order], 0.0)
    eigvecs = eigvecs[:, order]

    total = float(eigvals.sum())
    if total <= 0:
        return PCAResult(eigvals, eigvecs, 0)
    cumulative = np.cumsum(eigvals) / total
    n_significant = int(np.searchsorted(cumulative, variance_fraction - 1e-12) + 1)
    n_significant = min(n_significant, len(eigvals))
    return PCAResult(eigvals, eigvecs, n_significant)


def select_representatives(result: PCAResult, count: int | None = None) -> list[int]:
    """Pick one variable per principal component, per §3.1.

    For the strongest PC pick the variable with the largest absolute
    loading; for the next PC the largest among the remaining variables; and
    so on for ``count`` components (default: the significant ones).
    """
    k = result.n_significant if count is None else count
    k = min(k, result.eigenvectors.shape[0])
    chosen: list[int] = []
    taken = np.zeros(result.eigenvectors.shape[0], dtype=bool)
    loadings = np.abs(result.loadings)
    for component in range(k):
        scores = loadings[:, component].copy()
        scores[taken] = -np.inf
        pick = int(np.argmax(scores))
        chosen.append(pick)
        taken[pick] = True
    return chosen
