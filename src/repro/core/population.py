"""Vectorized aligned delay test over a whole chip population.

Real testers handle chips one at a time, and each chip's adaptive test
trajectory (the sequence of aligned periods and buffer settings) depends on
its own pass/fail history.  This engine simulates all Monte-Carlo chips in
lockstep with numpy: per iteration, every still-active chip solves its own
alignment (weighted medians and coordinate descent are row-vectorized) and
updates its own bounds — producing, per chip, exactly the trace the scalar
:mod:`repro.core.testflow` engine produces, hundreds of times faster.

Two scaling mechanisms keep very large populations cheap:

* **Active-set compaction** (default): every per-chip computation is
  row-independent, so each iteration the working arrays are compacted to
  the chips that still have an unresolved path
  (``np.flatnonzero(chip_active)``), and a chip's bounds are scattered back
  into the full result arrays when it retires.  Late iterations — where
  only a few straggler chips remain — touch a handful of rows instead of
  the whole population, with bit-identical results (``compact=False``
  keeps the all-rows sweep for A/B checks and benchmarks).
* **Chip sharding**: :func:`test_population` accepts ``chip_shard_size``
  and streams the population through in chip shards, bounding the
  population-proportional working set — the per-batch ``(n_chips, m)``
  bound/center/weight arrays and their sort workspaces — independently of
  the population size (the candidate sweep in ``_improve_buffer`` is
  already chunked at 1024 chips).  Chips are mutually independent, so any
  shard size produces identical results.

Iteration accounting matches the paper's: a chip pays one iteration for a
batch whenever at least one of its paths in that batch is still unresolved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.alignment import BatchAlignment, center_sorted_weights, solve_alignment
from repro.core.multiplexing import MultiplexPlan
from repro.kernels import TEST_KERNELS, resolve_kernel
from repro.opt.weighted_median import weighted_median_rows
from repro.tester.oracle import shifted_slack_pass


@dataclass(frozen=True)
class PopulationTestResult:
    """Aligned-test outcome for every chip.

    Bounds are dense over the *measured* paths: column ``k`` corresponds to
    global path index ``measured_indices[k]``.
    """

    measured_indices: np.ndarray
    lower: np.ndarray  # (n_chips, n_measured)
    upper: np.ndarray
    iterations: np.ndarray  # (n_chips,) total frequency-stepping iterations
    iterations_per_batch: np.ndarray  # (n_chips, n_batches)

    @property
    def n_chips(self) -> int:
        return self.lower.shape[0]

    @property
    def n_measured(self) -> int:
        """Paths covered by this test — the single source for ``n_pt``."""
        return int(len(self.measured_indices))

    @property
    def mean_iterations(self) -> float:
        """The paper's ``t_a``: average iterations per chip."""
        return float(self.iterations.mean())


def concat_population_test_results(
    parts: Sequence[PopulationTestResult],
) -> PopulationTestResult:
    """Stack per-shard results back into one population-sized result.

    All parts must cover the same measured paths (chip shards of one
    population always do).
    """
    if not parts:
        raise ValueError("need at least one result to concatenate")
    first = parts[0]
    for part in parts[1:]:
        if not np.array_equal(part.measured_indices, first.measured_indices):
            raise ValueError("shard results cover different measured paths")
    if len(parts) == 1:
        return first
    return PopulationTestResult(
        measured_indices=first.measured_indices,
        lower=np.vstack([p.lower for p in parts]),
        upper=np.vstack([p.upper for p in parts]),
        iterations=np.concatenate([p.iterations for p in parts]),
        iterations_per_batch=np.vstack([p.iterations_per_batch for p in parts]),
    )


def _batch_max_iterations(
    prior_lower: np.ndarray,
    prior_upper: np.ndarray,
    epsilon: float | np.ndarray,
    m: int,
) -> int:
    """Iteration cap for one batch; ``epsilon`` may be scalar or per-path."""
    widths = np.maximum(prior_upper - prior_lower, epsilon)
    return int(m * (np.ceil(np.log2(widths / epsilon)).max() + 2))


def _sweep_all_rows(
    true_delays: np.ndarray,
    spec: BatchAlignment,
    lower: np.ndarray,
    upper: np.ndarray,
    x: np.ndarray,
    epsilon: float | np.ndarray,
    k0: float,
    kd: float,
    align: bool,
    max_iterations: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The pre-compaction reference sweep: every iteration touches all rows.

    Kept verbatim as the bit-identity baseline for the active-set engine
    (tests and ``benchmarks/bench_population_scaling.py`` run both).
    """
    n_chips = true_delays.shape[0]
    iterations = np.zeros(n_chips, dtype=int)
    for _ in range(max_iterations):
        active = (upper - lower) >= epsilon
        chip_active = active.any(axis=1)
        if not chip_active.any():
            break
        centers = np.where(active, 0.5 * (lower + upper), np.nan)
        weights = center_sorted_weights(centers, k0, kd)
        if align and spec.n_buffers:
            period, x = solve_alignment(spec, centers, weights, x)
            shift = spec.shift(x)
        else:
            shift = spec.shift(x)
            period = weighted_median_rows(centers + shift, weights)

        passed = shifted_slack_pass(true_delays, shift, period[:, None])
        bound = period[:, None] - shift
        tighten_upper = active & passed & chip_active[:, None]
        tighten_lower = active & ~passed & chip_active[:, None]
        upper = np.where(tighten_upper, np.minimum(upper, bound), upper)
        lower = np.where(tighten_lower, np.maximum(lower, bound), lower)
        iterations += chip_active.astype(int)
    return lower, upper, iterations


def _sweep_active_set(
    true_delays: np.ndarray,
    spec: BatchAlignment,
    lower: np.ndarray,
    upper: np.ndarray,
    x: np.ndarray,
    epsilon: float | np.ndarray,
    k0: float,
    kd: float,
    align: bool,
    max_iterations: int,
    kernel: str = "vectorized",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Active-set sweep: compact to still-active chips, scatter on retire.

    Every per-chip operation in the loop body (weights, alignment, oracle,
    bound tightening) is row-independent, so dropping retired rows changes
    nothing about the rows that remain — the trace is bit-identical to
    :func:`_sweep_all_rows`, but late iterations only pay for stragglers.

    ``kernel="compiled"`` fuses the oracle + bound-tightening step into
    one in-place numba pass (:func:`repro.kernels.freqstep.
    step_bounds_kernel`) over the working copies this function owns —
    cell-for-cell the same accepted bounds, without the four masks and two
    fresh arrays per iteration.
    """
    n_chips = true_delays.shape[0]
    out_lower, out_upper = lower, upper
    iterations = np.zeros(n_chips, dtype=int)
    active_idx = np.arange(n_chips, dtype=np.intp)
    delays = true_delays
    if kernel == "compiled":
        from repro.kernels.freqstep import step_bounds_kernel
    else:
        step_bounds_kernel = None

    for _ in range(max_iterations):
        active = (upper - lower) >= epsilon
        row_active = active.any(axis=1)
        if not row_active.all():
            # Retire converged chips: scatter their final bounds into the
            # full arrays and compact the working set to survivors.
            retired = np.flatnonzero(~row_active)
            out_lower[active_idx[retired]] = lower[retired]
            out_upper[active_idx[retired]] = upper[retired]
            keep = np.flatnonzero(row_active)
            active_idx = active_idx[keep]
            lower = lower[keep]
            upper = upper[keep]
            x = x[keep]
            delays = delays[keep]
            active = active[keep]
        if active_idx.size == 0:
            break

        centers = np.where(active, 0.5 * (lower + upper), np.nan)
        weights = center_sorted_weights(centers, k0, kd)
        if align and spec.n_buffers:
            period, x = solve_alignment(spec, centers, weights, x)
            shift = spec.shift(x)
        else:
            shift = spec.shift(x)
            period = weighted_median_rows(centers + shift, weights)

        if step_bounds_kernel is not None:
            step_bounds_kernel(lower, upper, delays, shift, period, active)
        else:
            passed = shifted_slack_pass(delays, shift, period[:, None])
            bound = period[:, None] - shift
            upper = np.where(active & passed, np.minimum(upper, bound), upper)
            lower = np.where(active & ~passed, np.maximum(lower, bound), lower)
        iterations[active_idx] += 1

    # Rows that ran out of iterations (or never compacted) scatter here.
    out_lower[active_idx] = lower
    out_upper[active_idx] = upper
    return out_lower, out_upper, iterations


def run_batch_population(
    true_delays: np.ndarray,
    spec: BatchAlignment,
    prior_lower: np.ndarray,
    prior_upper: np.ndarray,
    x_init: np.ndarray,
    epsilon: float | np.ndarray,
    k0: float = 1000.0,
    kd: float = 1.0,
    align: bool = True,
    max_iterations: int | None = None,
    compact: bool = True,
    kernel: str = "vectorized",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Test one batch across all chips.

    ``true_delays`` is ``(n_chips, m)`` for the batch's paths; priors are
    per path.  ``epsilon`` is the stepping resolution — a scalar, or an
    ``(m,)`` array for per-path resolutions (the adaptive budget's coarse
    pass): a path retires from the active set as soon as its own range is
    narrower than its own epsilon.  Returns per-chip bounds and iteration
    counts.  ``compact`` selects the active-set engine (default) or the
    all-rows reference sweep; ``kernel`` selects the stepping-update
    implementation inside the active-set engine
    (:data:`repro.kernels.TEST_KERNELS`).  All combinations produce
    bit-identical results.
    """
    if kernel not in TEST_KERNELS:
        raise ValueError(f"kernel must be one of {TEST_KERNELS}, got {kernel!r}")
    kernel = resolve_kernel(kernel)
    true_delays = np.atleast_2d(np.asarray(true_delays, dtype=float))
    n_chips, m = true_delays.shape
    if np.ndim(epsilon) > 0:
        epsilon = np.asarray(epsilon, dtype=float)
        if epsilon.shape != (m,):
            raise ValueError("per-path epsilon must have one entry per path")
    if np.any(np.asarray(epsilon) <= 0):
        raise ValueError("epsilon must be positive")
    lower = np.tile(np.asarray(prior_lower, dtype=float), (n_chips, 1))
    upper = np.tile(np.asarray(prior_upper, dtype=float), (n_chips, 1))
    x = np.tile(np.asarray(x_init, dtype=float), (n_chips, 1))
    if max_iterations is None:
        max_iterations = _batch_max_iterations(
            prior_lower, prior_upper, epsilon, m
        )
    if compact:
        return _sweep_active_set(
            true_delays, spec, lower, upper, x, epsilon, k0, kd, align,
            max_iterations, kernel=kernel,
        )
    return _sweep_all_rows(
        true_delays, spec, lower, upper, x, epsilon, k0, kd, align,
        max_iterations,
    )


def _test_shard(
    true_delays: np.ndarray,
    plan: MultiplexPlan,
    specs: list[BatchAlignment],
    prior_means: np.ndarray,
    prior_stds: np.ndarray,
    epsilon: float | np.ndarray,
    sigma_window: float,
    k0: float,
    kd: float,
    align: bool,
    x_inits: list[np.ndarray] | None,
    compact: bool,
    column_of: dict[int, int],
    kernel: str = "vectorized",
) -> PopulationTestResult:
    """Run every batch over one chip shard."""
    n_chips = true_delays.shape[0]
    measured = plan.measured
    lower_full = np.empty((n_chips, len(measured)))
    upper_full = np.empty((n_chips, len(measured)))
    per_batch = np.zeros((n_chips, plan.n_batches), dtype=int)

    for b, (batch, spec) in enumerate(zip(plan.batches, specs)):
        idx = batch.path_indices
        x_init = x_inits[b] if x_inits is not None else spec.feasible_default()
        eps_batch = epsilon if np.ndim(epsilon) == 0 else epsilon[idx]
        lower, upper, iters = run_batch_population(
            true_delays[:, idx],
            spec,
            prior_means[idx] - sigma_window * prior_stds[idx],
            prior_means[idx] + sigma_window * prior_stds[idx],
            x_init,
            eps_batch,
            k0=k0,
            kd=kd,
            align=align,
            compact=compact,
            kernel=kernel,
        )
        cols = np.array([column_of[int(p)] for p in idx], dtype=np.intp)
        lower_full[:, cols] = lower
        upper_full[:, cols] = upper
        per_batch[:, b] = iters

    return PopulationTestResult(
        measured_indices=measured,
        lower=lower_full,
        upper=upper_full,
        iterations=per_batch.sum(axis=1),
        iterations_per_batch=per_batch,
    )


def test_population(
    true_delays_full: np.ndarray,
    plan: MultiplexPlan,
    specs: list[BatchAlignment],
    prior_means: np.ndarray,
    prior_stds: np.ndarray,
    epsilon: float | np.ndarray,
    sigma_window: float = 3.0,
    k0: float = 1000.0,
    kd: float = 1.0,
    align: bool = True,
    x_inits: list[np.ndarray] | None = None,
    chip_shard_size: int | None = None,
    compact: bool = True,
    kernel: str = "vectorized",
) -> PopulationTestResult:
    """Aligned delay test of every batch over every chip.

    ``true_delays_full`` is ``(n_chips, n_paths_total)`` over the *global*
    path indexing used by the plan's batches.  With ``chip_shard_size`` the
    population streams through in shards of at most that many chips,
    bounding peak memory; chips are independent, so any shard size yields
    identical results.
    """
    true_delays_full = np.atleast_2d(np.asarray(true_delays_full, dtype=float))
    n_chips = true_delays_full.shape[0]
    return test_population_lazy(
        lambda start, stop: true_delays_full[start:stop],
        n_chips,
        plan,
        specs,
        prior_means,
        prior_stds,
        epsilon,
        sigma_window=sigma_window,
        k0=k0,
        kd=kd,
        align=align,
        x_inits=x_inits,
        chip_shard_size=chip_shard_size,
        compact=compact,
        kernel=kernel,
    )


def test_population_lazy(
    delays_of_shard: Callable[[int, int], np.ndarray],
    n_chips: int,
    plan: MultiplexPlan,
    specs: list[BatchAlignment],
    prior_means: np.ndarray,
    prior_stds: np.ndarray,
    epsilon: float | np.ndarray,
    sigma_window: float = 3.0,
    k0: float = 1000.0,
    kd: float = 1.0,
    align: bool = True,
    x_inits: list[np.ndarray] | None = None,
    chip_shard_size: int | None = None,
    compact: bool = True,
    kernel: str = "vectorized",
) -> PopulationTestResult:
    """Out-of-core variant of :func:`test_population`.

    ``delays_of_shard(start, stop)`` materializes the ``(stop - start,
    n_paths_total)`` true-delay matrix of one chip shard on demand (for
    example :meth:`repro.core.yields.ChipSource.required_shard`), so the
    full ``(n_chips, n_paths_total)`` matrix never exists in this process:
    the peak delay-matrix working set is one shard.  Chips are independent,
    so results are bit-identical to the dense path for any shard size.
    """
    if len(specs) != plan.n_batches:
        raise ValueError("one alignment spec per batch required")
    if chip_shard_size is not None and chip_shard_size < 1:
        raise ValueError("chip_shard_size must be >= 1")
    if np.ndim(epsilon) > 0:
        epsilon = np.asarray(epsilon, dtype=float)
        if epsilon.shape != np.shape(prior_means):
            raise ValueError(
                "per-path epsilon must have one entry per path (global "
                "indexing, like the priors)"
            )
    if np.any(np.asarray(epsilon) <= 0):
        raise ValueError("epsilon must be positive")
    column_of = {int(p): k for k, p in enumerate(plan.measured)}

    shard = chip_shard_size if chip_shard_size is not None else n_chips
    shard = max(shard, 1)
    parts = [
        _test_shard(
            np.atleast_2d(
                np.asarray(
                    delays_of_shard(start, min(start + shard, max(n_chips, 1))),
                    dtype=float,
                )
            ),
            plan,
            specs,
            prior_means,
            prior_stds,
            epsilon,
            sigma_window,
            k0,
            kd,
            align,
            x_inits,
            compact,
            column_of,
            kernel=kernel,
        )
        for start in range(0, max(n_chips, 1), shard)
    ]
    return concat_population_test_results(parts)
