"""Vectorized aligned delay test over a whole chip population.

Real testers handle chips one at a time, and each chip's adaptive test
trajectory (the sequence of aligned periods and buffer settings) depends on
its own pass/fail history.  This engine simulates all Monte-Carlo chips in
lockstep with numpy: per iteration, every still-active chip solves its own
alignment (weighted medians and coordinate descent are row-vectorized) and
updates its own bounds — producing, per chip, exactly the trace the scalar
:mod:`repro.core.testflow` engine produces, hundreds of times faster.

Iteration accounting matches the paper's: a chip pays one iteration for a
batch whenever at least one of its paths in that batch is still unresolved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.alignment import BatchAlignment, center_sorted_weights, solve_alignment
from repro.core.multiplexing import MultiplexPlan
from repro.opt.weighted_median import weighted_median_rows
from repro.tester.oracle import shifted_slack_pass


@dataclass(frozen=True)
class PopulationTestResult:
    """Aligned-test outcome for every chip.

    Bounds are dense over the *measured* paths: column ``k`` corresponds to
    global path index ``measured_indices[k]``.
    """

    measured_indices: np.ndarray
    lower: np.ndarray  # (n_chips, n_measured)
    upper: np.ndarray
    iterations: np.ndarray  # (n_chips,) total frequency-stepping iterations
    iterations_per_batch: np.ndarray  # (n_chips, n_batches)

    @property
    def n_chips(self) -> int:
        return self.lower.shape[0]

    @property
    def n_measured(self) -> int:
        """Paths covered by this test — the single source for ``n_pt``."""
        return int(len(self.measured_indices))

    @property
    def mean_iterations(self) -> float:
        """The paper's ``t_a``: average iterations per chip."""
        return float(self.iterations.mean())


def run_batch_population(
    true_delays: np.ndarray,
    spec: BatchAlignment,
    prior_lower: np.ndarray,
    prior_upper: np.ndarray,
    x_init: np.ndarray,
    epsilon: float,
    k0: float = 1000.0,
    kd: float = 1.0,
    align: bool = True,
    max_iterations: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Test one batch across all chips.

    ``true_delays`` is ``(n_chips, m)`` for the batch's paths; priors are
    per path.  Returns per-chip bounds and iteration counts.
    """
    true_delays = np.atleast_2d(np.asarray(true_delays, dtype=float))
    n_chips, m = true_delays.shape
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    lower = np.tile(np.asarray(prior_lower, dtype=float), (n_chips, 1))
    upper = np.tile(np.asarray(prior_upper, dtype=float), (n_chips, 1))
    x = np.tile(np.asarray(x_init, dtype=float), (n_chips, 1))
    iterations = np.zeros(n_chips, dtype=int)
    if max_iterations is None:
        widths = np.maximum(upper[0] - lower[0], epsilon)
        max_iterations = int(m * (np.ceil(np.log2(widths / epsilon)).max() + 2))

    for _ in range(max_iterations):
        active = (upper - lower) >= epsilon
        chip_active = active.any(axis=1)
        if not chip_active.any():
            break
        centers = np.where(active, 0.5 * (lower + upper), np.nan)
        weights = center_sorted_weights(centers, k0, kd)
        if align and spec.n_buffers:
            period, x = solve_alignment(spec, centers, weights, x)
        else:
            period = weighted_median_rows(centers + spec.shift(x), weights)

        shift = spec.shift(x)
        passed = shifted_slack_pass(true_delays, shift, period[:, None])
        bound = period[:, None] - shift
        tighten_upper = active & passed & chip_active[:, None]
        tighten_lower = active & ~passed & chip_active[:, None]
        upper = np.where(tighten_upper, np.minimum(upper, bound), upper)
        lower = np.where(tighten_lower, np.maximum(lower, bound), lower)
        iterations += chip_active.astype(int)

    return lower, upper, iterations


def test_population(
    true_delays_full: np.ndarray,
    plan: MultiplexPlan,
    specs: list[BatchAlignment],
    prior_means: np.ndarray,
    prior_stds: np.ndarray,
    epsilon: float,
    sigma_window: float = 3.0,
    k0: float = 1000.0,
    kd: float = 1.0,
    align: bool = True,
    x_inits: list[np.ndarray] | None = None,
) -> PopulationTestResult:
    """Aligned delay test of every batch over every chip.

    ``true_delays_full`` is ``(n_chips, n_paths_total)`` over the *global*
    path indexing used by the plan's batches.
    """
    if len(specs) != plan.n_batches:
        raise ValueError("one alignment spec per batch required")
    true_delays_full = np.atleast_2d(np.asarray(true_delays_full, dtype=float))
    n_chips = true_delays_full.shape[0]

    measured = plan.measured
    column_of = {int(p): k for k, p in enumerate(measured)}
    lower_full = np.empty((n_chips, len(measured)))
    upper_full = np.empty((n_chips, len(measured)))
    per_batch = np.zeros((n_chips, plan.n_batches), dtype=int)

    for b, (batch, spec) in enumerate(zip(plan.batches, specs)):
        idx = batch.path_indices
        x_init = x_inits[b] if x_inits is not None else spec.feasible_default()
        lower, upper, iters = run_batch_population(
            true_delays_full[:, idx],
            spec,
            prior_means[idx] - sigma_window * prior_stds[idx],
            prior_means[idx] + sigma_window * prior_stds[idx],
            x_init,
            epsilon,
            k0=k0,
            kd=kd,
            align=align,
        )
        cols = np.array([column_of[int(p)] for p in idx], dtype=np.intp)
        lower_full[:, cols] = lower
        upper_full[:, cols] = upper
        per_batch[:, b] = iters

    return PopulationTestResult(
        measured_indices=measured,
        lower=lower_full,
        upper=upper_full,
        iterations=per_batch.sum(axis=1),
        iterations_per_batch=per_batch,
    )
