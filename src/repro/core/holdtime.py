"""Hold-time tuning bounds (§3.5, eqs. 19–21 of the paper).

Buffers must not skew clocks so far that short paths race through
(eq. 2): ``x_i - x_j >= ~d_ij`` with ``~d_ij = h_j - d_ij_min``.  Rather
than test hold per chip, the paper samples the short-path requirement
distribution ``M`` times and picks per-pair lower bounds ``lambda_ij`` such
that at least a fraction ``Y`` (0.99) of samples would be hold-safe under
``x_i - x_j >= lambda_ij``, while minimizing ``sum(lambda_ij)`` to leave
the buffers maximal configuration freedom.

Selecting *which* (1-Y)·M samples to leave uncovered is a small covering
MILP (eqs. 19–20); production uses a greedy drop heuristic (each round
drops the sample whose removal shrinks ``sum(lambda)`` most), with the
exact MILP available as a cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.buffers import BufferPlan
from repro.circuit.paths import ShortPathSet
from repro.opt.diffconstraints import DifferenceSystem
from repro.opt.model import MatrixForm, Model, ObjectiveSense
from repro.opt.solve import Solution, SolveStats, solve, solve_matrix_form
from repro.opt.warmstart import WarmStartCache
from repro.utils.rng import RandomState
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class HoldBounds:
    """Per-FF-pair lower bounds ``x_src - x_snk >= lambda``.

    ``pairs[k]`` holds (source FF index, sink FF index) into the circuit's
    ``ff_names``; ``lambdas[k]`` the bound.  Pairs without any tunable
    endpoint are omitted (their skew is fixed at 0; their hold margin is
    accounted for in ``achieved_yield``).
    """

    pairs: tuple[tuple[int, int], ...]
    lambdas: np.ndarray
    achieved_yield: float
    target_yield: float

    def as_mapping(self) -> dict[tuple[int, int], float]:
        return {pair: float(lam) for pair, lam in zip(self.pairs, self.lambdas)}

    def __len__(self) -> int:
        return len(self.pairs)


def _pair_requirements(
    short_paths: ShortPathSet, samples: np.ndarray
) -> tuple[list[tuple[int, int]], np.ndarray]:
    """Collapse per-path samples to per-FF-pair requirements (max)."""
    pair_of_path: dict[tuple[int, int], list[int]] = {}
    for p in range(short_paths.n_paths):
        key = (int(short_paths.source_idx[p]), int(short_paths.sink_idx[p]))
        pair_of_path.setdefault(key, []).append(p)
    pairs = sorted(pair_of_path)
    collapsed = np.empty((samples.shape[0], len(pairs)))
    for col, key in enumerate(pairs):
        collapsed[:, col] = samples[:, pair_of_path[key]].max(axis=1)
    return pairs, collapsed


def compute_hold_bounds(
    short_paths: ShortPathSet,
    buffer_plan: BufferPlan,
    target_yield: float = 0.99,
    n_samples: int = 1000,
    seed: RandomState = None,
) -> HoldBounds:
    """Sample short-path requirements and pick ``lambda`` bounds greedily."""
    check_probability(target_yield, "target_yield")
    if n_samples < 1:
        raise ValueError("n_samples must be positive")
    samples = short_paths.model.sample(n_samples, seed=seed)
    pairs, req = _pair_requirements(short_paths, samples)

    buffered = {
        i for i, name in enumerate(short_paths.ff_names)
        if buffer_plan.has_buffer(name)
    }
    tunable_cols = [
        k for k, (src, snk) in enumerate(pairs)
        if src in buffered or snk in buffered
    ]
    fixed_cols = [k for k in range(len(pairs)) if k not in tunable_cols]

    # Samples whose fixed-skew pairs already violate can never be covered.
    if fixed_cols:
        uncoverable = (req[:, fixed_cols] > 0).any(axis=1)
    else:
        uncoverable = np.zeros(n_samples, dtype=bool)
    coverable = np.flatnonzero(~uncoverable)

    budget = int(np.floor((1.0 - target_yield) * n_samples))
    budget -= int(uncoverable.sum())

    kept = set(coverable.tolist())
    tunable = req[:, tunable_cols] if tunable_cols else np.zeros((n_samples, 0))
    for _ in range(max(budget, 0)):
        if len(kept) <= 1:
            break
        kept_idx = np.fromiter(kept, dtype=np.intp)
        block = tunable[kept_idx]
        if block.shape[1] == 0:
            break
        order = np.argsort(block, axis=0)
        top = block[order[-1], np.arange(block.shape[1])]
        second = (
            block[order[-2], np.arange(block.shape[1])]
            if block.shape[0] > 1
            else top
        )
        top_owner = kept_idx[order[-1]]
        # Reduction from dropping sample s: sum over pairs it uniquely tops.
        gains = np.zeros(len(kept_idx))
        owner_local = order[-1]
        np.add.at(gains, owner_local, np.maximum(top - second, 0.0))
        best_local = int(np.argmax(gains))
        if gains[best_local] <= 0:
            break
        kept.discard(int(kept_idx[best_local]))

    kept_idx = np.fromiter(sorted(kept), dtype=np.intp)
    if tunable_cols and kept_idx.size:
        lambdas = tunable[kept_idx].max(axis=0)
    else:
        lambdas = np.zeros(len(tunable_cols))

    achieved = len(kept) / n_samples
    out_pairs = tuple(pairs[k] for k in tunable_cols)
    return HoldBounds(
        pairs=out_pairs,
        lambdas=np.asarray(lambdas, dtype=float),
        achieved_yield=float(achieved),
        target_yield=target_yield,
    )


def solve_hold_bounds_milp(
    short_paths: ShortPathSet,
    buffer_plan: BufferPlan,
    target_yield: float = 0.99,
    n_samples: int = 40,
    seed: RandomState = None,
    backend: str = "scipy",
) -> HoldBounds:
    """Exact eqs. 19–20 solve (small sample counts; used for cross-checks)."""
    samples = short_paths.model.sample(n_samples, seed=seed)
    pairs, req = _pair_requirements(short_paths, samples)
    buffered = {
        i for i, name in enumerate(short_paths.ff_names)
        if buffer_plan.has_buffer(name)
    }
    tunable_cols = [
        k for k, (src, snk) in enumerate(pairs)
        if src in buffered or snk in buffered
    ]
    fixed_cols = [k for k in range(len(pairs)) if k not in tunable_cols]

    model = Model("hold_bounds")
    span = float(np.abs(req).max(initial=1.0)) * 2.0 + 1.0
    lam_vars = [
        model.add_var(f"lam{k}", -span, span) for k in range(len(tunable_cols))
    ]
    y_vars = [model.add_binary(f"y{s}") for s in range(n_samples)]
    for s in range(n_samples):
        for j, col in enumerate(tunable_cols):
            # lambda_j - req[s, col] >= span * (y_s - 1)   (eq. 19)
            model.add_constraint(
                lam_vars[j] - float(req[s, col]) >= span * (y_vars[s] - 1)
            )
        for col in fixed_cols:
            if req[s, col] > 0:
                model.add_constraint(y_vars[s] <= 0)
    total_y = sum(y_vars[1:], y_vars[0]) if y_vars else None
    if total_y is not None:
        model.add_constraint(total_y >= target_yield * n_samples)  # eq. 20
    objective = lam_vars[0] if lam_vars else None
    for v in lam_vars[1:]:
        objective = objective + v
    if objective is not None:
        model.set_objective(objective, ObjectiveSense.MINIMIZE)
    solution = solve(model, backend=backend)
    if not solution.ok:
        raise RuntimeError(f"hold-bound MILP failed: {solution.status}")
    lambdas = np.array([solution[f"lam{k}"] for k in range(len(tunable_cols))])
    covered = sum(round(solution[f"y{s}"]) for s in range(n_samples))
    return HoldBounds(
        pairs=tuple(pairs[k] for k in tunable_cols),
        lambdas=lambdas,
        achieved_yield=covered / n_samples,
        target_yield=target_yield,
    )


class CompiledHoldBoundModel:
    """Precompiled eqs. 19–20 covering MILP, re-solved by coefficient update.

    :func:`solve_hold_bounds_milp` rebuilds the whole model — variables,
    LinExpr constraints, matrix conversion — for every sample draw, yet the
    *structure* depends only on the sample count ``S`` and the number of
    tunable pairs ``J``: variables ``lam_0..lam_{J-1}, y_0..y_{S-1}``, one
    ``-lam_j + span*y_s <= span - req[s, j]`` row per (sample, pair), and
    one coverage row ``-sum(y) <= -Y*S``.  This class builds that
    :class:`~repro.opt.model.MatrixForm` once and each :meth:`solve` call
    rewrites only the per-draw numbers: the ``span`` big-M slots, the
    requirement right-hand sides, the lambda bounds and the coverage
    target.  Samples whose *fixed-skew* pairs already violate become
    ``y_s`` upper bounds of 0 rather than extra constraint rows (the
    dynamic model's ``y_s <= 0`` rows would change the sparsity pattern
    per draw and defeat both precompilation and warm-start keying).

    The structure fingerprint is invariant across draws, so a shared
    :class:`~repro.opt.warmstart.WarmStartCache` hands each re-solve the
    previous draw's basis and incumbent.
    """

    def __init__(self, n_samples: int, n_tunable: int):
        if n_samples < 1:
            raise ValueError("n_samples must be positive")
        if n_tunable < 0:
            raise ValueError("n_tunable must be non-negative")
        self.n_samples = n_samples
        self.n_tunable = n_tunable
        names = [f"lam{j}" for j in range(n_tunable)]
        names += [f"y{s}" for s in range(n_samples)]
        n_vars = n_tunable + n_samples
        n_rows = n_samples * n_tunable + 1

        c = np.zeros(n_vars)
        c[:n_tunable] = 1.0  # minimize sum(lambda)
        a_ub = np.zeros((n_rows, n_vars))
        rows = np.arange(n_samples * n_tunable)
        lam_cols = np.tile(np.arange(n_tunable), n_samples)
        y_cols = n_tunable + np.repeat(np.arange(n_samples), n_tunable)
        a_ub[rows, lam_cols] = -1.0
        a_ub[-1, n_tunable:] = -1.0  # coverage: -sum(y) <= -Y*S
        self._span_rows = rows
        self._span_cols = y_cols

        integer = np.zeros(n_vars, dtype=bool)
        integer[n_tunable:] = True
        lower = np.zeros(n_vars)
        upper = np.ones(n_vars)
        self.form = MatrixForm(
            variable_names=names,
            c=c,
            objective_constant=0.0,
            flip_objective=False,
            a_ub=a_ub,
            b_ub=np.zeros(n_rows),
            a_eq=np.zeros((0, n_vars)),
            b_eq=np.zeros(0),
            lower=lower,
            upper=upper,
            integer=integer,
        )

    def load(
        self,
        req: np.ndarray,
        uncoverable: np.ndarray,
        target_yield: float,
        span: float | None = None,
    ) -> None:
        """Point the compiled structure at one requirement draw.

        ``req`` is the ``(n_samples, n_tunable)`` tunable-pair requirement
        block; ``uncoverable`` flags samples whose fixed-skew pairs already
        violate (their ``y`` is pinned to 0).  ``span`` defaults to the
        reference formula over ``req`` — pass the value computed over the
        *full* requirement matrix to match :func:`solve_hold_bounds_milp`
        exactly when fixed pairs exist.
        """
        req = np.asarray(req, dtype=float)
        uncoverable = np.asarray(uncoverable, dtype=bool)
        if req.shape != (self.n_samples, self.n_tunable):
            raise ValueError(
                f"req shape {req.shape} != "
                f"({self.n_samples}, {self.n_tunable})"
            )
        if uncoverable.shape != (self.n_samples,):
            raise ValueError("uncoverable must have one flag per sample")
        check_probability(target_yield, "target_yield")
        if span is None:
            span = float(np.abs(req).max(initial=1.0)) * 2.0 + 1.0
        form = self.form
        J = self.n_tunable
        form.lower[:J] = -span
        form.upper[:J] = span
        form.upper[J:] = np.where(uncoverable, 0.0, 1.0)
        form.a_ub[self._span_rows, self._span_cols] = span
        form.b_ub[:-1] = ((-req) + span).reshape(-1)
        form.b_ub[-1] = -(target_yield * self.n_samples)

    def solve(
        self,
        req: np.ndarray,
        uncoverable: np.ndarray,
        target_yield: float,
        span: float | None = None,
        backend: str = "auto",
        warm: WarmStartCache | None = None,
        node_limit: int = 20000,
    ) -> tuple[np.ndarray, int, Solution]:
        """Load one draw and solve; returns ``(lambdas, covered, solution)``.

        ``covered`` counts the samples the optimum chose to keep hold-safe.
        Raises unless the solution is usable (``OPTIMAL``, or ``FEASIBLE``
        when branch & bound exhausted ``node_limit`` holding an incumbent).
        """
        self.load(req, uncoverable, target_yield, span=span)
        solution = solve_matrix_form(
            self.form, backend, warm=warm, node_limit=node_limit
        )
        if not solution.usable:
            raise RuntimeError(
                f"hold-bound MILP failed: {solution.failure_reason}"
            )
        lambdas = np.array(
            [solution[f"lam{j}"] for j in range(self.n_tunable)]
        )
        covered = sum(
            round(solution[f"y{s}"]) for s in range(self.n_samples)
        )
        return lambdas, covered, solution


def solve_hold_bounds_exact(
    short_paths: ShortPathSet,
    buffer_plan: BufferPlan,
    target_yield: float = 0.99,
    n_samples: int = 40,
    seed: RandomState = None,
    backend: str = "auto",
    warm: WarmStartCache | None = None,
    compiled: CompiledHoldBoundModel | None = None,
) -> tuple[HoldBounds, SolveStats | None]:
    """Exact eqs. 19–20 through the precompiled model + solver portfolio.

    Same sampling and pair collapse as :func:`solve_hold_bounds_milp` (same
    seed ⇒ same requirement draw ⇒ same optimal ``sum(lambda)``), but the
    MILP is encoded once in a :class:`CompiledHoldBoundModel` (pass
    ``compiled`` to reuse one across draws) and solved through
    :func:`~repro.opt.solve.solve_matrix_form`, so a shared ``warm`` cache
    carries bases and incumbents across sweep variants.  Returns the bounds
    plus the solve's :class:`~repro.opt.solve.SolveStats`.
    """
    samples = short_paths.model.sample(n_samples, seed=seed)
    pairs, req = _pair_requirements(short_paths, samples)
    buffered = {
        i for i, name in enumerate(short_paths.ff_names)
        if buffer_plan.has_buffer(name)
    }
    tunable_cols = [
        k for k, (src, snk) in enumerate(pairs)
        if src in buffered or snk in buffered
    ]
    fixed_cols = [k for k in range(len(pairs)) if k not in tunable_cols]

    span = float(np.abs(req).max(initial=1.0)) * 2.0 + 1.0
    tunable = (
        req[:, tunable_cols] if tunable_cols
        else np.zeros((n_samples, 0))
    )
    if fixed_cols:
        uncoverable = (req[:, fixed_cols] > 0).any(axis=1)
    else:
        uncoverable = np.zeros(n_samples, dtype=bool)

    model = compiled or CompiledHoldBoundModel(n_samples, len(tunable_cols))
    lambdas, covered, solution = model.solve(
        tunable, uncoverable, target_yield,
        span=span, backend=backend, warm=warm,
    )
    bounds = HoldBounds(
        pairs=tuple(pairs[k] for k in tunable_cols),
        lambdas=lambdas,
        achieved_yield=covered / n_samples,
        target_yield=target_yield,
    )
    return bounds, solution.stats


def hold_feasible_settings(
    buffer_plan: BufferPlan,
    hold_bounds: HoldBounds,
    ff_names: tuple[str, ...],
) -> dict[str, float]:
    """A buffer setting satisfying all ``lambda`` bounds and ranges.

    Solved as a difference-constraint system on the buffer lattice; used as
    the default scan-in configuration during test (buffers outside the
    current batch are parked here).  Raises if no such setting exists —
    that means the hold bounds themselves are inconsistent with the ranges.
    """
    buffered = [name for name in ff_names if buffer_plan.has_buffer(name)]
    index = {name: i for i, name in enumerate(buffered)}
    step = buffer_plan.uniform_step()

    system = DifferenceSystem(len(buffered))
    for name in buffered:
        buf = buffer_plan.buffer(name)
        system.add_bounds(index[name], buf.lower, buf.upper)
    for (src, snk), lam in zip(hold_bounds.pairs, hold_bounds.lambdas):
        src_name, snk_name = ff_names[src], ff_names[snk]
        src_b = index.get(src_name)
        snk_b = index.get(snk_name)
        if src_b is not None and snk_b is not None:
            # x_src - x_snk >= lam  <=>  x_snk - x_src <= -lam
            system.add_le(src_b, snk_b, -float(lam))
        elif src_b is not None:
            system.add_lower_bound(src_b, float(lam))
        elif snk_b is not None:
            system.add_upper_bound(snk_b, -float(lam))
        elif lam > 0:
            raise RuntimeError(
                "hold bound between untunable flip-flops is violated; the "
                "circuit cannot be made hold-safe by tuning"
            )
    result = system.solve_on_lattice(step) if step else system.solve()
    if not result.feasible:
        raise RuntimeError("no hold-feasible buffer setting exists")
    out = {}
    for name in buffered:
        value = float(result.x[index[name]])
        out[name] = buffer_plan.buffer(name).quantize(value)
    return out
