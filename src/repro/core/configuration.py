"""Buffer configuration from delay ranges (§3.4, eqs. 15–18 of the paper).

After test + prediction every required path has a range ``[l, u]``.  The
paper configures buffers by assuming delays as close to their upper bounds
as feasibility allows: minimize the largest optimism ``xi`` with

    Td >= D'_ij + x_i - x_j,   l <= D' <= u,   xi >= u - D',
    r <= x <= r + tau,         x_i - x_j >= lambda_ij (eq. 21).

Key structural fact: for a candidate ``xi`` the problem reduces to a
*difference-constraint system* — eliminate ``D'`` and each path contributes
``x_j - x_i >= max(l, u - xi) - Td``.  The minimal ``xi`` is found by
binary search with (chip-batched, lattice-exact) min-plus feasibility,
replacing the paper's per-chip Gurobi LP at a fraction of the cost; a MILP
formulation is kept for cross-checking.

Performance structure: the constraint graph is chip-independent and every
dynamic edge weight is *xi-affine* — either a constant or ``min(c, Td -
max(L, U - xi))`` with ``L``/``U`` xi-independent per-chip path maxima.
:class:`ConfigGraph` precompiles the graph (one
:class:`~repro.opt.diffconstraints.RelaxKernel`) and hoists those maxima
once per (structure, chip shard), so each binary-search step is pure
elementwise work on preallocated buffers plus one vectorized relaxation
solve; the search itself compacts to still-searching chips each step.  The
historical per-edge Python path is retained behind ``kernel="reference"``
for bit-identity tests and ``benchmarks/bench_configure.py``.

Parallel paths between the same buffer pair collapse exactly:
``max_p max(l_p, u_p - xi) = max(max_p l_p, max_p u_p - xi)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.buffers import BufferPlan
from repro.circuit.paths import PathSet
from repro.core.holdtime import HoldBounds
from repro.opt.diffconstraints import RelaxKernel, bellman_ford_reference
from repro.opt.model import Model, ObjectiveSense, VarType
from repro.opt.solve import solve

_EPS = 1e-9

#: Relaxation engines accepted by :func:`configure_chips` and
#: :func:`ideal_feasibility`.  "vectorized" is the precompiled
#: :class:`ConfigGraph` path; "compiled" is the same graph relaxed by the
#: numba per-row kernel of :mod:`repro.kernels.relax` (bit-identical;
#: degrades to slow pure Python without numba); "auto" resolves to
#: "compiled" when numba is importable and "vectorized" otherwise;
#: "reference" rebuilds the edge list and runs the per-edge Python sweep
#: every step, exactly as before the kernel rework (kept for A/B identity
#: checks and benchmarks).
KERNELS = ("auto", "compiled", "vectorized", "reference")


@dataclass(frozen=True)
class ConfigStructure:
    """Chip-independent structure of the configuration problem."""

    buffer_names: tuple[str, ...]
    grids: tuple[np.ndarray, ...]
    step: float | None  # shared lattice step (None -> continuous + snap)
    src_buffer: np.ndarray  # (n_paths,) local buffer index or -1
    snk_buffer: np.ndarray
    fixed_paths: np.ndarray  # neither endpoint tunable (or self-loop)
    into_paths: tuple[np.ndarray, ...]  # per buffer: paths with only sink tunable
    from_paths: tuple[np.ndarray, ...]  # per buffer: paths with only source tunable
    pair_edges: tuple[tuple[int, int, np.ndarray], ...]
    # (src_buf, snk_buf, path indices) for paths with both endpoints tunable
    hold_edges: tuple[tuple[int, int, float], ...]  # x_a - x_b >= lam, both tunable
    static_lower: np.ndarray  # per buffer, box + hold vs fixed
    static_upper: np.ndarray

    @property
    def n_buffers(self) -> int:
        return len(self.buffer_names)


def build_config_structure(
    paths: PathSet,
    buffer_plan: BufferPlan,
    hold_bounds: HoldBounds | None = None,
) -> ConfigStructure:
    """Precompute the constraint graph skeleton for a circuit."""
    buffer_names = tuple(
        name for name in buffer_plan.buffered_ffs
    )
    local = {name: b for b, name in enumerate(buffer_names)}
    grids = tuple(buffer_plan.buffer(name).values() for name in buffer_names)
    static_lower = np.array(
        [buffer_plan.buffer(n).lower for n in buffer_names], dtype=float
    )
    static_upper = np.array(
        [buffer_plan.buffer(n).upper for n in buffer_names], dtype=float
    )

    src_buffer = np.array(
        [local.get(paths.ff_names[i], -1) for i in paths.source_idx], dtype=np.intp
    )
    snk_buffer = np.array(
        [local.get(paths.ff_names[i], -1) for i in paths.sink_idx], dtype=np.intp
    )

    fixed, pair_groups = [], {}
    into_lists = [[] for _ in buffer_names]
    from_lists = [[] for _ in buffer_names]
    for p in range(paths.n_paths):
        sb, tb = int(src_buffer[p]), int(snk_buffer[p])
        if sb < 0 and tb < 0:
            fixed.append(p)
        elif sb == tb:
            fixed.append(p)  # self-loop: x_i - x_j = 0
        elif sb < 0:
            into_lists[tb].append(p)
        elif tb < 0:
            from_lists[sb].append(p)
        else:
            pair_groups.setdefault((sb, tb), []).append(p)

    hold_edges = []
    if hold_bounds is not None:
        for (src_ff, snk_ff), lam in zip(hold_bounds.pairs, hold_bounds.lambdas):
            a = local.get(paths.ff_names[src_ff], -1)
            b = local.get(paths.ff_names[snk_ff], -1)
            lam = float(lam)
            if a >= 0 and b >= 0:
                hold_edges.append((a, b, lam))
            elif a >= 0:
                static_lower[a] = max(static_lower[a], lam)
            elif b >= 0:
                static_upper[b] = min(static_upper[b], -lam)

    return ConfigStructure(
        buffer_names=buffer_names,
        grids=grids,
        step=buffer_plan.uniform_step(),
        src_buffer=src_buffer,
        snk_buffer=snk_buffer,
        fixed_paths=np.array(fixed, dtype=np.intp),
        into_paths=tuple(np.array(v, dtype=np.intp) for v in into_lists),
        from_paths=tuple(np.array(v, dtype=np.intp) for v in from_lists),
        pair_edges=tuple(
            (a, b, np.array(v, dtype=np.intp)) for (a, b), v in sorted(pair_groups.items())
        ),
        hold_edges=tuple(hold_edges),
        static_lower=static_lower,
        static_upper=static_upper,
    )


@dataclass(frozen=True)
class ConfigurationResult:
    """Per-chip configuration outcome."""

    feasible: np.ndarray  # (n_chips,) bool
    settings: np.ndarray  # (n_chips, n_buffers); NaN rows when infeasible
    xi: np.ndarray  # (n_chips,) achieved max optimism (NaN when infeasible)
    buffer_names: tuple[str, ...]


_NEG_INF = float("-inf")
_POS_INF = float("inf")


class ConfigGraph:
    """Precompiled configure/verify problem for one chip shard.

    Everything that does not depend on ``xi`` is computed once: the edge
    arrays (compiled into a destination-grouped
    :class:`~repro.opt.diffconstraints.RelaxKernel`), the static weight
    caps, and the per-chip path-group maxima ``L``/``U``.  Every dynamic
    edge weight then has the xi-affine form

        w_e(xi) = min(c_e, Td - max(L_e, U_e - xi))

    — buffer-range edges cap at the static bound, hold edges are pure
    constants (``L = U = -inf``), and pair edges are uncapped (``c =
    +inf``) — so :meth:`weights` is five elementwise operations on a
    preallocated ``(n_chips, n_edges)`` buffer and :meth:`feasibility` is
    one kernel solve.  ``take`` compacts the shard to a row subset for the
    binary search's active set.
    """

    def __init__(
        self,
        structure: ConfigStructure,
        lower: np.ndarray,
        upper: np.ndarray,
        period: float,
        mode: str = "vectorized",
    ) -> None:
        lower = np.atleast_2d(np.asarray(lower, dtype=float))
        upper = np.atleast_2d(np.asarray(upper, dtype=float))
        nb = structure.n_buffers
        ref = nb
        n_chips = lower.shape[0]

        edges_u: list[int] = []
        edges_v: list[int] = []
        const: list[float] = []
        seg_l: list[np.ndarray | None] = []
        seg_u: list[np.ndarray | None] = []

        def add_edge(u, v, cap, path_idx):
            edges_u.append(u)
            edges_v.append(v)
            const.append(cap)
            if path_idx is None or not len(path_idx):
                seg_l.append(None)
                seg_u.append(None)
            else:
                seg_l.append(lower[:, path_idx].max(axis=1))
                seg_u.append(upper[:, path_idx].max(axis=1))

        for b in range(nb):
            # x_b <= dyn_upper  (ref -> b); x_b >= dyn_lower (b -> ref),
            # encoded as weight -dyn_lower.  -max(s, need - Td) is exactly
            # min(-s, Td - need), which fits the shared affine form.
            add_edge(ref, b, float(structure.static_upper[b]), structure.from_paths[b])
            add_edge(b, ref, -float(structure.static_lower[b]), structure.into_paths[b])
        for a, b, lam in structure.hold_edges:
            # x_a - x_b >= lam  <=>  x_b - x_a <= -lam
            add_edge(a, b, -lam, None)
        for sb, tb, path_idx in structure.pair_edges:
            # x_snk - x_src >= need - Td  <=>  x_src - x_snk <= Td - need
            add_edge(tb, sb, _POS_INF, path_idx)

        self.structure = structure
        self.period = float(period)
        self.step = structure.step
        self.n_chips = n_chips
        self.n_buffers = nb
        self.mode = mode  # relaxation implementation (vectorized/compiled)
        self.kernel = RelaxKernel(
            nb + 1,
            np.array(edges_u, dtype=np.intp),
            np.array(edges_v, dtype=np.intp),
        )
        n_edges = self.kernel.n_edges
        # Store per-chip arrays as (n_chips, n_edges) *in the kernel's
        # destination-grouped edge order*, so weights() writes the buffer
        # solve_rows consumes directly and take() slices contiguous rows.
        order = self.kernel.order
        self._const = np.array(const, dtype=float)[order][None, :]
        lmat = np.full((n_chips, n_edges), _NEG_INF)
        umat = np.full((n_chips, n_edges), _NEG_INF)
        for e, (lcol, ucol) in enumerate(zip(seg_l, seg_u)):
            if lcol is not None:
                lmat[:, e] = lcol
                umat[:, e] = ucol
        self._lmax = np.ascontiguousarray(lmat[:, order])
        self._umax = np.ascontiguousarray(umat[:, order])
        self._wbuf = np.empty((n_chips, n_edges))

    def take(self, rows: np.ndarray) -> "ConfigGraph":
        """Row-compacted copy for ``rows`` (local chip indices)."""
        clone = object.__new__(ConfigGraph)
        clone.structure = self.structure
        clone.period = self.period
        clone.step = self.step
        clone.n_buffers = self.n_buffers
        clone.mode = self.mode
        clone.kernel = self.kernel
        clone._const = self._const
        clone._lmax = self._lmax[rows]
        clone._umax = self._umax[rows]
        clone.n_chips = clone._lmax.shape[0]
        clone._wbuf = np.empty_like(clone._lmax)
        return clone

    def weights(self, xi: np.ndarray) -> np.ndarray:
        """Edge weights at per-chip optimism ``xi``, destination-grouped.

        Pure elementwise work into the preallocated buffer; with a shared
        lattice the weights are floored to multiples of the step, which
        keeps the discrete problem exact (see
        :mod:`repro.opt.diffconstraints`).
        """
        out = self._wbuf
        np.subtract(self._umax, xi[:, None], out=out)
        np.maximum(out, self._lmax, out=out)
        np.subtract(self.period, out, out=out)
        np.minimum(out, self._const, out=out)
        if self.step:
            out /= self.step
            out += _EPS
            np.floor(out, out=out)
            out *= self.step
        return out

    def feasibility(self, xi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched feasibility at ``xi``: (feasible mask, witness settings)."""
        dist, infeasible = self.kernel.solve_rows(self.weights(xi), mode=self.mode)
        nb = self.n_buffers
        x = dist[:, :nb] - dist[:, nb : nb + 1]
        if self.step:
            with np.errstate(invalid="ignore"):
                x = np.round(x / self.step) * self.step
        return ~infeasible, x


def _feasibility_reference(
    structure: ConfigStructure,
    lower: np.ndarray,
    upper: np.ndarray,
    xi: np.ndarray,
    period: float,
) -> tuple[np.ndarray, np.ndarray]:
    """The pre-kernel feasibility step, kept verbatim for A/B runs.

    Rebuilds the Python edge list and the per-buffer reductions on every
    call and relaxes with the per-edge reference sweep.  Returns (feasible
    mask, witness settings); ``lower``/``upper`` are (n_chips, n_paths).
    """
    n_chips = lower.shape[0]
    nb = structure.n_buffers
    ref = nb

    # Per-buffer dynamic bounds from single-endpoint paths.
    dyn_lower = np.tile(structure.static_lower, (n_chips, 1))
    dyn_upper = np.tile(structure.static_upper, (n_chips, 1))
    for b in range(nb):
        into = structure.into_paths[b]
        if into.size:
            need = np.max(
                np.maximum(lower[:, into], upper[:, into] - xi[:, None]), axis=1
            )
            dyn_lower[:, b] = np.maximum(dyn_lower[:, b], need - period)
        from_ = structure.from_paths[b]
        if from_.size:
            need = np.max(
                np.maximum(lower[:, from_], upper[:, from_] - xi[:, None]), axis=1
            )
            dyn_upper[:, b] = np.minimum(dyn_upper[:, b], period - need)

    edges_u, edges_v, weights = [], [], []
    for b in range(nb):
        # x_b <= dyn_upper  (ref -> b); x_b >= dyn_lower (b -> ref).
        edges_u.append(ref)
        edges_v.append(b)
        weights.append(dyn_upper[:, b])
        edges_u.append(b)
        edges_v.append(ref)
        weights.append(-dyn_lower[:, b])
    for a, b, lam in structure.hold_edges:
        # x_a - x_b >= lam  <=>  x_b - x_a <= -lam
        edges_u.append(a)
        edges_v.append(b)
        weights.append(np.full(n_chips, -lam))
    for sb, tb, path_idx in structure.pair_edges:
        l_max = lower[:, path_idx].max(axis=1)
        u_max = upper[:, path_idx].max(axis=1)
        need = np.maximum(l_max, u_max - xi)
        # x_snk - x_src >= need - Td  <=>  x_src - x_snk <= Td - need
        edges_u.append(tb)
        edges_v.append(sb)
        weights.append(period - need)

    weight_matrix = np.array(weights)
    if structure.step:
        weight_matrix = (
            np.floor(weight_matrix / structure.step + _EPS) * structure.step
        )
    result = bellman_ford_reference(
        nb + 1,
        np.array(edges_u, dtype=np.intp),
        np.array(edges_v, dtype=np.intp),
        weight_matrix,
        n_batch=n_chips,
    )
    x = result.x[:, :nb] - result.x[:, ref : ref + 1]
    if structure.step:
        with np.errstate(invalid="ignore"):
            x = np.round(x / structure.step) * structure.step
    return np.asarray(result.feasible, dtype=bool), x


def _check_kernel(kernel: str) -> str:
    """Validate a kernel name and resolve ``"auto"`` for this environment."""
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    from repro.kernels import resolve_kernel

    return resolve_kernel(kernel)


def configure_chips(
    structure: ConfigStructure,
    lower: np.ndarray,
    upper: np.ndarray,
    period: float,
    xi_tolerance: float | None = None,
    *,
    kernel: str = "vectorized",
    compact: bool = True,
) -> ConfigurationResult:
    """Minimax-``xi`` configuration of every chip (binary search).

    ``lower``/``upper`` are ``(n_chips, n_paths)`` delay ranges over the
    full required path set (measured bounds for tested paths, ``mu' ± 3
    sigma'`` for predicted ones).

    Each chip's interval halves until it is within tolerance, so chips
    converge independently: ``compact=True`` (the default) compacts the
    working arrays — including the precompiled
    :class:`ConfigGraph` — to still-searching chips each step and scatters
    converged rows back, exactly like the population test engine's
    active-set sweep; infeasible and converged-at-floor chips never pay
    for another solve.  ``kernel`` selects the relaxation engine (see
    :data:`KERNELS`); all kernels and both ``compact`` modes produce
    bit-identical results.
    """
    kernel = _check_kernel(kernel)
    lower = np.atleast_2d(np.asarray(lower, dtype=float))
    upper = np.atleast_2d(np.asarray(upper, dtype=float))
    n_chips = lower.shape[0]
    nb = structure.n_buffers

    # Fixed paths: feasibility precondition and a hard floor on xi.
    xi_floor = np.zeros(n_chips)
    feasible = np.ones(n_chips, dtype=bool)
    if structure.fixed_paths.size:
        fixed_l = lower[:, structure.fixed_paths]
        fixed_u = upper[:, structure.fixed_paths]
        feasible &= (fixed_l <= period + _EPS).all(axis=1)
        xi_floor = np.maximum(xi_floor, (fixed_u - period).max(axis=1))
        xi_floor = np.maximum(xi_floor, 0.0)

    if nb == 0:
        settings = np.zeros((n_chips, 0))
        xi = np.where(feasible, xi_floor, np.nan)
        return ConfigurationResult(feasible, settings, xi, structure.buffer_names)

    graph = None
    if kernel in ("vectorized", "compiled"):
        graph = ConfigGraph(structure, lower, upper, period, mode=kernel)

        def feas_all(xi):
            return graph.feasibility(xi)

    else:

        def feas_all(xi):
            return _feasibility_reference(structure, lower, upper, xi, period)

    span = float(
        np.max(upper - period, initial=0.0)
        + (structure.static_upper - structure.static_lower).max(initial=0.0) * 2.0
        + 1.0
    )
    xi_hi = np.maximum(xi_floor + span, xi_floor)
    ok_hi, x_hi = feas_all(xi_hi)
    feasible &= ok_hi

    lo = xi_floor.copy()
    hi = xi_hi.copy()
    best_x = x_hi
    ok_lo, x_lo = feas_all(lo)
    done_at_floor = ok_lo & feasible
    hi = np.where(done_at_floor, lo, hi)
    best_x = np.where(done_at_floor[:, None], x_lo, best_x)

    tolerance = xi_tolerance
    if tolerance is None:
        tolerance = (structure.step / 4.0) if structure.step else span * 1e-4
    search = feasible & ~done_at_floor
    max_steps = int(np.ceil(np.log2(max(span / tolerance, 2.0)))) + 1

    # Binary search with per-chip convergence: a chip leaves the search as
    # soon as its own interval is within tolerance (the pre-rework code
    # tested `(hi - lo).max()` over *all* rows — including infeasible ones
    # whose interval never shrinks — so its break could never fire).
    # Row-independence makes compaction a pure perf knob.
    if compact and graph is not None:
        active_idx = np.flatnonzero(search)
        g = graph.take(active_idx)
        lo_a = lo[active_idx]
        hi_a = hi[active_idx]
        for _ in range(max_steps):
            if active_idx.size == 0:
                break
            mid = 0.5 * (lo_a + hi_a)
            ok_mid, x_mid = g.feasibility(mid)
            down = np.flatnonzero(ok_mid)
            best_x[active_idx[down]] = x_mid[down]
            hi_a = np.where(ok_mid, mid, hi_a)
            lo_a = np.where(ok_mid, lo_a, mid)
            converged = (hi_a - lo_a) <= tolerance
            if converged.any():
                done = np.flatnonzero(converged)
                hi[active_idx[done]] = hi_a[done]
                lo[active_idx[done]] = lo_a[done]
                keep = np.flatnonzero(~converged)
                active_idx = active_idx[keep]
                lo_a = lo_a[keep]
                hi_a = hi_a[keep]
                g = g.take(keep)
        hi[active_idx] = hi_a
        lo[active_idx] = lo_a
    else:
        active = search.copy()
        for _ in range(max_steps):
            if not active.any():
                break
            mid = 0.5 * (lo + hi)
            ok_mid, x_mid = feas_all(mid)
            go_down = active & ok_mid
            go_up = active & ~ok_mid
            hi = np.where(go_down, mid, hi)
            best_x = np.where(go_down[:, None], x_mid, best_x)
            lo = np.where(go_up, mid, lo)
            active &= (hi - lo) > tolerance

    settings = np.where(feasible[:, None], best_x, np.nan)
    xi = np.where(feasible, hi, np.nan)
    return ConfigurationResult(feasible, settings, xi, structure.buffer_names)


def ideal_feasibility(
    structure: ConfigStructure,
    true_delays: np.ndarray,
    period: float,
    *,
    kernel: str = "vectorized",
) -> ConfigurationResult:
    """Configurability with *exact* delay knowledge (the paper's ``y_i``).

    With ``l = u = D`` the optimism ``xi`` drops out and the problem is a
    single feasibility check — one :class:`ConfigGraph` build plus one
    vectorized relaxation solve over the whole shard.
    """
    kernel = _check_kernel(kernel)
    true_delays = np.atleast_2d(np.asarray(true_delays, dtype=float))
    n_chips = true_delays.shape[0]
    feasible = np.ones(n_chips, dtype=bool)
    if structure.fixed_paths.size:
        feasible &= (
            true_delays[:, structure.fixed_paths] <= period + _EPS
        ).all(axis=1)
    if structure.n_buffers == 0:
        return ConfigurationResult(
            feasible,
            np.zeros((n_chips, 0)),
            np.zeros(n_chips),
            structure.buffer_names,
        )
    if kernel in ("vectorized", "compiled"):
        graph = ConfigGraph(structure, true_delays, true_delays, period, mode=kernel)
        ok, x = graph.feasibility(np.zeros(n_chips))
    else:
        ok, x = _feasibility_reference(
            structure, true_delays, true_delays, np.zeros(n_chips), period
        )
    feasible &= ok
    settings = np.where(feasible[:, None], x, np.nan)
    return ConfigurationResult(
        feasible, settings, np.zeros(n_chips), structure.buffer_names
    )


# ----------------------------------------------------------------------------
# Exact MILP cross-check (one chip)
# ----------------------------------------------------------------------------


def configure_chip_milp(
    structure: ConfigStructure,
    lower: np.ndarray,
    upper: np.ndarray,
    period: float,
    backend: str = "scipy",
) -> tuple[bool, np.ndarray | None, float | None]:
    """Solve eqs. 15–18 (+21) exactly for one chip; returns
    ``(feasible, settings, xi)``."""
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    model = Model("configuration")
    x_exprs = []
    for b, grid in enumerate(structure.grids):
        step = grid[1] - grid[0] if len(grid) > 1 else 1.0
        k = model.add_var(f"k{b}", 0, len(grid) - 1, VarType.INTEGER)
        x_exprs.append(k * float(step) + float(grid[0]))
    for b in range(structure.n_buffers):
        model.add_constraint(x_exprs[b] >= float(structure.static_lower[b]))
        model.add_constraint(x_exprs[b] <= float(structure.static_upper[b]))
    for a, b, lam in structure.hold_edges:
        model.add_constraint(x_exprs[a] - x_exprs[b] >= float(lam))

    xi = model.add_var("xi", 0.0)
    for p in range(len(lower)):
        sb, tb = int(structure.src_buffer[p]), int(structure.snk_buffer[p])
        d_var = model.add_var(f"d{p}", float(lower[p]), float(upper[p]))
        model.add_constraint(xi >= float(upper[p]) - d_var)  # eq. 17
        gap = d_var - float(period)
        if sb >= 0 and sb != tb:
            gap = gap + x_exprs[sb]
        if tb >= 0 and sb != tb:
            gap = gap - x_exprs[tb]
        model.add_constraint(gap <= 0)  # eq. 16
    model.set_objective(xi, ObjectiveSense.MINIMIZE)
    solution = solve(model, backend=backend)
    if not solution.ok:
        return False, None, None
    x = np.empty(structure.n_buffers)
    for b, grid in enumerate(structure.grids):
        step = grid[1] - grid[0] if len(grid) > 1 else 1.0
        x[b] = grid[0] + step * round(solution[f"k{b}"])
    return True, x, float(solution["xi"])
