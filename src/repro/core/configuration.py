"""Buffer configuration from delay ranges (§3.4, eqs. 15–18 of the paper).

After test + prediction every required path has a range ``[l, u]``.  The
paper configures buffers by assuming delays as close to their upper bounds
as feasibility allows: minimize the largest optimism ``xi`` with

    Td >= D'_ij + x_i - x_j,   l <= D' <= u,   xi >= u - D',
    r <= x <= r + tau,         x_i - x_j >= lambda_ij (eq. 21).

Key structural fact: for a candidate ``xi`` the problem reduces to a
*difference-constraint system* — eliminate ``D'`` and each path contributes
``x_j - x_i >= max(l, u - xi) - Td``.  The minimal ``xi`` is found by
binary search with (chip-batched, lattice-exact) Bellman–Ford feasibility,
replacing the paper's per-chip Gurobi LP at a fraction of the cost; a MILP
formulation is kept for cross-checking.

Parallel paths between the same buffer pair collapse exactly:
``max_p max(l_p, u_p - xi) = max(max_p l_p, max_p u_p - xi)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.buffers import BufferPlan
from repro.circuit.paths import PathSet
from repro.core.holdtime import HoldBounds
from repro.opt.diffconstraints import bellman_ford
from repro.opt.model import Model, ObjectiveSense, VarType
from repro.opt.solve import solve

_EPS = 1e-9


@dataclass(frozen=True)
class ConfigStructure:
    """Chip-independent structure of the configuration problem."""

    buffer_names: tuple[str, ...]
    grids: tuple[np.ndarray, ...]
    step: float | None  # shared lattice step (None -> continuous + snap)
    src_buffer: np.ndarray  # (n_paths,) local buffer index or -1
    snk_buffer: np.ndarray
    fixed_paths: np.ndarray  # neither endpoint tunable (or self-loop)
    into_paths: tuple[np.ndarray, ...]  # per buffer: paths with only sink tunable
    from_paths: tuple[np.ndarray, ...]  # per buffer: paths with only source tunable
    pair_edges: tuple[tuple[int, int, np.ndarray], ...]
    # (src_buf, snk_buf, path indices) for paths with both endpoints tunable
    hold_edges: tuple[tuple[int, int, float], ...]  # x_a - x_b >= lam, both tunable
    static_lower: np.ndarray  # per buffer, box + hold vs fixed
    static_upper: np.ndarray

    @property
    def n_buffers(self) -> int:
        return len(self.buffer_names)


def build_config_structure(
    paths: PathSet,
    buffer_plan: BufferPlan,
    hold_bounds: HoldBounds | None = None,
) -> ConfigStructure:
    """Precompute the constraint graph skeleton for a circuit."""
    buffer_names = tuple(
        name for name in buffer_plan.buffered_ffs
    )
    local = {name: b for b, name in enumerate(buffer_names)}
    grids = tuple(buffer_plan.buffer(name).values() for name in buffer_names)
    static_lower = np.array(
        [buffer_plan.buffer(n).lower for n in buffer_names], dtype=float
    )
    static_upper = np.array(
        [buffer_plan.buffer(n).upper for n in buffer_names], dtype=float
    )

    src_buffer = np.array(
        [local.get(paths.ff_names[i], -1) for i in paths.source_idx], dtype=np.intp
    )
    snk_buffer = np.array(
        [local.get(paths.ff_names[i], -1) for i in paths.sink_idx], dtype=np.intp
    )

    fixed, pair_groups = [], {}
    into_lists = [[] for _ in buffer_names]
    from_lists = [[] for _ in buffer_names]
    for p in range(paths.n_paths):
        sb, tb = int(src_buffer[p]), int(snk_buffer[p])
        if sb < 0 and tb < 0:
            fixed.append(p)
        elif sb == tb:
            fixed.append(p)  # self-loop: x_i - x_j = 0
        elif sb < 0:
            into_lists[tb].append(p)
        elif tb < 0:
            from_lists[sb].append(p)
        else:
            pair_groups.setdefault((sb, tb), []).append(p)

    hold_edges = []
    if hold_bounds is not None:
        for (src_ff, snk_ff), lam in zip(hold_bounds.pairs, hold_bounds.lambdas):
            a = local.get(paths.ff_names[src_ff], -1)
            b = local.get(paths.ff_names[snk_ff], -1)
            lam = float(lam)
            if a >= 0 and b >= 0:
                hold_edges.append((a, b, lam))
            elif a >= 0:
                static_lower[a] = max(static_lower[a], lam)
            elif b >= 0:
                static_upper[b] = min(static_upper[b], -lam)

    return ConfigStructure(
        buffer_names=buffer_names,
        grids=grids,
        step=buffer_plan.uniform_step(),
        src_buffer=src_buffer,
        snk_buffer=snk_buffer,
        fixed_paths=np.array(fixed, dtype=np.intp),
        into_paths=tuple(np.array(v, dtype=np.intp) for v in into_lists),
        from_paths=tuple(np.array(v, dtype=np.intp) for v in from_lists),
        pair_edges=tuple(
            (a, b, np.array(v, dtype=np.intp)) for (a, b), v in sorted(pair_groups.items())
        ),
        hold_edges=tuple(hold_edges),
        static_lower=static_lower,
        static_upper=static_upper,
    )


@dataclass(frozen=True)
class ConfigurationResult:
    """Per-chip configuration outcome."""

    feasible: np.ndarray  # (n_chips,) bool
    settings: np.ndarray  # (n_chips, n_buffers); NaN rows when infeasible
    xi: np.ndarray  # (n_chips,) achieved max optimism (NaN when infeasible)
    buffer_names: tuple[str, ...]


def _feasibility(
    structure: ConfigStructure,
    lower: np.ndarray,
    upper: np.ndarray,
    xi: np.ndarray,
    period: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched Bellman–Ford feasibility at per-chip optimism ``xi``.

    Returns (feasible mask, witness settings).  ``lower``/``upper`` are
    (n_chips, n_paths); fixed paths must be pre-checked by the caller.
    """
    n_chips = lower.shape[0]
    nb = structure.n_buffers
    ref = nb

    # Per-buffer dynamic bounds from single-endpoint paths.
    dyn_lower = np.tile(structure.static_lower, (n_chips, 1))
    dyn_upper = np.tile(structure.static_upper, (n_chips, 1))
    for b in range(nb):
        into = structure.into_paths[b]
        if into.size:
            need = np.max(
                np.maximum(lower[:, into], upper[:, into] - xi[:, None]), axis=1
            )
            dyn_lower[:, b] = np.maximum(dyn_lower[:, b], need - period)
        from_ = structure.from_paths[b]
        if from_.size:
            need = np.max(
                np.maximum(lower[:, from_], upper[:, from_] - xi[:, None]), axis=1
            )
            dyn_upper[:, b] = np.minimum(dyn_upper[:, b], period - need)

    edges_u, edges_v, weights = [], [], []
    for b in range(nb):
        # x_b <= dyn_upper  (ref -> b); x_b >= dyn_lower (b -> ref).
        edges_u.append(ref)
        edges_v.append(b)
        weights.append(dyn_upper[:, b])
        edges_u.append(b)
        edges_v.append(ref)
        weights.append(-dyn_lower[:, b])
    for a, b, lam in structure.hold_edges:
        # x_a - x_b >= lam  <=>  x_b - x_a <= -lam
        edges_u.append(a)
        edges_v.append(b)
        weights.append(np.full(n_chips, -lam))
    for sb, tb, path_idx in structure.pair_edges:
        l_max = lower[:, path_idx].max(axis=1)
        u_max = upper[:, path_idx].max(axis=1)
        need = np.maximum(l_max, u_max - xi)
        # x_snk - x_src >= need - Td  <=>  x_src - x_snk <= Td - need
        edges_u.append(tb)
        edges_v.append(sb)
        weights.append(period - need)

    weight_matrix = np.array(weights)
    if structure.step:
        weight_matrix = (
            np.floor(weight_matrix / structure.step + _EPS) * structure.step
        )
    result = bellman_ford(
        nb + 1,
        np.array(edges_u, dtype=np.intp),
        np.array(edges_v, dtype=np.intp),
        weight_matrix,
        n_batch=n_chips,
    )
    x = result.x[:, :nb] - result.x[:, ref : ref + 1]
    if structure.step:
        with np.errstate(invalid="ignore"):
            x = np.round(x / structure.step) * structure.step
    return np.asarray(result.feasible, dtype=bool), x


def configure_chips(
    structure: ConfigStructure,
    lower: np.ndarray,
    upper: np.ndarray,
    period: float,
    xi_tolerance: float | None = None,
) -> ConfigurationResult:
    """Minimax-``xi`` configuration of every chip (binary search).

    ``lower``/``upper`` are ``(n_chips, n_paths)`` delay ranges over the
    full required path set (measured bounds for tested paths, ``mu' ± 3
    sigma'`` for predicted ones).
    """
    lower = np.atleast_2d(np.asarray(lower, dtype=float))
    upper = np.atleast_2d(np.asarray(upper, dtype=float))
    n_chips = lower.shape[0]
    nb = structure.n_buffers

    # Fixed paths: feasibility precondition and a hard floor on xi.
    xi_floor = np.zeros(n_chips)
    feasible = np.ones(n_chips, dtype=bool)
    if structure.fixed_paths.size:
        fixed_l = lower[:, structure.fixed_paths]
        fixed_u = upper[:, structure.fixed_paths]
        feasible &= (fixed_l <= period + _EPS).all(axis=1)
        xi_floor = np.maximum(xi_floor, (fixed_u - period).max(axis=1))
        xi_floor = np.maximum(xi_floor, 0.0)

    if nb == 0:
        settings = np.zeros((n_chips, 0))
        xi = np.where(feasible, xi_floor, np.nan)
        return ConfigurationResult(feasible, settings, xi, structure.buffer_names)

    span = float(
        np.max(upper - period, initial=0.0)
        + (structure.static_upper - structure.static_lower).max(initial=0.0) * 2.0
        + 1.0
    )
    xi_hi = np.maximum(xi_floor + span, xi_floor)
    ok_hi, x_hi = _feasibility(structure, lower, upper, xi_hi, period)
    feasible &= ok_hi

    lo = xi_floor.copy()
    hi = xi_hi.copy()
    best_x = x_hi
    ok_lo, x_lo = _feasibility(structure, lower, upper, lo, period)
    done_at_floor = ok_lo & feasible
    hi = np.where(done_at_floor, lo, hi)
    best_x = np.where(done_at_floor[:, None], x_lo, best_x)

    tolerance = xi_tolerance
    if tolerance is None:
        tolerance = (structure.step / 4.0) if structure.step else span * 1e-4
    search = feasible & ~done_at_floor
    max_steps = int(np.ceil(np.log2(max(span / tolerance, 2.0)))) + 1
    for _ in range(max_steps):
        if not search.any():
            break
        mid = 0.5 * (lo + hi)
        ok_mid, x_mid = _feasibility(structure, lower, upper, mid, period)
        go_down = search & ok_mid
        go_up = search & ~ok_mid
        hi = np.where(go_down, mid, hi)
        best_x = np.where(go_down[:, None], x_mid, best_x)
        lo = np.where(go_up, mid, lo)
        if (hi - lo).max(initial=0.0) <= tolerance:
            break

    settings = np.where(feasible[:, None], best_x, np.nan)
    xi = np.where(feasible, hi, np.nan)
    return ConfigurationResult(feasible, settings, xi, structure.buffer_names)


def ideal_feasibility(
    structure: ConfigStructure,
    true_delays: np.ndarray,
    period: float,
) -> ConfigurationResult:
    """Configurability with *exact* delay knowledge (the paper's ``y_i``).

    With ``l = u = D`` the optimism ``xi`` drops out and the problem is a
    single feasibility check.
    """
    true_delays = np.atleast_2d(np.asarray(true_delays, dtype=float))
    n_chips = true_delays.shape[0]
    feasible = np.ones(n_chips, dtype=bool)
    if structure.fixed_paths.size:
        feasible &= (
            true_delays[:, structure.fixed_paths] <= period + _EPS
        ).all(axis=1)
    if structure.n_buffers == 0:
        return ConfigurationResult(
            feasible,
            np.zeros((n_chips, 0)),
            np.zeros(n_chips),
            structure.buffer_names,
        )
    ok, x = _feasibility(
        structure, true_delays, true_delays, np.zeros(n_chips), period
    )
    feasible &= ok
    settings = np.where(feasible[:, None], x, np.nan)
    return ConfigurationResult(
        feasible, settings, np.zeros(n_chips), structure.buffer_names
    )


# ----------------------------------------------------------------------------
# Exact MILP cross-check (one chip)
# ----------------------------------------------------------------------------


def configure_chip_milp(
    structure: ConfigStructure,
    lower: np.ndarray,
    upper: np.ndarray,
    period: float,
    backend: str = "scipy",
) -> tuple[bool, np.ndarray | None, float | None]:
    """Solve eqs. 15–18 (+21) exactly for one chip; returns
    ``(feasible, settings, xi)``."""
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    model = Model("configuration")
    x_exprs = []
    for b, grid in enumerate(structure.grids):
        step = grid[1] - grid[0] if len(grid) > 1 else 1.0
        k = model.add_var(f"k{b}", 0, len(grid) - 1, VarType.INTEGER)
        x_exprs.append(k * float(step) + float(grid[0]))
    for b in range(structure.n_buffers):
        model.add_constraint(x_exprs[b] >= float(structure.static_lower[b]))
        model.add_constraint(x_exprs[b] <= float(structure.static_upper[b]))
    for a, b, lam in structure.hold_edges:
        model.add_constraint(x_exprs[a] - x_exprs[b] >= float(lam))

    xi = model.add_var("xi", 0.0)
    for p in range(len(lower)):
        sb, tb = int(structure.src_buffer[p]), int(structure.snk_buffer[p])
        d_var = model.add_var(f"d{p}", float(lower[p]), float(upper[p]))
        model.add_constraint(xi >= float(upper[p]) - d_var)  # eq. 17
        gap = d_var - float(period)
        if sb >= 0 and sb != tb:
            gap = gap + x_exprs[sb]
        if tb >= 0 and sb != tb:
            gap = gap - x_exprs[tb]
        model.add_constraint(gap <= 0)  # eq. 16
    model.set_objective(xi, ObjectiveSense.MINIMIZE)
    solution = solve(model, backend=backend)
    if not solution.ok:
        return False, None, None
    x = np.empty(structure.n_buffers)
    for b, grid in enumerate(structure.grids):
        step = grid[1] - grid[0] if len(grid) > 1 else 1.0
        x[b] = grid[0] + step * round(solution[f"k{b}"])
    return True, x, float(solution["xi"])
