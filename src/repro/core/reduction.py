"""Streaming reduction of population-run artifacts.

The paper's deliverables are population *statistics* — yield ``y_t``, mean
test iterations ``t_a``, per-chip test cost — yet the pipeline's natural
artifacts are dense per-chip arrays (``(n_chips, n_paths)`` delay bounds,
per-chip buffer settings).  This module is the output-side counterpart of
the lazy :class:`~repro.core.yields.ChipSource` input substrate: the online
stages run shard by shard and feed each shard's artifacts into a
:class:`RunReducer`, which keeps only what the caller asked to retain:

* ``"summary"`` — scalars only: yield counts, Welford iteration moments,
  xi/feasibility stats, chip-weighted timing.  Peak memory is O(shard),
  independent of the population size.
* ``"compact"`` — the summary plus two small per-chip columns: the pass
  bitmap (1 byte/chip) and the iteration counts (``uint16``, 2 bytes/chip).
* ``"dense"`` — everything the pre-streaming pipeline produced: the full
  test result, the ``(n_chips, n_paths)`` delay bounds and the per-chip
  configuration.  Bit-identical to the historical dense path.

The same :func:`merge_run_summaries` that the reducer uses to finalize also
reassembles one scenario's result from per-shard pool runs — shard loops
and process fan-out share a single reduction code path.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.configuration import ConfigurationResult
from repro.core.population import (
    PopulationTestResult,
    concat_population_test_results,
)

#: Retention modes, weakest to strongest: every mode carries everything the
#: weaker modes carry, so a dense summary can always serve a compact or
#: summary request (the :mod:`repro.results` store relies on this order).
ARTIFACT_MODES = ("summary", "compact", "dense")

_MODE_RANK = {mode: rank for rank, mode in enumerate(ARTIFACT_MODES)}


def artifacts_rank(mode: str) -> int:
    """Position of ``mode`` in the retention order (raises on unknown)."""
    try:
        return _MODE_RANK[mode]
    except KeyError:
        raise ValueError(
            f"unknown artifacts mode {mode!r}; expected one of {ARTIFACT_MODES}"
        ) from None


class ArtifactsNotRetained(ValueError):
    """A dense (or compact) artifact was requested from a slimmer run.

    Raised by the back-compat accessors of
    :class:`~repro.core.framework.PopulationRunResult` when the run was
    executed with a retention mode that dropped the requested artifact —
    re-run with ``OnlineConfig(artifacts="dense")`` (or ``"compact"`` for
    the per-chip columns) to keep it.
    """


@dataclass(frozen=True)
class Moments:
    """Streaming first/second moments plus extrema (Welford/Chan form).

    ``m2`` is the sum of squared deviations from the mean, so the
    population variance is ``m2 / count``.  Empty moments merge as the
    identity.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    @staticmethod
    def from_values(values: np.ndarray) -> "Moments":
        """Exact moments of a realized sample (numpy-summed, not streamed)."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return Moments()
        mean = float(values.mean())
        return Moments(
            count=int(values.size),
            mean=mean,
            m2=float(((values - mean) ** 2).sum()),
            min=float(values.min()),
            max=float(values.max()),
        )

    def merge(self, other: "Moments") -> "Moments":
        """Chan's parallel combination of two disjoint samples' moments."""
        if self.count == 0:
            return other
        if other.count == 0:
            return self
        count = self.count + other.count
        delta = other.mean - self.mean
        return Moments(
            count=count,
            mean=self.mean + delta * other.count / count,
            m2=self.m2 + other.m2 + delta * delta * self.count * other.count / count,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    @property
    def variance(self) -> float:
        """Population variance (0 for empty or singleton samples)."""
        return self.m2 / self.count if self.count > 0 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


@dataclass
class DenseArtifacts:
    """The full per-chip payload of a run, kept only in ``"dense"`` mode."""

    test: PopulationTestResult
    bounds_lower: np.ndarray  # (n_chips, n_paths)
    bounds_upper: np.ndarray
    configuration: ConfigurationResult


@dataclass
class RunSummary:
    """Reduced outcome of the full flow over a chip population at one period.

    Always present: the paper's population statistics (``y_t`` via
    ``n_passed``, ``t_a`` via ``iteration_moments``, ``n_pt`` via
    ``n_measured``) and the per-chip stage timings.  ``passed`` and
    ``iterations`` are the compact per-chip columns (``"compact"`` and
    ``"dense"`` modes); ``dense`` carries the historical full artifacts
    (``"dense"`` mode only).
    """

    period: float
    n_chips: int
    n_measured: int
    n_passed: int
    n_feasible: int
    iteration_moments: Moments
    xi_moments: Moments
    # effilint: disable=EFT001 -- wall-clock timing is observability, not result identity; digest() compares what was computed, not how fast
    tester_seconds_per_chip: float
    # effilint: disable=EFT001 -- wall-clock timing is observability, not result identity; digest() compares what was computed, not how fast
    config_seconds_per_chip: float
    artifacts: str = "summary"
    passed: np.ndarray | None = None  # (n_chips,) bool
    iterations: np.ndarray | None = None  # (n_chips,) uint16/uint32
    dense: DenseArtifacts | None = None
    # Wall-clock seconds per pipeline stage ("test"/"predict"/"configure"/
    # "verify"), summed over shards.  Pure observability: never part of the
    # result identity (digest() excludes it) and optional end to end, so
    # payloads written before this field existed load unchanged.
    # effilint: disable=EFT001 -- wall-clock timing is observability, not result identity; digest() compares what was computed, not how fast
    stage_seconds: dict[str, float] | None = None

    def __post_init__(self) -> None:
        artifacts_rank(self.artifacts)

    def retains(self, mode: str) -> bool:
        """True when this summary carries at least ``mode``'s artifacts."""
        return artifacts_rank(self.artifacts) >= artifacts_rank(mode)

    # -- the paper's population statistics -------------------------------------

    @property
    def n_tested(self) -> int:
        """Paths actually measured in this run (the plan's ``n_pt``)."""
        return self.n_measured

    @property
    def yield_fraction(self) -> float:
        """The paper's ``y_t``."""
        return self.n_passed / self.n_chips if self.n_chips else 0.0

    @property
    def feasible_fraction(self) -> float:
        return self.n_feasible / self.n_chips if self.n_chips else 0.0

    @property
    def mean_iterations(self) -> float:
        """The paper's ``t_a``."""
        return self.iteration_moments.mean

    @property
    def iterations_per_tested_path(self) -> float:
        """The paper's ``t_v = t_a / n_pt`` (0 when nothing was tested)."""
        return self.mean_iterations / self.n_measured if self.n_measured else 0.0

    def scalars(self) -> dict:
        """The scalar row every retention mode can provide."""
        return {
            "period": self.period,
            "n_chips": self.n_chips,
            "n_tested": self.n_tested,
            "yield_fraction": self.yield_fraction,
            "feasible_fraction": self.feasible_fraction,
            "mean_iterations": self.mean_iterations,
            "iterations_std": self.iteration_moments.std,
            "iterations_per_tested_path": self.iterations_per_tested_path,
            "tester_seconds_per_chip": self.tester_seconds_per_chip,
            "config_seconds_per_chip": self.config_seconds_per_chip,
        }

    def digest(self) -> str:
        """Content hash of the run's *results*; timing is excluded.

        Two runs that computed identical numbers hash identically,
        regardless of kernel choice, shard size, worker count, scheduler
        or wall clock — the bit-identity witness the benchmark gates
        (``benchmarks/bench_kernels.py``) and the kernel tests compare.
        Floats enter via ``float.hex`` / raw array bytes, so the digest
        distinguishes even sub-ulp differences.
        """
        h = hashlib.sha256()

        def put(token: str) -> None:
            h.update(token.encode())
            h.update(b";")

        def put_moments(m: Moments) -> None:
            put(str(m.count))
            for value in (m.mean, m.m2, m.min, m.max):
                put(float(value).hex())

        def put_array(tag: str, values: np.ndarray | None) -> None:
            h.update(tag.encode() + b":")
            if values is None:
                put("none")
                return
            values = np.ascontiguousarray(values)
            put(str(values.dtype))
            put(repr(values.shape))
            h.update(values.tobytes())
            h.update(b";")

        put(float(self.period).hex())
        put(str(self.n_chips))
        put(str(self.n_measured))
        put(str(self.n_passed))
        put(str(self.n_feasible))
        put_moments(self.iteration_moments)
        put_moments(self.xi_moments)
        put(self.artifacts)
        put_array("passed", self.passed)
        put_array("iterations", self.iterations)
        if self.dense is not None:
            test = self.dense.test
            config = self.dense.configuration
            put_array("measured_indices", test.measured_indices)
            put_array("test_lower", test.lower)
            put_array("test_upper", test.upper)
            put_array("test_iterations", test.iterations)
            put_array("test_iterations_per_batch", test.iterations_per_batch)
            put_array("bounds_lower", self.dense.bounds_lower)
            put_array("bounds_upper", self.dense.bounds_upper)
            put_array("feasible", config.feasible)
            put_array("settings", config.settings)
            put_array("xi", config.xi)
        return h.hexdigest()


def _compact_iterations(iterations: np.ndarray) -> np.ndarray:
    """Per-chip iteration counts as the narrowest sufficient unsigned dtype."""
    iterations = np.asarray(iterations)
    if iterations.size and int(iterations.max()) >= 2**16:
        return iterations.astype(np.uint32)
    return iterations.astype(np.uint16)


def summarize_shard(
    period: float,
    test: PopulationTestResult,
    bounds_lower: np.ndarray,
    bounds_upper: np.ndarray,
    configuration: ConfigurationResult,
    passed: np.ndarray,
    tester_seconds_per_chip: float,
    config_seconds_per_chip: float,
    artifacts: str = "summary",
    stage_seconds: dict[str, float] | None = None,
) -> RunSummary:
    """Reduce one chip shard's stage artifacts to a :class:`RunSummary`."""
    rank = artifacts_rank(artifacts)
    passed = np.asarray(passed, dtype=bool)
    n_chips = int(passed.shape[0])
    feasible = np.asarray(configuration.feasible, dtype=bool)
    xi = np.asarray(configuration.xi, dtype=float)
    finite_xi = xi[feasible & np.isfinite(xi)]
    return RunSummary(
        period=float(period),
        n_chips=n_chips,
        n_measured=test.n_measured,
        n_passed=int(passed.sum()),
        n_feasible=int(feasible.sum()),
        iteration_moments=Moments.from_values(test.iterations),
        xi_moments=Moments.from_values(finite_xi),
        tester_seconds_per_chip=float(tester_seconds_per_chip),
        config_seconds_per_chip=float(config_seconds_per_chip),
        artifacts=artifacts,
        passed=passed if rank >= 1 else None,
        iterations=_compact_iterations(test.iterations) if rank >= 1 else None,
        dense=DenseArtifacts(
            test=test,
            bounds_lower=bounds_lower,
            bounds_upper=bounds_upper,
            configuration=configuration,
        )
        if rank >= 2
        else None,
        stage_seconds=dict(stage_seconds) if stage_seconds else None,
    )


def _merge_stage_seconds(
    parts: Sequence[RunSummary],
) -> dict[str, float] | None:
    """Per-stage wall-clock totals across shards (None when never timed)."""
    totals: dict[str, float] = {}
    timed = False
    for part in parts:
        if part.stage_seconds is None:
            continue
        timed = True
        for stage, seconds in part.stage_seconds.items():
            totals[stage] = totals.get(stage, 0.0) + float(seconds)
    return totals if timed else None


def _merge_dense(parts: Sequence[DenseArtifacts]) -> DenseArtifacts:
    first = parts[0].configuration
    return DenseArtifacts(
        test=concat_population_test_results([p.test for p in parts]),
        bounds_lower=np.vstack([p.bounds_lower for p in parts]),
        bounds_upper=np.vstack([p.bounds_upper for p in parts]),
        configuration=ConfigurationResult(
            feasible=np.concatenate([p.configuration.feasible for p in parts]),
            settings=np.vstack([p.configuration.settings for p in parts]),
            xi=np.concatenate([p.configuration.xi for p in parts]),
            buffer_names=first.buffer_names,
        ),
    )


def merge_run_summaries(parts: Sequence[RunSummary]) -> RunSummary:
    """Combine chip-shard summaries of one scenario, in chip order.

    Chips are independent through every online stage, so concatenating the
    per-shard columns reproduces the unsharded run exactly; counts add, the
    per-chip timing figures recombine as chip-weighted means, and the
    iteration moments are recomputed exactly from the concatenated column
    when it was retained (Welford-merged otherwise).
    """
    if not parts:
        raise ValueError("need at least one summary to merge")
    first = parts[0]
    if len(parts) == 1:
        return first
    for part in parts[1:]:
        if part.artifacts != first.artifacts:
            raise ValueError("shard summaries retain different artifact modes")
        if part.n_measured != first.n_measured:
            raise ValueError("shard summaries cover different measured paths")
        if part.period != first.period:
            raise ValueError("shard summaries ran at different periods")

    n_chips = np.array([p.n_chips for p in parts], dtype=float)
    total = n_chips.sum()
    dense = (
        _merge_dense([p.dense for p in parts])
        if first.dense is not None
        else None
    )
    if dense is not None:
        # Recompute from the full column: bit-identical to the dense path.
        iteration_moments = Moments.from_values(dense.test.iterations)
        xi = np.asarray(dense.configuration.xi, dtype=float)
        feasible = np.asarray(dense.configuration.feasible, dtype=bool)
        xi_moments = Moments.from_values(xi[feasible & np.isfinite(xi)])
    else:
        iteration_moments = Moments()
        xi_moments = Moments()
        for part in parts:
            iteration_moments = iteration_moments.merge(part.iteration_moments)
            xi_moments = xi_moments.merge(part.xi_moments)
        if first.iterations is not None:
            # The compact column is exact; prefer it for the mean/extrema.
            iteration_moments = Moments.from_values(
                np.concatenate([p.iterations for p in parts])
            )
    return RunSummary(
        period=first.period,
        n_chips=int(total),
        n_measured=first.n_measured,
        n_passed=sum(p.n_passed for p in parts),
        n_feasible=sum(p.n_feasible for p in parts),
        iteration_moments=iteration_moments,
        xi_moments=xi_moments,
        tester_seconds_per_chip=float(
            (n_chips * [p.tester_seconds_per_chip for p in parts]).sum() / total
        ),
        config_seconds_per_chip=float(
            (n_chips * [p.config_seconds_per_chip for p in parts]).sum() / total
        ),
        artifacts=first.artifacts,
        passed=(
            np.concatenate([p.passed for p in parts])
            if first.passed is not None
            else None
        ),
        iterations=(
            np.concatenate([p.iterations for p in parts])
            if first.iterations is not None
            else None
        ),
        dense=dense,
        stage_seconds=_merge_stage_seconds(parts),
    )


class RunReducer:
    """Accumulates per-shard stage artifacts into one :class:`RunSummary`.

    The engine's shard loop calls :meth:`add_shard` once per chip shard (in
    chip order) and :meth:`finalize` at the end.  In ``"summary"`` mode the
    reducer holds scalars only, so the run's peak memory is O(shard); the
    stronger modes append exactly the columns they retain.
    """

    def __init__(self, period: float, artifacts: str = "summary"):
        artifacts_rank(artifacts)
        self.period = float(period)
        self.artifacts = artifacts
        self._parts: list[RunSummary] = []

    @property
    def n_chips(self) -> int:
        return sum(part.n_chips for part in self._parts)

    def add_shard(
        self,
        test: PopulationTestResult,
        bounds_lower: np.ndarray,
        bounds_upper: np.ndarray,
        configuration: ConfigurationResult,
        passed: np.ndarray,
        tester_seconds_per_chip: float,
        config_seconds_per_chip: float,
        stage_seconds: dict[str, float] | None = None,
    ) -> RunSummary:
        """Reduce one shard; returns the shard's own summary."""
        part = summarize_shard(
            self.period,
            test,
            bounds_lower,
            bounds_upper,
            configuration,
            passed,
            tester_seconds_per_chip,
            config_seconds_per_chip,
            artifacts=self.artifacts,
            stage_seconds=stage_seconds,
        )
        self._parts.append(part)
        return part

    def finalize(self) -> RunSummary:
        if not self._parts:
            raise ValueError("cannot summarize an empty population (no shards)")
        return merge_run_summaries(self._parts)


__all__ = [
    "ARTIFACT_MODES",
    "ArtifactsNotRetained",
    "DenseArtifacts",
    "Moments",
    "RunReducer",
    "RunSummary",
    "artifacts_rank",
    "merge_run_summaries",
    "summarize_shard",
]
