"""Aligned delay test optimization (§3.3, eqs. 6–14 of the paper).

Per test iteration, one clock period ``T`` and batch-local buffer values
``x`` are chosen to minimize the weighted distance of ``T`` from every
path's *shifted* range centre:

    minimize sum_ij k_ij * | T - ((u_ij + l_ij)/2 + x_i - x_j) |    (eq. 7)

subject to buffer ranges (eq. 14) and hold-safety bounds ``x_i - x_j >=
lambda_ij`` (eq. 21).  The weights are centre-sorted (the middle range gets
``k0``, decreasing by ``kd`` outward, ``k0 >> kd``) to break the
non-overlapping-ranges tie of Fig. 6e.

Three solvers are provided:

* :func:`solve_alignment` — the production solver: the optimal ``T`` for
  fixed ``x`` is a weighted median, and each discrete buffer is improved by
  exact coordinate minimization over its (hold-feasible) grid values.
  Fully vectorized across Monte-Carlo chips.
* :func:`solve_alignment_milp` — the paper's formulation solved exactly;
  ``formulation="paper"`` reproduces the big-M/0-1 encoding of eqs. 8–13
  verbatim, ``formulation="compact"`` the equivalent two-inequality
  absolute-value encoding.  Used for cross-checks and small flows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.opt.linexpr import LinExpr
from repro.opt.model import Model, ObjectiveSense, VarType
from repro.opt.solve import Solution, solve
from repro.opt.weighted_median import weighted_median_rows


@dataclass(frozen=True)
class BatchAlignment:
    """Static alignment structure of one test batch.

    ``m`` batch paths reference ``n_buf`` movable buffers by local index
    (-1 = that endpoint has no buffer or its buffer is outside the batch
    and held at its default).  ``base_shift`` carries the contribution of
    non-movable endpoints, so a path's tested quantity is
    ``centre + base_shift + x[src_buffer] - x[snk_buffer]``.
    """

    src_buffer: np.ndarray  # (m,) local buffer index or -1
    snk_buffer: np.ndarray  # (m,)
    base_shift: np.ndarray  # (m,)
    grids: tuple[np.ndarray, ...]  # candidate values per local buffer
    lower_bounds: np.ndarray  # (n_buf,) static bounds incl. hold vs fixed env
    upper_bounds: np.ndarray
    pair_lower: tuple[tuple[int, int, float], ...] = ()
    # each (a, b, lam): x[a] - x[b] >= lam between movable buffers
    buffer_names: tuple[str, ...] = ()  # FF names of the movable buffers

    @property
    def n_paths(self) -> int:
        return len(self.src_buffer)

    @property
    def n_buffers(self) -> int:
        return len(self.grids)

    def shift(self, x: np.ndarray) -> np.ndarray:
        """Per-path ``x_i - x_j`` (plus fixed environment) for settings ``x``.

        ``x`` is ``(n_buf,)`` or ``(n_chips, n_buf)``; result matches with a
        trailing path axis.
        """
        x = np.asarray(x, dtype=float)
        batched = x.ndim == 2
        xs = x if batched else x[None, :]
        shift = np.tile(self.base_shift, (xs.shape[0], 1))
        src_has = self.src_buffer >= 0
        snk_has = self.snk_buffer >= 0
        if src_has.any():
            shift[:, src_has] += xs[:, self.src_buffer[src_has]]
        if snk_has.any():
            shift[:, snk_has] -= xs[:, self.snk_buffer[snk_has]]
        return shift if batched else shift[0]

    def feasible_default(self) -> np.ndarray:
        """A hold-feasible starting point: per-buffer value closest to 0.

        The static bounds are assumed to admit such a point (guaranteed by
        the offline hold-bound computation, which validates the default
        settings).  Pairwise ``lambda`` constraints are *checked*, not
        assumed: a start that violates ``x[a] - x[b] >= lambda`` would send
        the coordinate-descent solver through hold-infeasible settings, so
        a violation raises instead of being silently returned.
        """
        out = np.empty(self.n_buffers)
        for b, grid in enumerate(self.grids):
            feasible = grid[
                (grid >= self.lower_bounds[b] - 1e-12)
                & (grid <= self.upper_bounds[b] + 1e-12)
            ]
            pool = feasible if feasible.size else grid
            out[b] = pool[np.argmin(np.abs(pool))]
        for a, b, lam in self.pair_lower:
            if out[a] - out[b] < lam - 1e-9:
                name_a = self.buffer_names[a] if self.buffer_names else str(a)
                name_b = self.buffer_names[b] if self.buffer_names else str(b)
                raise ValueError(
                    "feasible_default is hold-infeasible: "
                    f"x[{name_a}] - x[{name_b}] = {out[a] - out[b]:g} "
                    f"violates the pair constraint >= {lam:g}; the offline "
                    "hold bounds do not cover this batch's default settings "
                    "— pass explicit x_inits (e.g. from "
                    "hold_feasible_settings) instead"
                )
        return out


def build_batch_alignment(
    batch_paths: np.ndarray,
    path_source_idx: np.ndarray,
    path_sink_idx: np.ndarray,
    ff_names: tuple[str, ...],
    buffer_plan,
    hold_pairs: tuple[tuple[int, int], ...] = (),
    hold_lambdas: np.ndarray | None = None,
    default_settings: dict[str, float] | None = None,
) -> BatchAlignment:
    """Construct the alignment structure of one batch.

    Movable buffers are the tunable endpoints of the batch's paths; buffers
    elsewhere in the circuit stay parked at ``default_settings``, which
    turns hold constraints against them into static bounds on the movable
    ones.  ``hold_pairs``/``hold_lambdas`` are (source FF index, sink FF
    index) -> lambda from :mod:`repro.core.holdtime`.
    """
    batch_paths = np.asarray(batch_paths, dtype=np.intp)
    defaults = default_settings or {}

    movable: list[str] = []
    movable_index: dict[str, int] = {}
    for p in batch_paths.tolist():
        for ff_idx in (int(path_source_idx[p]), int(path_sink_idx[p])):
            name = ff_names[ff_idx]
            if buffer_plan.has_buffer(name) and name not in movable_index:
                movable_index[name] = len(movable)
                movable.append(name)

    src_buffer = np.array(
        [
            movable_index.get(ff_names[int(path_source_idx[p])], -1)
            for p in batch_paths.tolist()
        ],
        dtype=np.intp,
    )
    snk_buffer = np.array(
        [
            movable_index.get(ff_names[int(path_sink_idx[p])], -1)
            for p in batch_paths.tolist()
        ],
        dtype=np.intp,
    )

    grids = tuple(buffer_plan.buffer(name).values() for name in movable)
    lower = np.array([buffer_plan.buffer(name).lower for name in movable])
    upper = np.array([buffer_plan.buffer(name).upper for name in movable])

    pair_lower: list[tuple[int, int, float]] = []
    if hold_lambdas is not None:
        for (src_idx, snk_idx), lam in zip(hold_pairs, hold_lambdas):
            src_name, snk_name = ff_names[src_idx], ff_names[snk_idx]
            a = movable_index.get(src_name)
            b = movable_index.get(snk_name)
            lam = float(lam)
            if a is not None and b is not None:
                pair_lower.append((a, b, lam))
            elif a is not None:
                # x_a >= lam + fixed setting of the sink side
                fixed = defaults.get(snk_name, 0.0)
                lower[a] = max(lower[a], lam + fixed)
            elif b is not None:
                fixed = defaults.get(src_name, 0.0)
                upper[b] = min(upper[b], fixed - lam)

    return BatchAlignment(
        src_buffer=src_buffer,
        snk_buffer=snk_buffer,
        base_shift=np.zeros(len(batch_paths)),
        grids=grids,
        lower_bounds=lower,
        upper_bounds=upper,
        pair_lower=tuple(pair_lower),
        buffer_names=tuple(movable),
    )


def center_sorted_weights(
    centers: np.ndarray, k0: float = 1000.0, kd: float = 1.0
) -> np.ndarray:
    """Eq.-7 weights: middle of the sorted centres gets ``k0``; weight drops
    by ``kd`` per rank step away from the middle (``k0 >> kd``).

    Accepts ``(m,)`` or ``(n_chips, m)`` centres; NaN centres (converged or
    inactive paths) get weight 0.
    """
    centers = np.asarray(centers, dtype=float)
    single = centers.ndim == 1
    c = centers[None, :] if single else centers
    n_rows, m = c.shape

    valid = ~np.isnan(c)
    # Rank valid entries per row by centre value; NaNs sort to the end.
    order = np.argsort(np.where(valid, c, np.inf), axis=1, kind="stable")
    ranks = np.empty_like(order)
    rows = np.arange(n_rows)[:, None]
    ranks[rows, order] = np.arange(m)[None, :]

    n_valid = valid.sum(axis=1)
    middle = (n_valid - 1) / 2.0
    weights = k0 - kd * np.abs(ranks - middle[:, None])
    weights = np.where(valid, np.maximum(weights, kd), 0.0)
    return weights[0] if single else weights


def solve_alignment(
    spec: BatchAlignment,
    centers: np.ndarray,
    weights: np.ndarray,
    x_init: np.ndarray,
    sweeps: int = 2,
) -> tuple[np.ndarray, np.ndarray]:
    """Weighted-median / coordinate-descent alignment solver.

    Parameters are batched: ``centers``/``weights`` are ``(n_chips, m)``
    (NaN centre = inactive path), ``x_init`` is ``(n_chips, n_buf)`` and
    must satisfy the static bounds and pairwise constraints.

    Returns ``(T, x)`` with ``T`` shape ``(n_chips,)``.  Deterministic:
    grid-candidate ties resolve to the lowest index.
    """
    centers = np.atleast_2d(np.asarray(centers, dtype=float))
    weights = np.atleast_2d(np.asarray(weights, dtype=float))
    x = np.array(np.atleast_2d(np.asarray(x_init, dtype=float)), copy=True)
    n_chips, m = centers.shape
    if weights.shape != centers.shape:
        raise ValueError("weights must match centers in shape")
    if x.shape != (n_chips, spec.n_buffers):
        raise ValueError("x_init must be (n_chips, n_buffers)")

    masked_weights = np.where(np.isnan(centers), 0.0, weights)

    period = weighted_median_rows(centers + spec.shift(x), masked_weights)
    for _ in range(sweeps):
        for b in range(spec.n_buffers):
            period, _ = _improve_buffer(
                spec, b, centers, masked_weights, x, period
            )
        period = weighted_median_rows(centers + spec.shift(x), masked_weights)
    return period, x


_CHUNK = 1024  # chips per block in the candidate sweep (memory bound)


def _improve_buffer(
    spec: BatchAlignment,
    b: int,
    centers: np.ndarray,
    weights: np.ndarray,
    x: np.ndarray,
    period: np.ndarray,
) -> tuple[np.ndarray, bool]:
    """Exact coordinate minimization of buffer ``b`` over its grid.

    For every candidate grid value the clock period is re-optimized (the
    optimal ``T`` for fixed buffers is the weighted median of the shifted
    centres), so each step minimizes the *joint* objective over
    ``(T, x_b)`` — plain coordinate descent with ``T`` frozen stalls on the
    symmetric in/out-pair case where moving ``x_b`` alone cannot help.
    """
    affected_src = spec.src_buffer == b
    affected_snk = spec.snk_buffer == b
    if not affected_src.any() and not affected_snk.any():
        return period, False
    grid = spec.grids[b]
    n_chips, m = centers.shape
    n_cand = len(grid)

    # Per-chip feasible interval from static bounds and pair constraints.
    lb = np.full(n_chips, spec.lower_bounds[b])
    ub = np.full(n_chips, spec.upper_bounds[b])
    for a, other, lam in spec.pair_lower:
        if a == b and other != b:
            lb = np.maximum(lb, lam + x[:, other])  # x_b >= lam + x_other
        elif other == b and a != b:
            ub = np.minimum(ub, x[:, a] - lam)  # x_b <= x_a - lam
    feasible = (grid[None, :] >= lb[:, None] - 1e-12) & (
        grid[None, :] <= ub[:, None] + 1e-12
    )

    # Shift with buffer b removed, and the +-1 coupling of each path to b.
    x_zero = x.copy()
    x_zero[:, b] = 0.0
    partial = centers + spec.shift(x_zero)
    sign = affected_src.astype(float) - affected_snk.astype(float)

    best_k = np.zeros(n_chips, dtype=np.intp)
    best_period = period.copy()
    for start in range(0, n_chips, _CHUNK):
        stop = min(start + _CHUNK, n_chips)
        block = slice(start, stop)
        rows = stop - start
        shifted = (
            partial[block, None, :] + sign[None, None, :] * grid[None, :, None]
        )  # (rows, n_cand, m)
        w_block = np.broadcast_to(
            weights[block, None, :], (rows, n_cand, m)
        ).reshape(-1, m)
        medians = weighted_median_rows(
            shifted.reshape(-1, m), w_block
        ).reshape(rows, n_cand)
        cost = np.nansum(
            np.where(
                np.isnan(shifted), 0.0,
                weights[block, None, :] * np.abs(medians[:, :, None] - shifted),
            ),
            axis=2,
        )
        cost = np.where(feasible[block], cost, np.inf)
        k = np.argmin(cost, axis=1)
        best_k[block] = k
        best_period[block] = medians[np.arange(rows), k]

    # If numerical tightening left a chip with no feasible candidate, keep
    # its current (feasible) value rather than jumping to an invalid one.
    all_infeasible = ~feasible.any(axis=1)
    if all_infeasible.any():
        current_k = np.argmin(np.abs(grid[None, :] - x[:, b : b + 1]), axis=1)
        best_k[all_infeasible] = current_k[all_infeasible]
        best_period[all_infeasible] = period[all_infeasible]
    x[:, b] = grid[best_k]
    return best_period, True


# ----------------------------------------------------------------------------
# Exact MILP formulations (scalar)
# ----------------------------------------------------------------------------


def _is_uniform_grid(grid: np.ndarray) -> bool:
    """Whether all grid steps are (numerically) equal."""
    if len(grid) < 3:
        return True
    steps = np.diff(np.asarray(grid, dtype=float))
    return bool(np.allclose(steps, steps[0], rtol=1e-9, atol=1e-12))


def _alignment_model(
    spec: BatchAlignment,
    centers: np.ndarray,
    weights: np.ndarray,
    formulation: str,
) -> tuple[Model, list[LinExpr]]:
    centers = np.asarray(centers, dtype=float)
    weights = np.asarray(weights, dtype=float)
    model = Model("alignment")

    x_exprs: list[LinExpr] = []
    for b, grid in enumerate(spec.grids):
        if _is_uniform_grid(grid):
            # Uniform lattice: one integer step count is exact and keeps the
            # branch & bound tree small.
            step = grid[1] - grid[0] if len(grid) > 1 else 1.0
            k = model.add_var(f"k{b}", 0, len(grid) - 1, VarType.INTEGER)
            x_exprs.append(k * float(step) + float(grid[0]))
        else:
            # Non-uniform grid: affine step encoding would silently round to
            # off-grid values, so select the value with one-hot binaries.
            selectors = [
                model.add_binary(f"z{b}_{j}") for j in range(len(grid))
            ]
            model.add_constraint(LinExpr.sum(selectors).equals(1))
            x_exprs.append(
                LinExpr.sum(
                    float(v) * z for v, z in zip(grid.tolist(), selectors)
                )
            )

    # Static bounds (hold vs fixed environment) and pair constraints.
    for b in range(spec.n_buffers):
        model.add_constraint(x_exprs[b] >= float(spec.lower_bounds[b]))
        model.add_constraint(x_exprs[b] <= float(spec.upper_bounds[b]))
    for a, b, lam in spec.pair_lower:
        model.add_constraint(x_exprs[a] - x_exprs[b] >= float(lam))

    finite = [p for p in range(spec.n_paths) if not np.isnan(centers[p])]
    span = max(
        (abs(float(centers[p])) for p in finite), default=1.0
    ) + sum(float(np.max(np.abs(g))) for g in spec.grids) + 1.0
    period = model.add_var("T", -span, span)

    big_m = 4.0 * span
    objective = LinExpr()
    for p in finite:
        eta = model.add_var(f"eta{p}", 0.0)
        gap: LinExpr = period - float(centers[p]) - float(spec.base_shift[p])
        if spec.src_buffer[p] >= 0:
            gap = gap - x_exprs[spec.src_buffer[p]]
        if spec.snk_buffer[p] >= 0:
            gap = gap + x_exprs[spec.snk_buffer[p]]
        if formulation == "compact":
            model.add_constraint(eta >= gap)
            model.add_constraint(eta >= -1.0 * gap)
        elif formulation == "paper":
            zp = model.add_binary(f"zp{p}")
            zn = model.add_binary(f"zn{p}")
            model.add_constraint(gap <= big_m * zp)  # eq. 8
            model.add_constraint(gap - eta <= big_m * (1 - zp))  # eq. 9
            model.add_constraint(-1.0 * gap + eta <= big_m * (1 - zp))  # eq. 10
            model.add_constraint(-1.0 * gap <= big_m * zn)  # eq. 11
            model.add_constraint(-1.0 * gap - eta <= big_m * (1 - zn))  # eq. 12
            model.add_constraint(gap + eta <= big_m * (1 - zn))  # eq. 13
            model.add_constraint(zp + zn >= 1)
        else:
            raise ValueError(f"unknown formulation {formulation!r}")
        objective = objective + float(weights[p]) * eta
    model.set_objective(objective, ObjectiveSense.MINIMIZE)
    return model, x_exprs


def solve_alignment_milp(
    spec: BatchAlignment,
    centers: np.ndarray,
    weights: np.ndarray,
    formulation: str = "compact",
    backend: str = "scipy",
) -> tuple[float, np.ndarray, Solution]:
    """Solve eqs. 7–14 exactly; returns ``(T, x, solution)``.

    Raises ``RuntimeError`` when the solver fails (e.g. inconsistent hold
    bounds), since alignment infeasibility indicates a configuration bug.
    """
    model, x_exprs = _alignment_model(spec, centers, weights, formulation)
    solution = solve(model, backend=backend)
    if not solution.ok:
        raise RuntimeError(f"alignment MILP failed: {solution.status}")
    x = np.empty(spec.n_buffers)
    for b, grid in enumerate(spec.grids):
        # Evaluate the buffer's encoding (integer step or one-hot selection)
        # and snap to the nearest grid value to undo solver round-off.
        value = x_exprs[b].evaluate(solution.values)
        x[b] = grid[int(np.argmin(np.abs(grid - value)))]
    return float(solution["T"]), x, solution
