"""Aligned delay test optimization (§3.3, eqs. 6–14 of the paper).

Per test iteration, one clock period ``T`` and batch-local buffer values
``x`` are chosen to minimize the weighted distance of ``T`` from every
path's *shifted* range centre:

    minimize sum_ij k_ij * | T - ((u_ij + l_ij)/2 + x_i - x_j) |    (eq. 7)

subject to buffer ranges (eq. 14) and hold-safety bounds ``x_i - x_j >=
lambda_ij`` (eq. 21).  The weights are centre-sorted (the middle range gets
``k0``, decreasing by ``kd`` outward, ``k0 >> kd``) to break the
non-overlapping-ranges tie of Fig. 6e.

Three solvers are provided:

* :func:`solve_alignment` — the production solver: the optimal ``T`` for
  fixed ``x`` is a weighted median, and each discrete buffer is improved by
  exact coordinate minimization over its (hold-feasible) grid values.
  Fully vectorized across Monte-Carlo chips.
* :func:`solve_alignment_milp` — the paper's formulation solved exactly;
  ``formulation="paper"`` reproduces the big-M/0-1 encoding of eqs. 8–13
  verbatim, ``formulation="compact"`` the equivalent two-inequality
  absolute-value encoding.  Used for cross-checks and small flows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.opt.linexpr import LinExpr
from repro.opt.model import MatrixForm, Model, ObjectiveSense, VarType
from repro.opt.solve import Solution, solve, solve_matrix_form
from repro.opt.warmstart import WarmHint, WarmStartCache
from repro.opt.weighted_median import weighted_median_rows


@dataclass(frozen=True)
class BatchAlignment:
    """Static alignment structure of one test batch.

    ``m`` batch paths reference ``n_buf`` movable buffers by local index
    (-1 = that endpoint has no buffer or its buffer is outside the batch
    and held at its default).  ``base_shift`` carries the contribution of
    non-movable endpoints, so a path's tested quantity is
    ``centre + base_shift + x[src_buffer] - x[snk_buffer]``.
    """

    src_buffer: np.ndarray  # (m,) local buffer index or -1
    snk_buffer: np.ndarray  # (m,)
    base_shift: np.ndarray  # (m,)
    grids: tuple[np.ndarray, ...]  # candidate values per local buffer
    lower_bounds: np.ndarray  # (n_buf,) static bounds incl. hold vs fixed env
    upper_bounds: np.ndarray
    pair_lower: tuple[tuple[int, int, float], ...] = ()
    # each (a, b, lam): x[a] - x[b] >= lam between movable buffers
    buffer_names: tuple[str, ...] = ()  # FF names of the movable buffers

    @property
    def n_paths(self) -> int:
        return len(self.src_buffer)

    @property
    def n_buffers(self) -> int:
        return len(self.grids)

    def shift(self, x: np.ndarray) -> np.ndarray:
        """Per-path ``x_i - x_j`` (plus fixed environment) for settings ``x``.

        ``x`` is ``(n_buf,)`` or ``(n_chips, n_buf)``; result matches with a
        trailing path axis.
        """
        x = np.asarray(x, dtype=float)
        batched = x.ndim == 2
        xs = x if batched else x[None, :]
        shift = np.tile(self.base_shift, (xs.shape[0], 1))
        src_has = self.src_buffer >= 0
        snk_has = self.snk_buffer >= 0
        if src_has.any():
            shift[:, src_has] += xs[:, self.src_buffer[src_has]]
        if snk_has.any():
            shift[:, snk_has] -= xs[:, self.snk_buffer[snk_has]]
        return shift if batched else shift[0]

    def feasible_default(self) -> np.ndarray:
        """A hold-feasible starting point: per-buffer value closest to 0.

        The static bounds are assumed to admit such a point (guaranteed by
        the offline hold-bound computation, which validates the default
        settings).  Pairwise ``lambda`` constraints are *checked*, not
        assumed: a start that violates ``x[a] - x[b] >= lambda`` would send
        the coordinate-descent solver through hold-infeasible settings, so
        a violation raises instead of being silently returned.
        """
        out = np.empty(self.n_buffers)
        for b, grid in enumerate(self.grids):
            feasible = grid[
                (grid >= self.lower_bounds[b] - 1e-12)
                & (grid <= self.upper_bounds[b] + 1e-12)
            ]
            pool = feasible if feasible.size else grid
            out[b] = pool[np.argmin(np.abs(pool))]
        for a, b, lam in self.pair_lower:
            if out[a] - out[b] < lam - 1e-9:
                name_a = self.buffer_names[a] if self.buffer_names else str(a)
                name_b = self.buffer_names[b] if self.buffer_names else str(b)
                raise ValueError(
                    "feasible_default is hold-infeasible: "
                    f"x[{name_a}] - x[{name_b}] = {out[a] - out[b]:g} "
                    f"violates the pair constraint >= {lam:g}; the offline "
                    "hold bounds do not cover this batch's default settings "
                    "— pass explicit x_inits (e.g. from "
                    "hold_feasible_settings) instead"
                )
        return out


def build_batch_alignment(
    batch_paths: np.ndarray,
    path_source_idx: np.ndarray,
    path_sink_idx: np.ndarray,
    ff_names: tuple[str, ...],
    buffer_plan,
    hold_pairs: tuple[tuple[int, int], ...] = (),
    hold_lambdas: np.ndarray | None = None,
    default_settings: dict[str, float] | None = None,
) -> BatchAlignment:
    """Construct the alignment structure of one batch.

    Movable buffers are the tunable endpoints of the batch's paths; buffers
    elsewhere in the circuit stay parked at ``default_settings``, which
    turns hold constraints against them into static bounds on the movable
    ones.  ``hold_pairs``/``hold_lambdas`` are (source FF index, sink FF
    index) -> lambda from :mod:`repro.core.holdtime`.
    """
    batch_paths = np.asarray(batch_paths, dtype=np.intp)
    defaults = default_settings or {}

    movable: list[str] = []
    movable_index: dict[str, int] = {}
    for p in batch_paths.tolist():
        for ff_idx in (int(path_source_idx[p]), int(path_sink_idx[p])):
            name = ff_names[ff_idx]
            if buffer_plan.has_buffer(name) and name not in movable_index:
                movable_index[name] = len(movable)
                movable.append(name)

    src_buffer = np.array(
        [
            movable_index.get(ff_names[int(path_source_idx[p])], -1)
            for p in batch_paths.tolist()
        ],
        dtype=np.intp,
    )
    snk_buffer = np.array(
        [
            movable_index.get(ff_names[int(path_sink_idx[p])], -1)
            for p in batch_paths.tolist()
        ],
        dtype=np.intp,
    )

    grids = tuple(buffer_plan.buffer(name).values() for name in movable)
    lower = np.array([buffer_plan.buffer(name).lower for name in movable])
    upper = np.array([buffer_plan.buffer(name).upper for name in movable])

    pair_lower: list[tuple[int, int, float]] = []
    if hold_lambdas is not None:
        for (src_idx, snk_idx), lam in zip(hold_pairs, hold_lambdas):
            src_name, snk_name = ff_names[src_idx], ff_names[snk_idx]
            a = movable_index.get(src_name)
            b = movable_index.get(snk_name)
            lam = float(lam)
            if a is not None and b is not None:
                pair_lower.append((a, b, lam))
            elif a is not None:
                # x_a >= lam + fixed setting of the sink side
                fixed = defaults.get(snk_name, 0.0)
                lower[a] = max(lower[a], lam + fixed)
            elif b is not None:
                fixed = defaults.get(src_name, 0.0)
                upper[b] = min(upper[b], fixed - lam)

    return BatchAlignment(
        src_buffer=src_buffer,
        snk_buffer=snk_buffer,
        base_shift=np.zeros(len(batch_paths)),
        grids=grids,
        lower_bounds=lower,
        upper_bounds=upper,
        pair_lower=tuple(pair_lower),
        buffer_names=tuple(movable),
    )


def center_sorted_weights(
    centers: np.ndarray, k0: float = 1000.0, kd: float = 1.0
) -> np.ndarray:
    """Eq.-7 weights: middle of the sorted centres gets ``k0``; weight drops
    by ``kd`` per rank step away from the middle (``k0 >> kd``).

    Accepts ``(m,)`` or ``(n_chips, m)`` centres; NaN centres (converged or
    inactive paths) get weight 0.
    """
    centers = np.asarray(centers, dtype=float)
    single = centers.ndim == 1
    c = centers[None, :] if single else centers
    n_rows, m = c.shape

    valid = ~np.isnan(c)
    # Rank valid entries per row by centre value; NaNs sort to the end.
    order = np.argsort(np.where(valid, c, np.inf), axis=1, kind="stable")
    ranks = np.empty_like(order)
    rows = np.arange(n_rows)[:, None]
    ranks[rows, order] = np.arange(m)[None, :]

    n_valid = valid.sum(axis=1)
    middle = (n_valid - 1) / 2.0
    weights = k0 - kd * np.abs(ranks - middle[:, None])
    weights = np.where(valid, np.maximum(weights, kd), 0.0)
    return weights[0] if single else weights


def solve_alignment(
    spec: BatchAlignment,
    centers: np.ndarray,
    weights: np.ndarray,
    x_init: np.ndarray,
    sweeps: int = 2,
) -> tuple[np.ndarray, np.ndarray]:
    """Weighted-median / coordinate-descent alignment solver.

    Parameters are batched: ``centers``/``weights`` are ``(n_chips, m)``
    (NaN centre = inactive path), ``x_init`` is ``(n_chips, n_buf)`` and
    must satisfy the static bounds and pairwise constraints.

    Returns ``(T, x)`` with ``T`` shape ``(n_chips,)``.  Deterministic:
    grid-candidate ties resolve to the lowest index.
    """
    centers = np.atleast_2d(np.asarray(centers, dtype=float))
    weights = np.atleast_2d(np.asarray(weights, dtype=float))
    x = np.array(np.atleast_2d(np.asarray(x_init, dtype=float)), copy=True)
    n_chips, m = centers.shape
    if weights.shape != centers.shape:
        raise ValueError("weights must match centers in shape")
    if x.shape != (n_chips, spec.n_buffers):
        raise ValueError("x_init must be (n_chips, n_buffers)")

    masked_weights = np.where(np.isnan(centers), 0.0, weights)

    period = weighted_median_rows(centers + spec.shift(x), masked_weights)
    for _ in range(sweeps):
        for b in range(spec.n_buffers):
            period, _ = _improve_buffer(
                spec, b, centers, masked_weights, x, period
            )
        period = weighted_median_rows(centers + spec.shift(x), masked_weights)
    return period, x


_CHUNK = 1024  # chips per block in the candidate sweep (memory bound)


def _improve_buffer(
    spec: BatchAlignment,
    b: int,
    centers: np.ndarray,
    weights: np.ndarray,
    x: np.ndarray,
    period: np.ndarray,
) -> tuple[np.ndarray, bool]:
    """Exact coordinate minimization of buffer ``b`` over its grid.

    For every candidate grid value the clock period is re-optimized (the
    optimal ``T`` for fixed buffers is the weighted median of the shifted
    centres), so each step minimizes the *joint* objective over
    ``(T, x_b)`` — plain coordinate descent with ``T`` frozen stalls on the
    symmetric in/out-pair case where moving ``x_b`` alone cannot help.
    """
    affected_src = spec.src_buffer == b
    affected_snk = spec.snk_buffer == b
    if not affected_src.any() and not affected_snk.any():
        return period, False
    grid = spec.grids[b]
    n_chips, m = centers.shape
    n_cand = len(grid)

    # Per-chip feasible interval from static bounds and pair constraints.
    lb = np.full(n_chips, spec.lower_bounds[b])
    ub = np.full(n_chips, spec.upper_bounds[b])
    for a, other, lam in spec.pair_lower:
        if a == b and other != b:
            lb = np.maximum(lb, lam + x[:, other])  # x_b >= lam + x_other
        elif other == b and a != b:
            ub = np.minimum(ub, x[:, a] - lam)  # x_b <= x_a - lam
    feasible = (grid[None, :] >= lb[:, None] - 1e-12) & (
        grid[None, :] <= ub[:, None] + 1e-12
    )

    # Shift with buffer b removed, and the +-1 coupling of each path to b.
    x_zero = x.copy()
    x_zero[:, b] = 0.0
    partial = centers + spec.shift(x_zero)
    sign = affected_src.astype(float) - affected_snk.astype(float)

    best_k = np.zeros(n_chips, dtype=np.intp)
    best_period = period.copy()
    for start in range(0, n_chips, _CHUNK):
        stop = min(start + _CHUNK, n_chips)
        block = slice(start, stop)
        rows = stop - start
        shifted = (
            partial[block, None, :] + sign[None, None, :] * grid[None, :, None]
        )  # (rows, n_cand, m)
        w_block = np.broadcast_to(
            weights[block, None, :], (rows, n_cand, m)
        ).reshape(-1, m)
        medians = weighted_median_rows(
            shifted.reshape(-1, m), w_block
        ).reshape(rows, n_cand)
        cost = np.nansum(
            np.where(
                np.isnan(shifted), 0.0,
                weights[block, None, :] * np.abs(medians[:, :, None] - shifted),
            ),
            axis=2,
        )
        cost = np.where(feasible[block], cost, np.inf)
        k = np.argmin(cost, axis=1)
        best_k[block] = k
        best_period[block] = medians[np.arange(rows), k]

    # If numerical tightening left a chip with no feasible candidate, keep
    # its current (feasible) value rather than jumping to an invalid one.
    all_infeasible = ~feasible.any(axis=1)
    if all_infeasible.any():
        current_k = np.argmin(np.abs(grid[None, :] - x[:, b : b + 1]), axis=1)
        best_k[all_infeasible] = current_k[all_infeasible]
        best_period[all_infeasible] = period[all_infeasible]
    x[:, b] = grid[best_k]
    return best_period, True


# ----------------------------------------------------------------------------
# Exact MILP formulations (scalar)
# ----------------------------------------------------------------------------


def _is_uniform_grid(grid: np.ndarray) -> bool:
    """Whether all grid steps are (numerically) equal."""
    if len(grid) < 3:
        return True
    steps = np.diff(np.asarray(grid, dtype=float))
    return bool(np.allclose(steps, steps[0], rtol=1e-9, atol=1e-12))


def _alignment_model(
    spec: BatchAlignment,
    centers: np.ndarray,
    weights: np.ndarray,
    formulation: str,
) -> tuple[Model, list[LinExpr]]:
    centers = np.asarray(centers, dtype=float)
    weights = np.asarray(weights, dtype=float)
    model = Model("alignment")

    x_exprs: list[LinExpr] = []
    for b, grid in enumerate(spec.grids):
        if _is_uniform_grid(grid):
            # Uniform lattice: one integer step count is exact and keeps the
            # branch & bound tree small.
            step = grid[1] - grid[0] if len(grid) > 1 else 1.0
            k = model.add_var(f"k{b}", 0, len(grid) - 1, VarType.INTEGER)
            x_exprs.append(k * float(step) + float(grid[0]))
        else:
            # Non-uniform grid: affine step encoding would silently round to
            # off-grid values, so select the value with one-hot binaries.
            selectors = [
                model.add_binary(f"z{b}_{j}") for j in range(len(grid))
            ]
            model.add_constraint(LinExpr.sum(selectors).equals(1))
            x_exprs.append(
                LinExpr.sum(
                    float(v) * z for v, z in zip(grid.tolist(), selectors)
                )
            )

    # Static bounds (hold vs fixed environment) and pair constraints.
    for b in range(spec.n_buffers):
        model.add_constraint(x_exprs[b] >= float(spec.lower_bounds[b]))
        model.add_constraint(x_exprs[b] <= float(spec.upper_bounds[b]))
    for a, b, lam in spec.pair_lower:
        model.add_constraint(x_exprs[a] - x_exprs[b] >= float(lam))

    finite = [p for p in range(spec.n_paths) if not np.isnan(centers[p])]
    span = max(
        (abs(float(centers[p])) for p in finite), default=1.0
    ) + sum(float(np.max(np.abs(g))) for g in spec.grids) + 1.0
    period = model.add_var("T", -span, span)

    big_m = 4.0 * span
    objective = LinExpr()
    for p in finite:
        eta = model.add_var(f"eta{p}", 0.0)
        gap: LinExpr = period - float(centers[p]) - float(spec.base_shift[p])
        if spec.src_buffer[p] >= 0:
            gap = gap - x_exprs[spec.src_buffer[p]]
        if spec.snk_buffer[p] >= 0:
            gap = gap + x_exprs[spec.snk_buffer[p]]
        if formulation == "compact":
            model.add_constraint(eta >= gap)
            model.add_constraint(eta >= -1.0 * gap)
        elif formulation == "paper":
            zp = model.add_binary(f"zp{p}")
            zn = model.add_binary(f"zn{p}")
            model.add_constraint(gap <= big_m * zp)  # eq. 8
            model.add_constraint(gap - eta <= big_m * (1 - zp))  # eq. 9
            model.add_constraint(-1.0 * gap + eta <= big_m * (1 - zp))  # eq. 10
            model.add_constraint(-1.0 * gap <= big_m * zn)  # eq. 11
            model.add_constraint(-1.0 * gap - eta <= big_m * (1 - zn))  # eq. 12
            model.add_constraint(gap + eta <= big_m * (1 - zn))  # eq. 13
            model.add_constraint(zp + zn >= 1)
        else:
            raise ValueError(f"unknown formulation {formulation!r}")
        objective = objective + float(weights[p]) * eta
    model.set_objective(objective, ObjectiveSense.MINIMIZE)
    return model, x_exprs


def solve_alignment_milp(
    spec: BatchAlignment,
    centers: np.ndarray,
    weights: np.ndarray,
    formulation: str = "compact",
    backend: str = "scipy",
) -> tuple[float, np.ndarray, Solution]:
    """Solve eqs. 7–14 exactly; returns ``(T, x, solution)``.

    Raises ``RuntimeError`` when the solver fails (e.g. inconsistent hold
    bounds), since alignment infeasibility indicates a configuration bug.
    """
    model, x_exprs = _alignment_model(spec, centers, weights, formulation)
    solution = solve(model, backend=backend)
    if not solution.ok:
        raise RuntimeError(f"alignment MILP failed: {solution.status}")
    x = np.empty(spec.n_buffers)
    for b, grid in enumerate(spec.grids):
        # Evaluate the buffer's encoding (integer step or one-hot selection)
        # and snap to the nearest grid value to undo solver round-off.
        value = x_exprs[b].evaluate(solution.values)
        x[b] = grid[int(np.argmin(np.abs(grid - value)))]
    return float(solution["T"]), x, solution


class CompiledAlignmentModel:
    """Eqs. 7–14 precompiled: build the matrix encoding once, re-solve often.

    :func:`solve_alignment_milp` re-encodes the whole MILP through
    ``Model``/``LinExpr`` objects on every call even though the *structure*
    — variable layout, constraint sparsity, one-hot groups, which entries
    carry the big M — depends only on the :class:`BatchAlignment`, while
    ``centers``/``weights`` only move coefficient *values* (objective
    entries, right-hand sides, the period bounds and the big-M magnitude).
    This class does the PR-5 treatment for that hot path: the
    :class:`~repro.opt.model.MatrixForm` arrays are assembled once per
    ``(spec, formulation)`` and each :meth:`solve` rewrites just the
    recorded value slots — no per-call object churn.

    With all-finite ``centers`` the compiled arrays are *identical* to
    ``_alignment_model(...).to_matrix_form()`` (pinned by tests), so any
    backend produces the same answer for both encodings.  Unlike the
    dynamic model, the compiled layout always carries **all** batch paths:
    a NaN centre gets weight 0 and centre 0, which leaves the ``(T, x)``
    optimum and the objective unchanged (its ``eta`` is elastic and free),
    but keeps the matrix shape — and therefore the warm-start structure
    fingerprint — stable across calls where different paths drop out.
    """

    def __init__(self, spec: BatchAlignment, formulation: str = "compact"):
        if formulation not in ("compact", "paper"):
            raise ValueError(f"unknown formulation {formulation!r}")
        self.spec = spec
        self.formulation = formulation
        paper = formulation == "paper"
        m_paths = spec.n_paths

        # -- variable layout (must match _alignment_model exactly) ----------
        names: list[str] = []
        lower: list[float] = []
        upper: list[float] = []
        integer: list[bool] = []
        self._buffer_encoding: list[tuple[str, int, np.ndarray]] = []
        # per buffer: ("step", k_col, grid) or ("onehot", first_col, grid)
        for b, grid in enumerate(spec.grids):
            grid = np.asarray(grid, dtype=float)
            if _is_uniform_grid(grid):
                self._buffer_encoding.append(("step", len(names), grid))
                names.append(f"k{b}")
                lower.append(0.0)
                upper.append(float(len(grid) - 1))
                integer.append(True)
            else:
                self._buffer_encoding.append(("onehot", len(names), grid))
                for j in range(len(grid)):
                    names.append(f"z{b}_{j}")
                    lower.append(0.0)
                    upper.append(1.0)
                    integer.append(True)
        self._t_col = len(names)
        names.append("T")
        lower.append(0.0)  # per-call: [-span, span]
        upper.append(0.0)
        integer.append(False)
        self._eta_cols = np.empty(m_paths, dtype=np.intp)
        for p in range(m_paths):
            self._eta_cols[p] = len(names)
            names.append(f"eta{p}")
            lower.append(0.0)
            upper.append(np.inf)
            integer.append(False)
            if paper:
                for tag in (f"zp{p}", f"zn{p}"):
                    names.append(tag)
                    lower.append(0.0)
                    upper.append(1.0)
                    integer.append(True)
        n_vars = len(names)

        # x_expr of buffer b as (columns, coefficients, constant).
        def buffer_terms(b: int) -> tuple[np.ndarray, np.ndarray, float]:
            kind, col, grid = self._buffer_encoding[b]
            if kind == "step":
                step = grid[1] - grid[0] if len(grid) > 1 else 1.0
                return np.array([col]), np.array([float(step)]), float(grid[0])
            cols = np.arange(col, col + len(grid))
            return cols, grid.copy(), 0.0

        # -- equality rows: one-hot selectors sum to 1 ----------------------
        eq_rows: list[np.ndarray] = []
        for b in range(spec.n_buffers):
            kind, col, grid = self._buffer_encoding[b]
            if kind == "onehot":
                row = np.zeros(n_vars)
                row[col : col + len(grid)] = 1.0
                eq_rows.append(row)
        a_eq = np.array(eq_rows) if eq_rows else np.zeros((0, n_vars))
        b_eq = np.ones(len(eq_rows))

        # -- inequality rows ------------------------------------------------
        ub_rows: list[np.ndarray] = []
        ub_rhs: list[float] = []  # value with centre = 0 and M = 0
        center_path: list[int] = []  # path contributing ±centre, or -1
        center_sign: list[float] = []
        m_rhs_flag: list[float] = []  # 1.0 where the rhs carries +M
        m_entries: list[tuple[int, int, float]] = []  # (row, col, ±1) ⋅ M

        def push(row: np.ndarray, rhs: float, path: int = -1, sign: float = 0.0,
                 m_flag: float = 0.0) -> int:
            ub_rows.append(row)
            ub_rhs.append(rhs)
            center_path.append(path)
            center_sign.append(sign)
            m_rhs_flag.append(m_flag)
            return len(ub_rows) - 1

        for b in range(spec.n_buffers):
            cols, coeffs, const = buffer_terms(b)
            row = np.zeros(n_vars)
            row[cols] = -coeffs  # x >= lb, negated to <=
            push(row, const - float(spec.lower_bounds[b]))
            row = np.zeros(n_vars)
            row[cols] = coeffs  # x <= ub
            push(row, float(spec.upper_bounds[b]) - const)
        for a, b, lam in spec.pair_lower:
            cols_a, coeffs_a, const_a = buffer_terms(a)
            cols_b, coeffs_b, const_b = buffer_terms(b)
            row = np.zeros(n_vars)
            row[cols_a] -= coeffs_a  # x_a - x_b >= lam, negated
            row[cols_b] += coeffs_b
            push(row, const_a - const_b - float(lam))

        # Per-path constants of the gap expression, kept separate so `load`
        # can fold the centre in with the exact same float-operation order
        # as the dynamic LinExpr build (bit-identical right-hand sides).
        self._path_base = np.asarray(spec.base_shift, dtype=float).copy()
        self._path_src_const = np.zeros(m_paths)
        self._path_snk_const = np.zeros(m_paths)
        for p in range(m_paths):
            gap = np.zeros(n_vars)  # variable part of T - c_p - base - x_src + x_snk
            gap[self._t_col] = 1.0
            if spec.src_buffer[p] >= 0:
                cols, coeffs, const = buffer_terms(int(spec.src_buffer[p]))
                gap[cols] -= coeffs
                self._path_src_const[p] = const
            if spec.snk_buffer[p] >= 0:
                cols, coeffs, const = buffer_terms(int(spec.snk_buffer[p]))
                gap[cols] += coeffs
                self._path_snk_const[p] = const
            eta = int(self._eta_cols[p])
            if not paper:
                row = gap.copy()  # eta >= gap, negated
                row[eta] = -1.0
                push(row, 0.0, path=p, sign=1.0)
                row = -gap  # eta >= -gap, negated
                row[eta] = -1.0
                push(row, 0.0, path=p, sign=-1.0)
            else:
                zp, zn = eta + 1, eta + 2
                row = gap.copy()  # eq. 8: gap <= M zp
                r = push(row, 0.0, path=p, sign=1.0)
                m_entries.append((r, zp, -1.0))
                row = gap.copy()  # eq. 9: gap - eta <= M (1 - zp)
                row[eta] = -1.0
                r = push(row, 0.0, path=p, sign=1.0, m_flag=1.0)
                m_entries.append((r, zp, 1.0))
                row = -gap  # eq. 10: -gap + eta <= M (1 - zp)
                row[eta] = 1.0
                r = push(row, 0.0, path=p, sign=-1.0, m_flag=1.0)
                m_entries.append((r, zp, 1.0))
                row = -gap  # eq. 11: -gap <= M zn
                r = push(row, 0.0, path=p, sign=-1.0)
                m_entries.append((r, zn, -1.0))
                row = -gap  # eq. 12: -gap - eta <= M (1 - zn)
                row[eta] = -1.0
                r = push(row, 0.0, path=p, sign=-1.0, m_flag=1.0)
                m_entries.append((r, zn, 1.0))
                row = gap.copy()  # eq. 13: gap + eta <= M (1 - zn)
                row[eta] = 1.0
                r = push(row, 0.0, path=p, sign=1.0, m_flag=1.0)
                m_entries.append((r, zn, 1.0))
                row = np.zeros(n_vars)  # zp + zn >= 1, negated
                row[zp] = -1.0
                row[zn] = -1.0
                push(row, -1.0)

        self._rhs_static = np.array(ub_rhs)
        self._center_path = np.array(center_path, dtype=np.intp)
        self._center_sign = np.array(center_sign)
        self._m_rhs_flag = np.array(m_rhs_flag)
        if m_entries:
            rows, cols, signs = zip(*m_entries)
            self._m_rows = np.array(rows, dtype=np.intp)
            self._m_cols = np.array(cols, dtype=np.intp)
            self._m_signs = np.array(signs)
        else:
            self._m_rows = np.empty(0, dtype=np.intp)
            self._m_cols = np.empty(0, dtype=np.intp)
            self._m_signs = np.empty(0)
        self._grid_span = sum(float(np.max(np.abs(g))) for g in spec.grids)

        self.form = MatrixForm(
            variable_names=names,
            c=np.zeros(n_vars),
            objective_constant=0.0,
            flip_objective=False,
            a_ub=np.array(ub_rows) if ub_rows else np.zeros((0, n_vars)),
            b_ub=self._rhs_static.copy(),
            a_eq=a_eq,
            b_eq=b_eq,
            lower=np.array(lower),
            upper=np.array(upper),
            integer=np.array(integer),
        )

    def load(self, centers: np.ndarray, weights: np.ndarray) -> MatrixForm:
        """Write one call's coefficient values into the standing arrays.

        Only *values* move: objective entries (weights), the centre- and
        big-M-dependent right-hand sides, the period bounds and the big-M
        matrix slots.  Sparsity, shapes and integrality are untouched, so
        the form's structure fingerprint — the warm-start cache key — is
        invariant across calls.
        """
        centers = np.asarray(centers, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if centers.shape != (self.spec.n_paths,) or weights.shape != (self.spec.n_paths,):
            raise ValueError("centers/weights must have one entry per batch path")
        finite = np.isfinite(centers)
        centers_eff = np.where(finite, centers, 0.0)
        weights_eff = np.where(finite, weights, 0.0)
        span = (
            float(np.max(np.abs(centers_eff[finite]))) if finite.any() else 1.0
        ) + self._grid_span + 1.0
        big_m = 4.0 * span
        self._loaded = (centers_eff, weights_eff, span)

        form = self.form
        form.c[self._eta_cols] = weights_eff
        form.lower[self._t_col] = -span
        form.upper[self._t_col] = span
        # Gap constants folded in the dynamic model's float-operation order,
        # so the right-hand sides are bit-identical to the LinExpr build:
        # gc_p = ((-centre - base) - c_src) + c_snk, row rhs = -(±gc - M).
        gap_const = ((-centers_eff) - self._path_base) - self._path_src_const
        gap_const = gap_const + self._path_snk_const
        rhs = self._rhs_static.copy()
        has_center = self._center_path >= 0
        rhs[has_center] = -(
            self._center_sign[has_center] * gap_const[self._center_path[has_center]]
            - big_m * self._m_rhs_flag[has_center]
        )
        form.b_ub[:] = rhs
        if self._m_rows.size:
            form.a_ub[self._m_rows, self._m_cols] = self._m_signs * big_m
        return form

    def _repair_incumbent(self, x_prev: np.ndarray) -> np.ndarray | None:
        """Adapt a previous variant's solution to the current coefficients.

        Across sweep variants only ``centers``/``weights`` move, so a stale
        incumbent fails the solver's feasibility re-validation in exactly
        one place: its elastic columns (``eta``, and ``zp``/``zn`` in the
        paper formulation) no longer cover the new gaps.  The integer
        buffer assignment, however, still satisfies every static bound and
        pairing row — so keep it, recompute the inner optimum ``T`` (the
        weighted median of the per-path alignment targets, eq. 7 with
        ``x`` fixed) and rebuild the elastic columns from the new gaps.
        The result is feasible by construction and optimal *given that
        buffer assignment*, which is what makes it a strong pruning bound
        for the branch & bound.  Returns ``None`` when ``x_prev`` has the
        wrong shape for this model.
        """
        n_vars = len(self.form.variable_names)
        x_prev = np.asarray(x_prev, dtype=float)
        if x_prev.shape != (n_vars,):
            return None
        centers_eff, weights_eff, span = self._loaded
        repaired = np.zeros(n_vars)
        buffer_values = np.empty(self.spec.n_buffers)
        for b, (kind, col, grid) in enumerate(self._buffer_encoding):
            if kind == "step":
                step = grid[1] - grid[0] if len(grid) > 1 else 1.0
                k = int(np.clip(round(x_prev[col]), 0, len(grid) - 1))
                repaired[col] = float(k)
                buffer_values[b] = grid[0] + step * k
            else:
                j = int(np.argmax(x_prev[col : col + len(grid)]))
                repaired[col + j] = 1.0
                buffer_values[b] = grid[j]
        # Per-path target: T aligned to centre + base + x_src - x_snk.
        target = centers_eff + self._path_base
        src, snk = self.spec.src_buffer, self.spec.snk_buffer
        has_src, has_snk = src >= 0, snk >= 0
        target[has_src] += buffer_values[src[has_src]]
        target[has_snk] -= buffer_values[snk[has_snk]]
        if np.any(weights_eff > 0):
            t_opt = float(
                weighted_median_rows(target[None, :], weights_eff[None, :])[0]
            )
        else:
            t_opt = 0.0
        t_opt = float(np.clip(t_opt, -span, span))
        repaired[self._t_col] = t_opt
        gaps = t_opt - target
        repaired[self._eta_cols] = np.abs(gaps)
        if self.formulation == "paper":
            repaired[self._eta_cols + 1] = (gaps >= 0).astype(float)  # zp
            repaired[self._eta_cols + 2] = (gaps <= 0).astype(float)  # zn
        return repaired

    def solve(
        self,
        centers: np.ndarray,
        weights: np.ndarray,
        backend: str = "auto",
        warm: WarmStartCache | None = None,
    ) -> tuple[float, np.ndarray, Solution]:
        """Solve eqs. 7–14 for one ``(centers, weights)``; ``(T, x, solution)``.

        Matches :func:`solve_alignment_milp` (same optimum, same grid
        snapping) while reusing the precompiled arrays; an accompanying
        ``warm`` cache carries the basis and incumbent across calls.
        Raises ``RuntimeError`` when the solver fails, since alignment
        infeasibility indicates a configuration bug; a ``FEASIBLE``
        (node-budget) incumbent is accepted as usable.
        """
        form = self.load(centers, weights)
        if warm is not None and backend in ("auto", "pure"):
            # A cached incumbent from a previous (centers, weights) variant
            # is stale — its elastic columns cover the *old* gaps, so the
            # solver's re-validation would rightly drop it.  Repair it for
            # the new coefficients before the solver looks it up.
            fingerprint = form.structure_fingerprint()
            hint = warm.peek(fingerprint)
            if hint is not None and hint.x is not None:
                repaired = self._repair_incumbent(hint.x)
                if repaired is not None:
                    objective = float(form.c @ repaired)
                    warm.put(
                        fingerprint,
                        WarmHint(hint.basis, x=repaired, objective=objective),
                    )
        solution = solve_matrix_form(form, backend, warm=warm)
        if not solution.usable:
            raise RuntimeError(f"alignment MILP failed: {solution.status}")
        x = np.empty(self.spec.n_buffers)
        for b, (kind, col, grid) in enumerate(self._buffer_encoding):
            if kind == "step":
                step = grid[1] - grid[0] if len(grid) > 1 else 1.0
                value = grid[0] + step * solution.values[f"k{b}"]
            else:
                value = float(
                    np.dot(
                        grid,
                        [solution.values[f"z{b}_{j}"] for j in range(len(grid))],
                    )
                )
            x[b] = grid[int(np.argmin(np.abs(grid - value)))]
        return float(solution["T"]), x, solution
