"""EffiTest core: the paper's contribution.

Statistical delay prediction (§3.1), path grouping and selection
(Procedure 1), test multiplexing (§3.2), aligned delay test (§3.3,
Procedure 2), buffer configuration (§3.4), hold-time tuning bounds (§3.5),
yield evaluation and the end-to-end framework (Fig. 4).
"""

from repro.core.calibration import calibrate_epsilon
from repro.core.alignment import (
    BatchAlignment,
    build_batch_alignment,
    center_sorted_weights,
    solve_alignment,
    solve_alignment_milp,
)
from repro.core.configuration import (
    ConfigGraph,
    ConfigStructure,
    ConfigurationResult,
    build_config_structure,
    configure_chip_milp,
    configure_chips,
    ideal_feasibility,
)
from repro.core.framework import (
    EffiTest,
    EffiTestConfig,
    PopulationRunResult,
    Preparation,
)
from repro.core.grouping import (
    GroupingResult,
    GroupingWorkspace,
    PathGroup,
    group_and_select,
    group_and_select_reference,
    significant_components,
)
from repro.core.holdtime import (
    CompiledHoldBoundModel,
    HoldBounds,
    compute_hold_bounds,
    hold_feasible_settings,
    solve_hold_bounds_exact,
    solve_hold_bounds_milp,
)
from repro.core.multiplexing import (
    Batch,
    MultiplexPlan,
    fill_idle_slots,
    form_batches,
    form_batches_ilp,
    plan_multiplexing,
)
from repro.core.population import (
    PopulationTestResult,
    concat_population_test_results,
    run_batch_population,
    test_population,
)
from repro.core.prediction import (
    ConditionalPredictor,
    build_predictor,
    conditional_stds_if_tested,
)
from repro.core.reduction import (
    ARTIFACT_MODES,
    ArtifactsNotRetained,
    DenseArtifacts,
    Moments,
    RunReducer,
    RunSummary,
    merge_run_summaries,
    summarize_shard,
)
from repro.core.testflow import ChipTestResult, run_batch, test_chip
from repro.core.yields import (
    ChipSource,
    CircuitPopulation,
    YieldComparison,
    chip_source,
    configured_pass,
    ideal_yield,
    no_buffer_yield,
    operating_periods,
    path_shifts,
    sample_circuit,
)

__all__ = [
    "ARTIFACT_MODES",
    "ArtifactsNotRetained",
    "Batch",
    "BatchAlignment",
    "ChipSource",
    "ChipTestResult",
    "CompiledHoldBoundModel",
    "ConditionalPredictor",
    "ConfigGraph",
    "ConfigStructure",
    "ConfigurationResult",
    "CircuitPopulation",
    "DenseArtifacts",
    "EffiTest",
    "EffiTestConfig",
    "GroupingResult",
    "GroupingWorkspace",
    "HoldBounds",
    "Moments",
    "MultiplexPlan",
    "PathGroup",
    "PopulationRunResult",
    "PopulationTestResult",
    "Preparation",
    "RunReducer",
    "RunSummary",
    "YieldComparison",
    "build_batch_alignment",
    "build_config_structure",
    "build_predictor",
    "calibrate_epsilon",
    "center_sorted_weights",
    "chip_source",
    "compute_hold_bounds",
    "concat_population_test_results",
    "conditional_stds_if_tested",
    "configure_chip_milp",
    "configure_chips",
    "configured_pass",
    "fill_idle_slots",
    "form_batches",
    "form_batches_ilp",
    "group_and_select",
    "group_and_select_reference",
    "hold_feasible_settings",
    "ideal_feasibility",
    "ideal_yield",
    "merge_run_summaries",
    "no_buffer_yield",
    "operating_periods",
    "path_shifts",
    "plan_multiplexing",
    "run_batch",
    "run_batch_population",
    "sample_circuit",
    "significant_components",
    "solve_alignment",
    "solve_alignment_milp",
    "solve_hold_bounds_exact",
    "solve_hold_bounds_milp",
    "summarize_shard",
    "test_chip",
    "test_population",
]
