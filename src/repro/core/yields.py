"""Yield evaluation (the paper's Table 2 / Fig. 7 quantities).

Three yields per circuit and clock period ``Td``:

* **no-buffer yield** — all paths meet ``Td`` with zero skew; the paper
  calibrates its operating points against this (T1 at 50 %, T2 at the
  +1-sigma point 84.13 %),
* **ideal yield** ``y_i`` — a configuration exists when delays are known
  exactly,
* **EffiTest yield** ``y_t`` — the chip passes after being configured from
  *tested + predicted* delay ranges; ``y_r = y_i - y_t`` is the cost of
  measurement inaccuracy.

Pass/fail of a configured chip checks every required path's setup (eq. 1
with the configured ``x``), every untunable background path, and every true
short-path hold requirement (eq. 2) — the "separate pass/fail test after
the buffers are configured" the paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.circuit.generator import Circuit
from repro.circuit.paths import PathSet
from repro.core.configuration import (
    ConfigStructure,
    ConfigurationResult,
    ideal_feasibility,
)
from repro.utils.rng import RandomState, canonical_seed
from repro.variation.sampling import sample_correlated_shard

_EPS = 1e-7


@dataclass(frozen=True)
class CircuitPopulation:
    """One shared-process Monte-Carlo realization of a circuit.

    ``required[c, p]`` — true max delays of the required paths;
    ``background[c, q]`` — true max delays of untunable context paths;
    ``hold_requirements[c, s]`` — true ``~d = h - d_min`` per short path.
    """

    required: np.ndarray
    background: np.ndarray
    hold_requirements: np.ndarray

    @property
    def n_chips(self) -> int:
        return self.required.shape[0]

    def subset(self, chip_indices) -> "CircuitPopulation":
        idx = np.asarray(chip_indices, dtype=np.intp)
        return CircuitPopulation(
            self.required[idx], self.background[idx], self.hold_requirements[idx]
        )


@dataclass(frozen=True)
class ChipSource:
    """A chip population as a *recipe*, not an array.

    The population is fully described by (circuit, ``seed``, ``n_chips``):
    any chip shard ``[start, stop)`` materializes deterministically and
    independently of every other shard via the counter-based block streams
    of :func:`repro.variation.sampling.sample_correlated_shard`.  The same
    chips come out whether the population is realized in one block, shard
    by shard, or in another process — which is what lets pool workers
    materialize their own shards from a lightweight spec instead of
    receiving pickled dense delay matrices, and keeps the parent process at
    O(shard) instead of O(n_chips) peak memory.

    ``seed`` must be a plain int (see
    :func:`repro.utils.rng.canonical_seed`); :func:`chip_source` normalizes
    any seed-like input.
    """

    circuit: Circuit
    n_chips: int
    seed: int

    def __post_init__(self) -> None:
        if self.n_chips <= 0:
            raise ValueError(f"n_chips must be positive, got {self.n_chips}")
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ValueError(
                "ChipSource.seed must be a non-negative int (use "
                f"repro.utils.rng.canonical_seed), got {self.seed!r}"
            )

    @property
    def models(self) -> list:
        """The correlated delay models, in stream order."""
        return [
            self.circuit.paths.model,
            self.circuit.background.model,
            self.circuit.short_paths.model,
        ]

    def describe(self) -> tuple[str, int, int]:
        """Content identity: (circuit fingerprint, n_chips, seed)."""
        from repro.circuit.fingerprint import fingerprint_circuit

        return (fingerprint_circuit(self.circuit), self.n_chips, self.seed)

    def _range(self, start: int, stop: int | None) -> tuple[int, int]:
        stop = self.n_chips if stop is None else stop
        if not 0 <= start <= stop <= self.n_chips:
            raise ValueError(
                f"chip range [{start}, {stop}) outside [0, {self.n_chips})"
            )
        return start, stop

    def realize(self, start: int = 0, stop: int | None = None) -> CircuitPopulation:
        """Materialize chips ``[start, stop)`` as a dense population."""
        start, stop = self._range(start, stop)
        required, background, hold = sample_correlated_shard(
            self.models, self.seed, start, stop
        )
        return CircuitPopulation(required, background, hold)

    def required_shard(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Materialize only the required-path delays of ``[start, stop)``.

        Same bits as ``realize(start, stop).required`` without evaluating
        the background/hold models — the test stages only read this matrix.
        """
        start, stop = self._range(start, stop)
        return sample_correlated_shard(
            self.models, self.seed, start, stop, only=[0]
        )[0]

    def iter_shards(
        self, shard_size: int | None = None
    ) -> Iterator[tuple[int, int, CircuitPopulation]]:
        """Stream the population as ``(start, stop, shard)`` triples."""
        shard = self.n_chips if shard_size is None else shard_size
        if shard < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        for start in range(0, self.n_chips, shard):
            stop = min(start + shard, self.n_chips)
            yield start, stop, self.realize(start, stop)


def chip_source(
    circuit: Circuit, n_chips: int, seed: RandomState = None
) -> ChipSource:
    """Describe (without sampling) a population of ``n_chips`` chips."""
    return ChipSource(circuit, n_chips, canonical_seed(seed))


def sample_circuit(
    circuit: Circuit, n_chips: int, seed: RandomState = None
) -> CircuitPopulation:
    """Draw ``n_chips`` manufactured instances of ``circuit``.

    The eager path: one dense realization of the whole
    :class:`ChipSource`.  Slicing this result at any shard boundary is
    bit-identical to materializing the shards individually.
    """
    return chip_source(circuit, n_chips, seed).realize()


def operating_periods(
    population: CircuitPopulation,
    quantiles: tuple[float, ...] = (0.5, 0.8413),
) -> tuple[float, ...]:
    """Clock periods at which the *no-buffer* yield equals each quantile.

    The paper's T1/T2 are exactly the 50 % and 84.13 % points of the
    no-buffer maximum-delay distribution.
    """
    worst = np.maximum(
        population.required.max(axis=1, initial=-np.inf),
        population.background.max(axis=1, initial=-np.inf),
    )
    return tuple(float(np.quantile(worst, q)) for q in quantiles)


def no_buffer_yield(population: CircuitPopulation, period: float) -> float:
    """Fraction of chips meeting ``period`` with all skews at zero."""
    setup_ok = (population.required <= period + _EPS).all(axis=1) & (
        population.background <= period + _EPS
    ).all(axis=1)
    hold_ok = (population.hold_requirements <= _EPS).all(axis=1)
    return float((setup_ok & hold_ok).mean())


def path_shifts(
    paths: PathSet,
    buffer_names: tuple[str, ...],
    settings: np.ndarray,
) -> np.ndarray:
    """Per-path ``x_source - x_sink`` for per-chip buffer ``settings``.

    ``settings`` is ``(n_chips, n_buffers)`` in ``buffer_names`` order;
    flip-flops without buffers contribute 0.
    """
    local = {name: b for b, name in enumerate(buffer_names)}
    src_col = np.array(
        [local.get(paths.ff_names[i], -1) for i in paths.source_idx], dtype=np.intp
    )
    snk_col = np.array(
        [local.get(paths.ff_names[i], -1) for i in paths.sink_idx], dtype=np.intp
    )
    n_chips = settings.shape[0]
    shifts = np.zeros((n_chips, paths.n_paths))
    has_src = src_col >= 0
    has_snk = snk_col >= 0
    if has_src.any():
        shifts[:, has_src] += settings[:, src_col[has_src]]
    if has_snk.any():
        shifts[:, has_snk] -= settings[:, snk_col[has_snk]]
    return shifts


def configured_pass(
    circuit: Circuit,
    population: CircuitPopulation,
    result: ConfigurationResult,
    period: float,
) -> np.ndarray:
    """Final pass/fail test of configured chips (setup + background + hold).

    Chips whose configuration was infeasible fail by definition (the paper
    reports them nonfunctional).
    """
    n_chips = population.n_chips
    passed = np.zeros(n_chips, dtype=bool)
    ok = np.asarray(result.feasible, dtype=bool)
    if not ok.any():
        return passed
    settings = np.nan_to_num(result.settings, nan=0.0)

    shifts = path_shifts(circuit.paths, result.buffer_names, settings)
    setup_ok = (population.required + shifts <= period + _EPS).all(axis=1)
    background_ok = (population.background <= period + _EPS).all(axis=1)
    hold_shifts = path_shifts(circuit.short_paths, result.buffer_names, settings)
    # Hold (eq. 2): x_src - x_snk >= ~d  -> shift >= requirement.
    hold_ok = (hold_shifts + _EPS >= population.hold_requirements).all(axis=1)

    passed = ok & setup_ok & background_ok & hold_ok
    return passed


@dataclass(frozen=True)
class YieldComparison:
    """Per-period yield triple, as in Table 2."""

    period: float
    no_buffer: float
    ideal: float
    effitest: float

    @property
    def drop(self) -> float:
        """The paper's ``y_r = y_i - y_t`` (in fractional units)."""
        return self.ideal - self.effitest


def ideal_yield(
    circuit: Circuit,
    population: CircuitPopulation,
    structure: ConfigStructure,
    period: float,
    *,
    kernel: str = "vectorized",
) -> float:
    """The paper's ``y_i``: yield with perfect per-chip delay knowledge.

    ``kernel`` selects the relaxation engine of the underlying
    :func:`~repro.core.configuration.ideal_feasibility` solve (both
    engines produce bit-identical yields; see
    :data:`~repro.core.configuration.KERNELS`).
    """
    result = ideal_feasibility(structure, population.required, period, kernel=kernel)
    return float(configured_pass(circuit, population, result, period).mean())
