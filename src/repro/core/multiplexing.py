"""Path test multiplexing (§3.2 of the paper).

Paths measured in the same tester iteration must be *individually
observable*: a latch failure at a flip-flop must implicate exactly one
path.  Two paths converging at (same sink) or leaving from (same source)
one flip-flop are therefore incompatible, while chains like
``p14, p46, p67`` are fine ("arranged in series").  A *batch* is thus an
edge set of the flip-flop multigraph with in-degree <= 1 and out-degree
<= 1 per node, minus any ATPG mutual exclusions (paths that logic masking
prevents from being sensitized together).

Batches are formed greedily first-fit over paths sorted by decreasing prior
sigma (wide ranges first so they get the most alignment attention), which
for this degree-constrained colouring is within one of optimal in practice.
Idle slots are then filled with not-selected paths in decreasing
*conditional* sigma order (eq. 5 is data-independent), so the extra
measurements shrink the widest predicted ranges for free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.paths import PathSet
from repro.core.prediction import (
    conditional_stds_if_tested,
    greedy_fill_ranking,
)


@dataclass(frozen=True)
class Batch:
    """One parallel-test batch (global path indices)."""

    path_indices: np.ndarray

    @property
    def size(self) -> int:
        return len(self.path_indices)


@dataclass(frozen=True)
class MultiplexPlan:
    """All batches plus bookkeeping of what is measured vs predicted."""

    batches: tuple[Batch, ...]
    selected: np.ndarray  # paths chosen by Procedure 1
    fills: np.ndarray  # extra paths added to idle slots
    measured: np.ndarray  # union, sorted

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def n_measured(self) -> int:
        return len(self.measured)


class _BatchBuilder:
    """Mutable batch respecting the source/sink exclusivity rule."""

    def __init__(self) -> None:
        self.paths: list[int] = []
        self.used_sources: set[int] = set()
        self.used_sinks: set[int] = set()
        self._mean_sum: float = 0.0

    def can_accept(
        self,
        path: int,
        source: int,
        sink: int,
        exclusions: dict[int, set[int]],
    ) -> bool:
        if source in self.used_sources or sink in self.used_sinks:
            return False
        banned = exclusions.get(path)
        if banned and any(other in banned for other in self.paths):
            return False
        return True

    def add(self, path: int, source: int, sink: int, mean: float = 0.0) -> None:
        self.paths.append(path)
        self.used_sources.add(source)
        self.used_sinks.add(sink)
        self._mean_sum += mean

    def mean_center(self) -> float:
        return self._mean_sum / len(self.paths) if self.paths else 0.0


def _exclusion_index(
    mutual_exclusions: frozenset[tuple[int, int]] | set[tuple[int, int]]
) -> dict[int, set[int]]:
    index: dict[int, set[int]] = {}
    for a, b in mutual_exclusions:
        index.setdefault(a, set()).add(b)
        index.setdefault(b, set()).add(a)
    return index


def form_batches(
    paths: PathSet,
    test_indices: np.ndarray,
    mutual_exclusions: frozenset[tuple[int, int]] = frozenset(),
    order_stds: np.ndarray | None = None,
    affinity: bool = True,
) -> list[_BatchBuilder]:
    """Greedy batching of ``test_indices``.

    With ``affinity`` (default) each path goes to the *compatible batch
    whose mean prior delay is closest to its own*.  Aligned testing (§3.3)
    converges fastest when a batch's shifted ranges overlap, and the tuning
    buffers can only bridge a limited spread (tau/2 per endpoint), so
    packing similar-delay paths together directly reduces test iterations.
    Without affinity, plain first-fit is used.
    """
    test_indices = np.asarray(test_indices, dtype=np.intp)
    exclusions = _exclusion_index(mutual_exclusions)
    if order_stds is None:
        order_stds = paths.model.stds()
    means = paths.model.means
    order = test_indices[np.argsort(-order_stds[test_indices], kind="stable")]

    builders: list[_BatchBuilder] = []
    for path in order.tolist():
        source = int(paths.source_idx[path])
        sink = int(paths.sink_idx[path])
        mean = float(means[path])
        candidates = [
            b for b in builders if b.can_accept(path, source, sink, exclusions)
        ]
        if candidates:
            if affinity:
                chosen = min(candidates, key=lambda b: abs(b.mean_center() - mean))
            else:
                chosen = candidates[0]
            chosen.add(path, source, sink, mean)
        else:
            builder = _BatchBuilder()
            builder.add(path, source, sink, mean)
            builders.append(builder)
    return builders


def fill_idle_slots(
    builders: list[_BatchBuilder],
    paths: PathSet,
    candidate_order: np.ndarray,
    mutual_exclusions: frozenset[tuple[int, int]] = frozenset(),
    capacity: int | None = None,
) -> list[int]:
    """Add candidates (already ranked) into idle slots; returns the fills.

    A batch's capacity is the size of the *largest* initially formed batch
    (the paper's "unoccupied slots": smaller batches have idle parallel
    test slots up to what the tester demonstrably sustains).
    """
    exclusions = _exclusion_index(mutual_exclusions)
    if capacity is None:
        capacity = max((len(b.paths) for b in builders), default=0)
    means = paths.model.means
    fills: list[int] = []
    for path in np.asarray(candidate_order, dtype=np.intp).tolist():
        source = int(paths.source_idx[path])
        sink = int(paths.sink_idx[path])
        mean = float(means[path])
        candidates = [
            b
            for b in builders
            if len(b.paths) < capacity and b.can_accept(path, source, sink, exclusions)
        ]
        if candidates:
            chosen = min(candidates, key=lambda b: abs(b.mean_center() - mean))
            chosen.add(path, source, sink, mean)
            fills.append(path)
    return fills


def form_batches_ilp(
    paths: PathSet,
    test_indices: np.ndarray,
    mutual_exclusions: frozenset[tuple[int, int]] = frozenset(),
    backend: str = "scipy",
) -> list[list[int]]:
    """Minimum-batch-count arrangement via the paper's "simple ILP model".

    Exact alternative to the greedy first-fit of :func:`form_batches` for
    small test sets (the MILP grows as paths x batches).  Binary ``y[p,b]``
    assigns path ``p`` to batch ``b``; per batch each flip-flop may appear
    at most once as a source and once as a sink; ``z[b]`` marks used
    batches and their count is minimized (with symmetry breaking
    ``z[b] >= z[b+1]`` so the search does not permute batch labels).
    """
    from repro.opt.model import Model, ObjectiveSense
    from repro.opt.solve import solve

    test_indices = np.asarray(test_indices, dtype=np.intp)
    if test_indices.size == 0:
        return []
    greedy = form_batches(paths, test_indices, mutual_exclusions)
    max_batches = len(greedy)
    if max_batches <= 1:
        return [sorted(b.paths) for b in greedy]

    exclusions = _exclusion_index(mutual_exclusions)
    model = Model("min_batches")
    y = {}
    z = [model.add_binary(f"z{b}") for b in range(max_batches)]
    for p in test_indices.tolist():
        for b in range(max_batches):
            y[p, b] = model.add_binary(f"y{p}_{b}")
    for p in test_indices.tolist():
        model.add_constraint(
            sum((y[p, b] for b in range(1, max_batches)), y[p, 0]).equals(1)
        )
        for b in range(max_batches):
            model.add_constraint(y[p, b] <= z[b])
    by_source: dict[int, list[int]] = {}
    by_sink: dict[int, list[int]] = {}
    for p in test_indices.tolist():
        by_source.setdefault(int(paths.source_idx[p]), []).append(p)
        by_sink.setdefault(int(paths.sink_idx[p]), []).append(p)
    for b in range(max_batches):
        for group in list(by_source.values()) + list(by_sink.values()):
            if len(group) > 1:
                model.add_constraint(
                    sum((y[p, b] for p in group[1:]), y[group[0], b]) <= 1
                )
        for p in test_indices.tolist():
            banned = exclusions.get(p, set()) & set(test_indices.tolist())
            for q in banned:
                if q > p:
                    model.add_constraint(y[p, b] + y[q, b] <= 1)
    for b in range(max_batches - 1):
        model.add_constraint(z[b] >= z[b + 1])
    model.set_objective(
        sum((zb for zb in z[1:]), z[0]), ObjectiveSense.MINIMIZE
    )
    solution = solve(model, backend=backend)
    if not solution.ok:  # pragma: no cover - greedy is always feasible
        return [sorted(b.paths) for b in greedy]
    batches: list[list[int]] = []
    for b in range(max_batches):
        if round(solution[f"z{b}"]) != 1:
            continue
        members = [
            p for p in test_indices.tolist() if round(solution[f"y{p}_{b}"]) == 1
        ]
        if members:
            batches.append(sorted(members))
    return batches


def plan_multiplexing(
    paths: PathSet,
    selected_indices: np.ndarray,
    mutual_exclusions: frozenset[tuple[int, int]] = frozenset(),
    fill_slots: bool = True,
    affinity: bool = False,
    fill_sigma_fraction: float = 0.5,
    max_fill_factor: float = 1.0,
    fill_rank: str = "static",
) -> MultiplexPlan:
    """Build the full §3.2 plan: batches over the selected paths, then fill
    idle slots with the largest-conditional-variance unselected paths.

    Only candidates that remain poorly predicted — conditional sigma above
    ``fill_sigma_fraction`` of their prior sigma — are worth a slot, and at
    most ``max_fill_factor * len(selected)`` fills are added (testing is
    free only while slots are genuinely idle).  ``affinity=True`` enables
    mean-affinity packing (an extension beyond the paper's first-fit
    batching; see :func:`form_batches`).

    ``fill_rank`` picks how fill candidates are ordered: ``"static"``
    scores every candidate once against the selected set (the default,
    the paper's reading), ``"greedy"`` re-conditions after each committed
    fill through the incremental Cholesky predictor
    (:func:`repro.core.prediction.greedy_fill_ranking`), so two
    near-collinear candidates don't both win slots.
    """
    if fill_rank not in ("static", "greedy"):
        raise ValueError(
            f"fill_rank must be 'static' or 'greedy', got {fill_rank!r}"
        )
    selected = np.unique(np.asarray(selected_indices, dtype=np.intp))
    builders = form_batches(paths, selected, mutual_exclusions, affinity=affinity)

    fills: list[int] = []
    if fill_slots and selected.size < paths.n_paths:
        conditional = conditional_stds_if_tested(paths.model, selected)
        predictor_idx = np.setdiff1d(
            np.arange(paths.n_paths, dtype=np.intp), selected
        )
        prior = np.sqrt(paths.model.variances()[predictor_idx])
        poorly_predicted = conditional > fill_sigma_fraction * np.maximum(prior, 1e-12)
        candidates = predictor_idx[poorly_predicted]
        budget = int(np.floor(max_fill_factor * selected.size))
        if fill_rank == "greedy":
            order = np.asarray(
                greedy_fill_ranking(
                    paths.model, selected, candidates, budget
                ),
                dtype=np.intp,
            )
        else:
            order = candidates[
                np.argsort(-conditional[poorly_predicted], kind="stable")
            ][:budget]
        fills = fill_idle_slots(
            builders, paths, order, mutual_exclusions
        )

    batches = tuple(
        Batch(np.asarray(sorted(b.paths), dtype=np.intp)) for b in builders
    )
    fills_arr = np.asarray(sorted(fills), dtype=np.intp)
    measured = np.unique(np.concatenate([selected, fills_arr])) if fills else selected
    return MultiplexPlan(
        batches=batches, selected=selected, fills=fills_arr, measured=measured
    )
