"""Test-resolution calibration shared by every flow entry point.

The paper fixes the frequency-stepping resolution ``epsilon`` so that the
path-wise baseline needs a target number of binary-search iterations
(Table 1 uses 9) on the median prior width.  Both the EffiTest preparation
and the path-wise comparison must use the *same* resolution, otherwise the
reported reduction ratios are meaningless — hence one shared helper.
"""

from __future__ import annotations

import numpy as np


def calibrate_epsilon(config, stds: np.ndarray) -> float:
    """Resolve the test resolution for a config against prior path sigmas.

    ``config`` is any object with ``epsilon``, ``sigma_window`` and
    ``pathwise_iterations_target`` attributes (``OfflineConfig`` or the
    legacy composite ``EffiTestConfig``).  An explicit ``epsilon`` wins;
    otherwise the median prior width ``2 * sigma_window * sigma`` halved
    ``pathwise_iterations_target`` times is used.
    """
    if config.epsilon is not None:
        return float(config.epsilon)
    widths = 2.0 * config.sigma_window * np.asarray(stds, dtype=float)
    return float(np.median(widths) / 2**config.pathwise_iterations_target)


__all__ = ["calibrate_epsilon"]
