"""Adaptive test budgets: criticality-allocated resolution + verdict certificates.

The uniform aligned test (§3.3) steps every path of every chip down to one
global resolution ``epsilon`` — the tester pays the same iteration budget
for a path that decides the chip's fate and for one that is both
well-predicted and far from critical.  This module implements the
*graduated* test the criticality sequels to the paper describe:

1. **Coarse pass** — the full aligned test runs once with a *per-path*
   resolution from :func:`coarse_epsilon`: paths whose delay is nearly
   determined by the other measured paths (small conditional sigma) and
   rarely the chip maximum (small analytic criticality,
   :mod:`repro.core.criticality`) stop stepping early.
2. **Certificate** — :func:`certify_refinement` decides, per chip, whether
   *any* refinement of the coarse ranges down to ``epsilon`` could change
   the chip's final configure/verify verdict.  Certified chips keep their
   coarse ranges.
3. **Refinement** — uncertified chips rerun the uniform test from the
   priors, which is bit-identical to what the uniform budget would have
   produced for those chips (chips are row-independent through the whole
   test engine).

The certificate works on the **refinement hull**: a coarse range
``[l_c, u_c]`` at resolution coarser than ``epsilon`` brackets the true
delay, so any rerun at resolution ``epsilon`` lands its bounds inside
``[l_c - epsilon, u_c + epsilon]`` and its measured *upper* bound inside
``[l_c, u_c + epsilon]``.  Two corner configure problems bracket every
refinement outcome:

* **P** (pessimistic) takes every measured range at the hull's top
  (``l = u_c``, ``u = u_c + epsilon``) and every predicted range at the
  largest conditional mean the hull allows (sign-split predictor weights:
  ``mu_max = mu + W^+ (u_hull - mu_t) + W^- (l_hull - mu_t)``),
* **O** (optimistic) takes the hull's bottom symmetrically.

Every dynamic edge weight of the configuration problem
(:mod:`repro.core.configuration`) has the form ``min(c, Td - max(l, u -
xi))`` — monotone non-increasing in ``(l, u)`` — so feasibility of P
implies feasibility of every refinement, which implies feasibility of O:
when the two corners agree, the refined feasibility verdict is *provably*
that value.  The chosen buffer settings are distances in the constraint
graph and do **not** inherit this monotonicity; the certificate instead
encloses both corner witnesses in a guard-banded box (``guard_steps``
lattice steps on each side) and requires the worst- and best-case verify
outcomes (setup/hold legs evaluated at the box corners) to coincide.  The
guard band is a validated heuristic, not a proof — which is exactly why
the adaptive budget is benchmarked verdict-for-verdict against the
uniform budget (``benchmarks/bench_test.py``) rather than assumed
correct, and why uncertified chips fall back to the bit-identical rerun.

Allocation (:func:`coarse_epsilon`) only moves *where* iterations are
spent; verdicts are protected by the certificate + rerun regardless of how
good the allocation is.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.paths import PathSet
from repro.core.configuration import ConfigStructure, configure_chips
from repro.core.criticality import BatchedForms, member_criticality
from repro.core.population import PopulationTestResult
from repro.core.prediction import ConditionalPredictor
from repro.core.yields import CircuitPopulation
from repro.variation.correlation import PathDelayModel

_EPS = 1e-9
_JITTER = 1e-9


def coarse_epsilon(
    model: PathDelayModel,
    measured,
    epsilon: float,
    *,
    kappa: float = 4.0,
    criticality_floor: float = 0.02,
    cap_factor: float = 64.0,
    kernel: str = "auto",
) -> np.ndarray:
    """Per-path resolution for the coarse pass of the graduated test.

    Returns an ``(n_paths,)`` array over the model's global path indexing;
    unmeasured paths keep the uniform ``epsilon`` (their entries are never
    consumed).  Each measured path gets

        ``eps_p = clip(kappa * sigma_floor(p) / max(crit_p, floor),
                       epsilon, cap_factor * epsilon)``

    where ``sigma_floor(p)`` is the conditional sigma of path ``p`` given
    *all other measured paths* (how much of its delay the tester would
    learn anyway) and ``crit_p`` its analytic probability of being the
    maximum of the measured set (:func:`~repro.core.criticality.
    member_criticality`).  Well-explained, rarely-critical paths get wide
    coarse ranges; the decisive paths stay near ``epsilon``.  The
    allocation is a pure performance knob: final verdicts are guaranteed
    by :func:`certify_refinement` and the uniform rerun, never by this
    ranking.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    measured = np.unique(np.asarray(measured, dtype=np.intp))
    out = np.full(model.n_paths, float(epsilon))
    if measured.size == 0:
        return out

    crit = member_criticality(
        BatchedForms.from_model(model).take(measured), kernel=kernel
    )

    # sigma_floor via the precision matrix of the measured block: the
    # conditional variance of one coordinate given all others is the
    # reciprocal of the corresponding precision diagonal.
    loadings = model.loadings[measured]
    sigma = loadings @ loadings.T
    sigma[np.diag_indices_from(sigma)] += (
        model.independent[measured] ** 2
        + _JITTER * max(float(np.trace(sigma)), 1.0)
    )
    precision_diag = np.diag(np.linalg.inv(sigma))
    sigma_floor = np.sqrt(1.0 / np.maximum(precision_diag, _JITTER))

    allocated = kappa * sigma_floor / np.maximum(crit, criticality_floor)
    out[measured] = np.clip(allocated, epsilon, cap_factor * epsilon)
    return out


def _corner_shifts(
    src_settings: np.ndarray,
    snk_settings: np.ndarray,
    src_col: np.ndarray,
    snk_col: np.ndarray,
    n_paths: int,
) -> np.ndarray:
    """Per-path ``x_src - x_snk`` with *different* corner settings per role.

    The worst-case setup shift over a settings box takes the source buffer
    at its high corner and the sink at its low corner (and vice versa), so
    unlike :func:`repro.core.yields.path_shifts` the two endpoints read
    from different settings matrices.
    """
    n_chips = src_settings.shape[0]
    shifts = np.zeros((n_chips, n_paths))
    has_src = src_col >= 0
    if has_src.any():
        shifts[:, has_src] += src_settings[:, src_col[has_src]]
    has_snk = snk_col >= 0
    if has_snk.any():
        shifts[:, has_snk] -= snk_settings[:, snk_col[has_snk]]
    return shifts


def _buffer_columns(
    paths: PathSet, buffer_names: tuple[str, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """(source, sink) buffer column per path, -1 where untunable."""
    local = {name: b for b, name in enumerate(buffer_names)}
    src = np.array(
        [local.get(paths.ff_names[i], -1) for i in paths.source_idx],
        dtype=np.intp,
    )
    snk = np.array(
        [local.get(paths.ff_names[i], -1) for i in paths.sink_idx],
        dtype=np.intp,
    )
    return src, snk


def certify_refinement(
    structure: ConfigStructure,
    short_paths: PathSet,
    predictor: ConditionalPredictor | None,
    test: PopulationTestResult,
    population: CircuitPopulation,
    period: float,
    epsilon: float,
    *,
    sigma_window: float = 3.0,
    xi_tolerance: float | None = None,
    guard_steps: int = 4,
    kernel: str = "vectorized",
) -> np.ndarray:
    """Per-chip certificate that refining ``test`` cannot flip the verdict.

    ``test`` holds coarse measured ranges; ``epsilon`` is the uniform
    (full) resolution a refinement would use.  Returns a boolean
    ``(n_chips,)`` mask: ``True`` means the chip's final configure
    feasibility *and* verify pass/fail are the same for every refinement
    of the coarse ranges, so the coarse ranges can be kept as-is.  See the
    module docstring for the bracketing argument and the guard-band
    caveat.
    """
    n_chips = test.n_chips
    n_paths = int(structure.src_buffer.shape[0])
    measured = test.measured_indices

    p_lower = np.empty((n_chips, n_paths))
    p_upper = np.empty((n_chips, n_paths))
    o_lower = np.empty((n_chips, n_paths))
    o_upper = np.empty((n_chips, n_paths))
    p_lower[:, measured] = test.upper
    p_upper[:, measured] = test.upper + epsilon
    o_lower[:, measured] = test.lower - epsilon
    o_upper[:, measured] = test.lower

    if test.n_measured < n_paths:
        if predictor is None:
            raise ValueError(
                "a predictor is required when the test covers only part of "
                "the required paths"
            )
        if not np.array_equal(predictor.tested_idx, measured):
            raise ValueError(
                "predictor tested paths do not match the test's measured paths"
            )
        w_pos = np.maximum(predictor.weights, 0.0)
        w_neg = np.minimum(predictor.weights, 0.0)
        # The refined measured *upper* bound lies in [l_c, u_c + epsilon];
        # the conditional mean is affine in it, so sign-split weights give
        # its exact extremes over the hull.
        hull_hi = (test.upper + epsilon) - predictor.prior_means_tested
        hull_lo = test.lower - predictor.prior_means_tested
        mu_max = (
            predictor.prior_means_predicted
            + hull_hi @ w_pos.T
            + hull_lo @ w_neg.T
        )
        mu_min = (
            predictor.prior_means_predicted
            + hull_lo @ w_pos.T
            + hull_hi @ w_neg.T
        )
        half = sigma_window * predictor.conditional_stds
        p_lower[:, predictor.predicted_idx] = mu_max - half
        p_upper[:, predictor.predicted_idx] = mu_max + half
        o_lower[:, predictor.predicted_idx] = mu_min - half
        o_upper[:, predictor.predicted_idx] = mu_min + half

    corner_p = configure_chips(
        structure, p_lower, p_upper, period,
        xi_tolerance=xi_tolerance, kernel=kernel,
    )
    corner_o = configure_chips(
        structure, o_lower, o_upper, period,
        xi_tolerance=xi_tolerance, kernel=kernel,
    )
    feas_agree = corner_p.feasible == corner_o.feasible
    both_feasible = corner_p.feasible & corner_o.feasible

    guard = guard_steps * (structure.step if structure.step else float(epsilon))
    settings_p = np.nan_to_num(corner_p.settings, nan=0.0)
    settings_o = np.nan_to_num(corner_o.settings, nan=0.0)
    box_lo = np.minimum(settings_p, settings_o) - guard
    box_hi = np.maximum(settings_p, settings_o) + guard

    src_col = structure.src_buffer
    snk_col = structure.snk_buffer
    hold_src, hold_snk = _buffer_columns(short_paths, structure.buffer_names)

    required = population.required
    setup_worst = (
        required + _corner_shifts(box_hi, box_lo, src_col, snk_col, n_paths)
        <= period + _EPS
    ).all(axis=1)
    setup_best = (
        required + _corner_shifts(box_lo, box_hi, src_col, snk_col, n_paths)
        <= period + _EPS
    ).all(axis=1)
    background_ok = (population.background <= period + _EPS).all(axis=1)
    n_short = short_paths.n_paths
    hold_worst = (
        _corner_shifts(box_lo, box_hi, hold_src, hold_snk, n_short) + _EPS
        >= population.hold_requirements
    ).all(axis=1)
    hold_best = (
        _corner_shifts(box_hi, box_lo, hold_src, hold_snk, n_short) + _EPS
        >= population.hold_requirements
    ).all(axis=1)
    pass_worst = setup_worst & background_ok & hold_worst
    pass_best = setup_best & background_ok & hold_best

    return (feas_agree & ~corner_p.feasible) | (
        feas_agree & both_feasible & (pass_worst == pass_best)
    )


__all__ = ["certify_refinement", "coarse_epsilon"]
