"""Path grouping and test-path selection (§3.1, Procedure 1 of the paper).

Starting at a high correlation threshold (0.95), paths are partitioned into
groups of mutually correlated delays; the threshold is lowered by 0.05 per
round until every path is grouped.  Each group's covariance is decomposed
with PCA, the number of significant principal components determines how
many of its paths are frequency-stepped, and the paths picked are those
with the largest loading on each successive component.

Grouping uses connected components of the thresholded correlation graph —
cheap, deterministic, and faithful to the paper's "extract paths with high
correlations" (clusters far apart on the die correlate only globally, so
chaining across clusters cannot occur at high thresholds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_probability
from repro.variation.correlation import PathDelayModel
from repro.variation.pca import pca, select_representatives


@dataclass(frozen=True)
class PathGroup:
    """One correlated path group and its selected test paths."""

    indices: np.ndarray  # global path indices in this group
    threshold: float  # correlation threshold at which it was extracted
    n_components: int  # |PC_i|
    selected: np.ndarray  # global indices of the paths chosen for test

    @property
    def size(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class GroupingResult:
    """All groups plus the union of selected test paths (the paper's P_t)."""

    groups: tuple[PathGroup, ...] = field(default=())

    @property
    def tested_indices(self) -> np.ndarray:
        if not self.groups:
            return np.array([], dtype=np.intp)
        return np.unique(np.concatenate([g.selected for g in self.groups]))

    @property
    def n_tested(self) -> int:
        return len(self.tested_indices)

    def group_of(self, path: int) -> PathGroup:
        for group in self.groups:
            if path in group.indices:
                return group
        raise KeyError(f"path {path} not in any group")


def _threshold_components(corr: np.ndarray, members: np.ndarray, threshold: float):
    """Connected components of the subgraph with edges ``corr >= threshold``."""
    n = len(members)
    sub = corr[np.ix_(members, members)] >= threshold
    np.fill_diagonal(sub, True)
    labels = np.full(n, -1, dtype=int)
    current = 0
    for start in range(n):
        if labels[start] >= 0:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            node = stack.pop()
            neighbours = np.flatnonzero(sub[node] & (labels < 0))
            labels[neighbours] = current
            stack.extend(neighbours.tolist())
        current += 1
    return [members[labels == c] for c in range(current)]


def significant_components(
    eigenvalues: np.ndarray,
    criterion: str = "relative",
    variance_fraction: float = 0.95,
    relative_threshold: float = 0.03,
) -> int:
    """How many principal components "carry the correlation information".

    ``"largest"`` (default) counts eigenvalues at least
    ``relative_threshold`` of the *largest* eigenvalue — scale-free in the
    group size, so a 50-path and a 1000-path cluster select comparably.
    ``"relative"`` counts eigenvalues at least ``relative_threshold`` of
    the total variance.  ``"fraction"`` counts the smallest prefix
    explaining ``variance_fraction`` of total variance (classic PCA
    truncation).
    """
    check_probability(variance_fraction, "variance_fraction")
    clipped = np.maximum(eigenvalues, 0.0)
    total = float(np.sum(clipped))
    if total <= 0:
        return 0
    if criterion == "largest":
        top = float(clipped[0]) if len(clipped) else 0.0
        if top <= 0:
            return 0
        return max(int(np.sum(clipped >= relative_threshold * top)), 1)
    if criterion == "relative":
        count = int(np.sum(clipped >= relative_threshold * total))
        return max(count, 1)
    if criterion == "fraction":
        cumulative = np.cumsum(clipped) / total
        return int(np.searchsorted(cumulative, variance_fraction - 1e-12) + 1)
    raise ValueError(f"unknown criterion {criterion!r}")


def group_and_select(
    model: PathDelayModel,
    start_threshold: float = 0.95,
    threshold_step: float = 0.05,
    floor_threshold: float = 0.50,
    pc_criterion: str = "largest",
    variance_fraction: float = 0.95,
    relative_threshold: float = 0.03,
) -> GroupingResult:
    """Procedure 1: group paths by correlation, select test paths by PCA.

    A component of size >= 2 found at the current threshold becomes a group;
    singletons are retried at lower thresholds until ``floor_threshold``,
    below which every remaining path forms its own (directly tested) group.
    """
    corr = model.correlation()
    cov = model.covariance()
    remaining = np.arange(model.n_paths, dtype=np.intp)
    groups: list[PathGroup] = []
    threshold = start_threshold

    while remaining.size:
        at_floor = threshold <= floor_threshold + 1e-12
        components = _threshold_components(corr, remaining, threshold)
        leftovers = []
        for component in components:
            if component.size == 1 and not at_floor:
                leftovers.append(component)
                continue
            group_cov = cov[np.ix_(component, component)]
            decomposition = pca(group_cov, variance_fraction)
            n_pc = significant_components(
                decomposition.eigenvalues,
                criterion=pc_criterion,
                variance_fraction=variance_fraction,
                relative_threshold=relative_threshold,
            )
            n_pc = max(1, min(n_pc, component.size))
            local_selected = select_representatives(decomposition, n_pc)
            groups.append(
                PathGroup(
                    indices=component,
                    threshold=threshold,
                    n_components=n_pc,
                    selected=component[np.asarray(local_selected, dtype=np.intp)],
                )
            )
        if at_floor:
            break
        remaining = (
            np.concatenate(leftovers) if leftovers else np.array([], dtype=np.intp)
        )
        threshold = max(threshold - threshold_step, floor_threshold)

    return GroupingResult(tuple(groups))
