"""Path grouping and test-path selection (§3.1, Procedure 1 of the paper).

Starting at a high correlation threshold (0.95), paths are partitioned into
groups of mutually correlated delays; the threshold is lowered by 0.05 per
round until every path is grouped.  Each group's covariance is decomposed
with PCA, the number of significant principal components determines how
many of its paths are frequency-stepped, and the paths picked are those
with the largest loading on each successive component.

Grouping uses connected components of the thresholded correlation graph —
cheap, deterministic, and faithful to the paper's "extract paths with high
correlations" (clusters far apart on the die correlate only globally, so
chaining across clusters cannot occur at high thresholds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.utils.validation import check_probability
from repro.variation.correlation import PathDelayModel
from repro.variation.pca import PCAResult, pca, select_representatives


@dataclass(frozen=True)
class PathGroup:
    """One correlated path group and its selected test paths."""

    indices: np.ndarray  # global path indices in this group
    threshold: float  # correlation threshold at which it was extracted
    n_components: int  # |PC_i|
    selected: np.ndarray  # global indices of the paths chosen for test

    @property
    def size(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class GroupingResult:
    """All groups plus the union of selected test paths (the paper's P_t)."""

    groups: tuple[PathGroup, ...] = field(default=())

    @property
    def tested_indices(self) -> np.ndarray:
        if not self.groups:
            return np.array([], dtype=np.intp)
        return np.unique(np.concatenate([g.selected for g in self.groups]))

    @property
    def n_tested(self) -> int:
        return len(self.tested_indices)

    @cached_property
    def _group_index(self) -> np.ndarray:
        """Path -> group position table, built on first ``group_of`` call.

        Groups partition the paths, so one dense ``intp`` array answers
        every lookup in O(1); -1 marks indices outside all groups (only
        possible for out-of-range queries on a complete grouping).
        """
        size = 0
        for group in self.groups:
            if group.indices.size:
                size = max(size, int(group.indices.max()) + 1)
        table = np.full(size, -1, dtype=np.intp)
        for position, group in enumerate(self.groups):
            table[group.indices] = position
        return table

    def group_of(self, path: int) -> PathGroup:
        table = self._group_index
        if 0 <= path < len(table) and table[path] >= 0:
            return self.groups[table[path]]
        raise KeyError(f"path {path} not in any group")


def _threshold_components(corr: np.ndarray, members: np.ndarray, threshold: float):
    """Connected components of the subgraph with edges ``corr >= threshold``."""
    n = len(members)
    sub = corr[np.ix_(members, members)] >= threshold
    np.fill_diagonal(sub, True)
    labels = np.full(n, -1, dtype=int)
    current = 0
    for start in range(n):
        if labels[start] >= 0:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            node = stack.pop()
            neighbours = np.flatnonzero(sub[node] & (labels < 0))
            labels[neighbours] = current
            stack.extend(neighbours.tolist())
        current += 1
    return [members[labels == c] for c in range(current)]


def significant_components(
    eigenvalues: np.ndarray,
    criterion: str = "relative",
    variance_fraction: float = 0.95,
    relative_threshold: float = 0.03,
) -> int:
    """How many principal components "carry the correlation information".

    ``"largest"`` (default) counts eigenvalues at least
    ``relative_threshold`` of the *largest* eigenvalue — scale-free in the
    group size, so a 50-path and a 1000-path cluster select comparably.
    ``"relative"`` counts eigenvalues at least ``relative_threshold`` of
    the total variance.  ``"fraction"`` counts the smallest prefix
    explaining ``variance_fraction`` of total variance (classic PCA
    truncation).
    """
    check_probability(variance_fraction, "variance_fraction")
    clipped = np.maximum(eigenvalues, 0.0)
    total = float(np.sum(clipped))
    if total <= 0:
        return 0
    if criterion == "largest":
        top = float(clipped[0]) if len(clipped) else 0.0
        if top <= 0:
            return 0
        return max(int(np.sum(clipped >= relative_threshold * top)), 1)
    if criterion == "relative":
        count = int(np.sum(clipped >= relative_threshold * total))
        return max(count, 1)
    if criterion == "fraction":
        cumulative = np.cumsum(clipped) / total
        return int(np.searchsorted(cumulative, variance_fraction - 1e-12) + 1)
    raise ValueError(f"unknown criterion {criterion!r}")


def _make_group(
    component: np.ndarray,
    threshold: float,
    decomposition: PCAResult,
    pc_criterion: str,
    variance_fraction: float,
    relative_threshold: float,
) -> PathGroup:
    """PCA-select test paths for one extracted component (shared by the
    workspace sweep and the reference loop, so both produce bit-identical
    groups from the same decomposition)."""
    n_pc = significant_components(
        decomposition.eigenvalues,
        criterion=pc_criterion,
        variance_fraction=variance_fraction,
        relative_threshold=relative_threshold,
    )
    n_pc = max(1, min(n_pc, int(component.size)))
    local_selected = select_representatives(decomposition, n_pc)
    return PathGroup(
        indices=component,
        threshold=threshold,
        n_components=n_pc,
        selected=component[np.asarray(local_selected, dtype=np.intp)],
    )


class GroupingWorkspace:
    """Precompiled grouping state for one :class:`PathDelayModel`.

    The reference loop re-derives the thresholded correlation subgraph from
    scratch at every rung of the threshold ladder — an O(n^2) BFS per round
    on a matrix that never changes.  The workspace instead builds the
    correlation/covariance matrices once, sorts the upper-triangle
    correlation edges descending (stable, so ties keep index order), and
    lets :func:`group_and_select` sweep the ladder with an incremental
    union-find: each round admits only the edges whose weight just crossed
    the current threshold.  Eigendecompositions are cached by component
    membership, so repeated grouping calls over the same model (parameter
    sweeps over ``pc_criterion``/``relative_threshold``, re-preparations)
    skip the PCA entirely for components they rediscover.
    """

    def __init__(self, model: PathDelayModel):
        self.model = model
        self.correlation = model.correlation()
        self.covariance = model.covariance()
        n = model.n_paths
        row, col = np.triu_indices(n, k=1)
        weights = self.correlation[row, col]
        order = np.argsort(-weights, kind="stable")
        self._edge_u = row[order].astype(np.intp)
        self._edge_v = col[order].astype(np.intp)
        self._edge_w = weights[order]
        self._pca_cache: dict[tuple[bytes, float], PCAResult] = {}

    @property
    def n_paths(self) -> int:
        return self.model.n_paths

    @property
    def pca_cache_size(self) -> int:
        return len(self._pca_cache)

    def decompose(
        self, component: np.ndarray, variance_fraction: float
    ) -> PCAResult:
        """PCA of one component's covariance block, memoized by membership."""
        key = (component.tobytes(), float(variance_fraction))
        decomposition = self._pca_cache.get(key)
        if decomposition is None:
            block = self.covariance[np.ix_(component, component)]
            decomposition = pca(block, variance_fraction)
            self._pca_cache[key] = decomposition
        return decomposition


def group_and_select(
    model: PathDelayModel,
    start_threshold: float = 0.95,
    threshold_step: float = 0.05,
    floor_threshold: float = 0.50,
    pc_criterion: str = "largest",
    variance_fraction: float = 0.95,
    relative_threshold: float = 0.03,
    workspace: GroupingWorkspace | None = None,
) -> GroupingResult:
    """Procedure 1: group paths by correlation, select test paths by PCA.

    A component of size >= 2 found at the current threshold becomes a group;
    singletons are retried at lower thresholds until ``floor_threshold``,
    below which every remaining path forms its own (directly tested) group.

    Runs on a :class:`GroupingWorkspace` (built ad hoc when not passed):
    edges are admitted into a union-find as the threshold descends past
    their weight, which is equivalent to the reference per-round component
    search because extraction is permanent — an edge skipped for touching
    an extracted path would never connect remaining paths again.  Identical
    output to :func:`group_and_select_reference` (asserted by tests).
    """
    if workspace is None:
        workspace = GroupingWorkspace(model)
    elif workspace.model is not model:
        raise ValueError("workspace was built for a different delay model")

    n = workspace.n_paths
    parent = list(range(n))

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    edge_u, edge_v, edge_w = (
        workspace._edge_u, workspace._edge_v, workspace._edge_w
    )
    n_edges = len(edge_w)
    extracted = np.zeros(n, dtype=bool)
    groups: list[PathGroup] = []
    threshold = start_threshold
    cursor = 0
    n_left = n

    while n_left:
        at_floor = threshold <= floor_threshold + 1e-12
        while cursor < n_edges and edge_w[cursor] >= threshold:
            u, v = int(edge_u[cursor]), int(edge_v[cursor])
            cursor += 1
            if extracted[u] or extracted[v]:
                continue
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[max(ru, rv)] = min(ru, rv)

        members: dict[int, list[int]] = {}
        for node in np.flatnonzero(~extracted):
            members.setdefault(find(int(node)), []).append(int(node))
        # Scanning unextracted nodes ascending orders components by their
        # minimum member — the same order the reference BFS discovers them.
        for component_nodes in members.values():
            component = np.array(component_nodes, dtype=np.intp)
            if component.size == 1 and not at_floor:
                continue
            groups.append(
                _make_group(
                    component,
                    threshold,
                    workspace.decompose(component, variance_fraction),
                    pc_criterion,
                    variance_fraction,
                    relative_threshold,
                )
            )
            extracted[component] = True
            n_left -= component.size
        if at_floor:
            break
        threshold = max(threshold - threshold_step, floor_threshold)

    return GroupingResult(tuple(groups))


def group_and_select_reference(
    model: PathDelayModel,
    start_threshold: float = 0.95,
    threshold_step: float = 0.05,
    floor_threshold: float = 0.50,
    pc_criterion: str = "largest",
    variance_fraction: float = 0.95,
    relative_threshold: float = 0.03,
) -> GroupingResult:
    """The historical per-round implementation of Procedure 1.

    Recomputes the thresholded subgraph's connected components from
    scratch at every threshold (see :func:`_threshold_components`).
    Retained as the A/B oracle for :func:`group_and_select` — the
    equivalence tests and ``benchmarks/bench_offline.py`` assert identical
    groupings.
    """
    corr = model.correlation()
    cov = model.covariance()
    remaining = np.arange(model.n_paths, dtype=np.intp)
    groups: list[PathGroup] = []
    threshold = start_threshold

    while remaining.size:
        at_floor = threshold <= floor_threshold + 1e-12
        components = _threshold_components(corr, remaining, threshold)
        leftovers = []
        for component in components:
            if component.size == 1 and not at_floor:
                leftovers.append(component)
                continue
            decomposition = pca(
                cov[np.ix_(component, component)], variance_fraction
            )
            groups.append(
                _make_group(
                    component,
                    threshold,
                    decomposition,
                    pc_criterion,
                    variance_fraction,
                    relative_threshold,
                )
            )
        if at_floor:
            break
        remaining = (
            np.concatenate(leftovers) if leftovers else np.array([], dtype=np.intp)
        )
        threshold = max(threshold - threshold_step, floor_threshold)

    return GroupingResult(tuple(groups))
