"""Analytic path criticality from batched canonical forms.

The per-node SSTA loop of :mod:`repro.variation.ssta` propagates one
:class:`~repro.variation.canonical.CanonicalForm` at a time through dict
arithmetic — fine for ranking a handful of flip-flop pairs offline, far
too slow to recompute criticality per budget decision.  This module
restates the same arithmetic over *stacked* forms: means ``(n,)``,
factor loadings ``(n, n_factors)`` and independent coefficients ``(n,)``,
with Clark's moment-matched max vectorized row-wise and DAG propagation
scheduled level by level (the same levelization idiom as
:class:`repro.opt.diffconstraints.RelaxKernel`).

Bit-identity contract
---------------------

Every batched operation replicates the scalar reference float-for-float:
the same operations in the same order, with the dict folds of
:class:`CanonicalForm` (``variance``, ``covariance``, the blended
``shared_var``) replayed as explicit left folds over factor columns in
ascending factor order.  The pin therefore holds whenever the reference
forms keep their ``sensitivities`` dicts in ascending factor order — which
is how every form in this project is built (``loading_matrix`` row order,
:class:`~repro.variation.correlation.PathDelayModel` rows, the circuit
generators).  ``tests/core/test_criticality.py`` bit-compares both the
propagation and the criticality probabilities against the retained
per-node loop on randomized DAGs.

Two details are load-bearing and easy to break:

* ``CanonicalForm.__add__`` combines independent terms with
  ``math.hypot``, and ``np.hypot`` is *not* bit-identical to it — the
  batched sum applies ``math.hypot`` elementwise instead;
* the degenerate Clark branch (``theta^2 <= 1e-24``) returns the
  larger-mean *operand object*; the batched twin row-copies the winning
  operand's mean, loadings and independent term.

``kernel=`` selects the implementation: ``"reference"`` is the per-node
loop, ``"vectorized"`` the NumPy twin, ``"compiled"`` routes the two pure
arithmetic stages of the Clark max through numba
(:mod:`repro.kernels.criticality`) with the Gaussian pdf/cdf evaluated
between them in NumPy (scipy ufuncs cannot run under numba), and
``"auto"`` resolves through :func:`repro.kernels.resolve_kernel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

import networkx as nx
import numpy as np
from scipy import stats

from repro.variation.canonical import CanonicalForm
from repro.variation.correlation import PathDelayModel
from repro.variation.ssta import topological_arrival_times

Node = Hashable

#: Degenerate-spread threshold of ``CanonicalForm.maximum``.
_THETA2_FLOOR = 1e-24

#: Kernel names accepted by the criticality seam.
CRITICALITY_KERNELS = ("auto", "compiled", "vectorized", "reference")

# math.hypot (CPython's corrected algorithm) is not bit-identical to
# np.hypot (libm); the scalar reference uses math.hypot, so we do too.
_hypot = np.frompyfunc(math.hypot, 2, 1)


def _check_kernel(kernel: str) -> str:
    if kernel not in CRITICALITY_KERNELS:
        raise ValueError(
            f"kernel must be one of {CRITICALITY_KERNELS}, got {kernel!r}"
        )
    from repro.kernels import resolve_kernel

    return resolve_kernel(kernel)


@dataclass(frozen=True)
class BatchedForms:
    """Stacked canonical forms: ``means + loadings @ X + independent * R``."""

    means: np.ndarray  # (n,)
    loadings: np.ndarray  # (n, n_factors)
    independent: np.ndarray  # (n,)

    @property
    def n(self) -> int:
        return len(self.means)

    @property
    def n_factors(self) -> int:
        return self.loadings.shape[1]

    @classmethod
    def from_forms(
        cls, forms: Sequence[CanonicalForm], n_factors: int | None = None
    ) -> "BatchedForms":
        if n_factors is None:
            n_factors = 0
            for form in forms:
                if form.sensitivities:
                    n_factors = max(n_factors, max(form.sensitivities) + 1)
        means = np.array([f.mean for f in forms], dtype=float)
        independent = np.array([f.independent for f in forms], dtype=float)
        loadings = np.zeros((len(forms), n_factors))
        for row, form in enumerate(forms):
            for idx, coeff in form.sensitivities.items():
                if idx >= n_factors:
                    raise ValueError(
                        f"form {row} uses factor {idx} >= n_factors={n_factors}"
                    )
                loadings[row, idx] = coeff
        return cls(means, loadings, independent)

    @classmethod
    def from_model(cls, model: PathDelayModel) -> "BatchedForms":
        return cls(
            np.asarray(model.means, dtype=float),
            np.asarray(model.loadings, dtype=float),
            np.asarray(model.independent, dtype=float),
        )

    def to_forms(self) -> list[CanonicalForm]:
        """Scalar forms with dense ascending-factor sensitivity dicts."""
        return [
            CanonicalForm(
                float(self.means[i]),
                {f: float(self.loadings[i, f]) for f in range(self.n_factors)},
                float(self.independent[i]),
            )
            for i in range(self.n)
        ]

    def take(self, rows: np.ndarray) -> "BatchedForms":
        return BatchedForms(
            self.means[rows], self.loadings[rows], self.independent[rows]
        )

    def variances(self) -> np.ndarray:
        """Row variances, replaying the dict fold in column order."""
        acc = np.zeros(self.n)
        for f in range(self.n_factors):
            column = self.loadings[:, f]
            acc = acc + column * column
        return acc + self.independent**2


def _fold_product(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Left fold of ``sum(a[:, f] * b[:, f])`` in ascending column order."""
    acc = np.zeros(a.shape[0])
    for f in range(a.shape[1]):
        acc = acc + a[:, f] * b[:, f]
    return acc


def batched_sum(a: BatchedForms, b: BatchedForms) -> BatchedForms:
    """Row-wise ``a + b``, bit-identical to ``CanonicalForm.__add__``."""
    independent = _hypot(a.independent, b.independent).astype(float)
    return BatchedForms(
        a.means + b.means, a.loadings + b.loadings, independent
    )


def batched_maximum(
    a: BatchedForms, b: BatchedForms, kernel: str = "vectorized"
) -> tuple[BatchedForms, np.ndarray]:
    """Row-wise Clark max; returns ``(max forms, tightness)``.

    The tightness is ``P(a >= b)`` under the joint Gaussian (Clark's
    blending weight); degenerate rows report 1.0 when ``a`` wins the
    mean comparison and 0.0 otherwise.
    """
    if kernel == "compiled":
        return _batched_maximum_compiled(a, b)

    var_a = a.variances()
    var_b = b.variances()
    cov = _fold_product(a.loadings, b.loadings)
    denom = np.sqrt(var_a) * np.sqrt(var_b)
    safe_denom = np.where(denom == 0.0, 1.0, denom)
    rho = np.where(denom == 0.0, 0.0, cov / safe_denom)
    theta2 = var_a + var_b - (2.0 * rho) * np.sqrt(var_a * var_b)
    degenerate = theta2 <= _THETA2_FLOOR
    theta = np.sqrt(np.where(degenerate, 1.0, theta2))
    alpha = (a.means - b.means) / theta
    phi = stats.norm.pdf(alpha)
    tightness = stats.norm.cdf(alpha)

    mean = a.means * tightness + b.means * (1.0 - tightness) + theta * phi
    second = (
        (var_a + a.means**2) * tightness
        + (var_b + b.means**2) * (1.0 - tightness)
        + (a.means + b.means) * theta * phi
    )
    variance = np.maximum(second - mean * mean, 0.0)

    loadings = (
        a.loadings * tightness[:, None]
        + b.loadings * (1.0 - tightness[:, None])
    )
    shared_var = _fold_product(loadings, loadings)
    independent = np.sqrt(np.maximum(variance - shared_var, 0.0))

    if degenerate.any():
        a_wins = a.means >= b.means
        mean = np.where(degenerate, np.where(a_wins, a.means, b.means), mean)
        independent = np.where(
            degenerate,
            np.where(a_wins, a.independent, b.independent),
            independent,
        )
        loadings = np.where(
            degenerate[:, None],
            np.where(a_wins[:, None], a.loadings, b.loadings),
            loadings,
        )
        tightness = np.where(
            degenerate, np.where(a_wins, 1.0, 0.0), tightness
        )
    return BatchedForms(mean, loadings, independent), tightness


def _batched_maximum_compiled(
    a: BatchedForms, b: BatchedForms
) -> tuple[BatchedForms, np.ndarray]:
    """numba twin: compiled folds around the NumPy Gaussian pdf/cdf."""
    from repro.kernels.criticality import clark_blend_kernel, clark_moments_kernel

    n = a.n
    var_a_out = np.empty(n)
    var_b_out = np.empty(n)
    theta2_out = np.empty(n)
    alpha_out = np.empty(n)
    clark_moments_kernel(
        a.means, a.loadings, a.independent,
        b.means, b.loadings, b.independent,
        var_a_out, var_b_out, theta2_out, alpha_out,
    )
    # scipy's ufuncs stay outside the compiled region.
    phi = stats.norm.pdf(alpha_out)
    tightness = stats.norm.cdf(alpha_out)

    mean_out = np.empty(n)
    load_out = np.empty_like(a.loadings)
    ind_out = np.empty(n)
    tight_out = np.array(tightness, dtype=float)
    clark_blend_kernel(
        a.means, a.loadings, a.independent,
        b.means, b.loadings, b.independent,
        var_a_out, var_b_out, theta2_out, phi,
        mean_out, load_out, ind_out, tight_out,
    )
    return BatchedForms(mean_out, load_out, ind_out), tight_out


def _fold_maximum(forms: BatchedForms, kernel: str) -> BatchedForms:
    """Left-fold Clark max over all rows (a 1-row result)."""
    acc = forms.take(np.array([0], dtype=np.intp))
    for i in range(1, forms.n):
        acc, _ = batched_maximum(
            acc, forms.take(np.array([i], dtype=np.intp)), kernel=kernel
        )
    return acc


def arrival_times(
    graph: nx.DiGraph,
    node_delays: Mapping[Node, CanonicalForm],
    sources: Iterable[Node],
    source_arrivals: Mapping[Node, CanonicalForm] | None = None,
    kernel: str = "auto",
) -> dict[Node, CanonicalForm]:
    """Latest statistical arrival at every reachable node, batched.

    Drop-in for :func:`repro.variation.ssta.topological_arrival_times`
    (which remains the bit-compared reference, ``kernel="reference"``).
    Nodes are processed level by level — ``level(n) = 1 + max(level(p))``
    over reachable predecessors — and within a level the fan-in fold runs
    in rounds: round ``k`` combines each node's accumulated arrival with
    its ``k``-th predecessor, which replays the reference's left fold
    exactly while keeping every Clark max a batched row-wise operation.
    """
    kernel = _check_kernel(kernel)
    if kernel == "reference":
        return topological_arrival_times(
            graph, node_delays, sources, source_arrivals
        )
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("combinational graph must be acyclic")

    source_set = set(sources)
    starts = source_arrivals or {}

    # Reachability and levels in one topological pass.
    level: dict[Node, int] = {node: 0 for node in source_set}
    pred_lists: dict[Node, list[Node]] = {}
    order: list[Node] = []
    for node in nx.topological_sort(graph):
        if node in source_set:
            order.append(node)
            continue
        incoming = [p for p in graph.predecessors(node) if p in level]
        if not incoming:
            continue
        if node_delays.get(node) is None:
            raise KeyError(
                f"node {node!r} is reachable from the sources but has no "
                "entry in node_delays"
            )
        pred_lists[node] = incoming
        level[node] = 1 + max(level[p] for p in incoming)
        order.append(node)
    for node in source_set:
        # The reference reports every declared source, graph node or not.
        if node not in graph:
            order.append(node)

    n_factors = 0
    for form in (*node_delays.values(), *starts.values()):
        if form.sensitivities:
            n_factors = max(n_factors, max(form.sensitivities) + 1)

    row_of = {node: i for i, node in enumerate(order)}
    n_rows = len(order)
    means = np.zeros(n_rows)
    loadings = np.zeros((n_rows, n_factors))
    independent = np.zeros(n_rows)

    def write_row(row: int, forms: BatchedForms, local: int) -> None:
        means[row] = forms.means[local]
        loadings[row] = forms.loadings[local]
        independent[row] = forms.independent[local]

    for node in source_set:
        start = starts.get(node, None)
        if start is not None:
            row = row_of[node]
            means[row] = start.mean
            for idx, coeff in start.sensitivities.items():
                loadings[row, idx] = coeff
            independent[row] = start.independent

    by_level: dict[int, list[Node]] = {}
    for node in order:
        if node not in source_set:
            by_level.setdefault(level[node], []).append(node)

    store = BatchedForms(means, loadings, independent)
    for lvl in sorted(by_level):
        nodes = by_level[lvl]
        preds = [pred_lists[node] for node in nodes]
        first = np.array([row_of[p[0]] for p in preds], dtype=np.intp)
        acc = store.take(first)
        max_fanin = max(len(p) for p in preds)
        for k in range(1, max_fanin):
            rows = np.array(
                [i for i, p in enumerate(preds) if len(p) > k], dtype=np.intp
            )
            others = np.array(
                [row_of[p[k]] for p in preds if len(p) > k], dtype=np.intp
            )
            merged, _ = batched_maximum(
                acc.take(rows), store.take(others), kernel=kernel
            )
            acc.means[rows] = merged.means
            acc.loadings[rows] = merged.loadings
            acc.independent[rows] = merged.independent
        delays = BatchedForms.from_forms(
            [node_delays[node] for node in nodes], n_factors
        )
        combined = batched_sum(acc, delays)
        for i, node in enumerate(nodes):
            write_row(row_of[node], combined, i)

    out: dict[Node, CanonicalForm] = {}
    for node in order:
        row = row_of[node]
        out[node] = CanonicalForm(
            float(means[row]),
            {
                f: float(loadings[row, f])
                for f in range(n_factors)
                if loadings[row, f] != 0.0
            },
            float(independent[row]),
        )
    return out


def _binary_exceedance(
    item: BatchedForms, versus: BatchedForms
) -> np.ndarray:
    """``P(item >= versus)`` row-wise under the joint Gaussian."""
    var_a = item.variances()
    var_b = versus.variances()
    cov = _fold_product(item.loadings, versus.loadings)
    theta2 = var_a + var_b - 2.0 * cov
    degenerate = theta2 <= _THETA2_FLOOR
    theta = np.sqrt(np.where(degenerate, 1.0, theta2))
    alpha = (item.means - versus.means) / theta
    prob = stats.norm.cdf(alpha)
    return np.where(
        degenerate, np.where(item.means >= versus.means, 1.0, 0.0), prob
    )


def member_criticality(
    forms: BatchedForms, kernel: str = "auto"
) -> np.ndarray:
    """``P(form i is the maximum of the set)`` for every row.

    Analytic, via Clark: each member is compared against the
    moment-matched max of the *other* members (a left fold in row order),
    so the probabilities are the standard SSTA criticality approximation
    — they need not sum to exactly one.
    """
    kernel = _check_kernel(kernel)
    n = forms.n
    if n == 1:
        return np.ones(1)
    if kernel == "reference":
        return _member_criticality_reference(forms.to_forms())
    crit = np.empty(n)
    for i in range(n):
        others = forms.take(
            np.array([j for j in range(n) if j != i], dtype=np.intp)
        )
        rest = _fold_maximum(others, kernel)
        crit[i] = _binary_exceedance(
            forms.take(np.array([i], dtype=np.intp)), rest
        )[0]
    return crit


def _member_criticality_reference(
    forms: list[CanonicalForm],
) -> np.ndarray:
    """Per-form scalar twin of :func:`member_criticality`."""
    n = len(forms)
    crit = np.empty(n)
    for i, form in enumerate(forms):
        others = [forms[j] for j in range(n) if j != i]
        rest = others[0]
        for other in others[1:]:
            rest = rest.maximum(other)
        var_a = form.variance
        var_b = rest.variance
        cov = form.covariance(rest)
        theta2 = var_a + var_b - 2.0 * cov
        if theta2 <= _THETA2_FLOOR:
            crit[i] = 1.0 if form.mean >= rest.mean else 0.0
        else:
            alpha = (form.mean - rest.mean) / math.sqrt(theta2)
            crit[i] = float(stats.norm.cdf(alpha))
    return crit


def group_criticality(
    model: PathDelayModel | BatchedForms,
    groups: Iterable[np.ndarray],
    kernel: str = "auto",
) -> list[np.ndarray]:
    """Criticality of every member within each group of path indices.

    ``groups`` are index arrays into the model's paths (the configure
    stage's ``into``/``from``/pair path groups); the result is one
    probability array per group: ``P(member is the group's delay max)``.
    """
    forms = (
        model
        if isinstance(model, BatchedForms)
        else BatchedForms.from_model(model)
    )
    kernel = _check_kernel(kernel)
    out: list[np.ndarray] = []
    for group in groups:
        idx = np.asarray(group, dtype=np.intp)
        if idx.size == 0:
            out.append(np.zeros(0))
            continue
        out.append(member_criticality(forms.take(idx), kernel=kernel))
    return out


def pair_criticality(
    model: PathDelayModel | BatchedForms,
    groups: Sequence[np.ndarray],
    kernel: str = "auto",
) -> np.ndarray:
    """``P(group g contains the overall maximum)`` for each path group.

    Each group is collapsed to its Clark max, then the group maxima
    compete: the standard "which flip-flop pair limits the chip" question
    of the PST-buffer criticality papers.
    """
    forms = (
        model
        if isinstance(model, BatchedForms)
        else BatchedForms.from_model(model)
    )
    kernel = _check_kernel(kernel)
    maxima: list[BatchedForms] = []
    for group in groups:
        idx = np.asarray(group, dtype=np.intp)
        if idx.size == 0:
            raise ValueError("pair_criticality groups must be non-empty")
        maxima.append(_fold_maximum(forms.take(idx), kernel))
    stacked = BatchedForms(
        np.concatenate([m.means for m in maxima]),
        np.vstack([m.loadings for m in maxima]),
        np.concatenate([m.independent for m in maxima]),
    )
    return member_criticality(stacked, kernel=kernel)


__all__ = [
    "CRITICALITY_KERNELS",
    "BatchedForms",
    "arrival_times",
    "batched_maximum",
    "batched_sum",
    "group_criticality",
    "member_criticality",
    "pair_criticality",
]
