"""Legacy EffiTest facade over the staged pipeline (Fig. 4 of the paper).

The flow itself lives in :mod:`repro.api`: the offline stage (the paper's
``Tp``: path selection §3.1, multiplexing §3.2, hold bounds §3.5) is
:class:`repro.api.stages.OfflineStage`, the on-tester / off-tester stages
(``Tt``/``Ts``: aligned test §3.3, prediction eqs. 4–5, configuration
§3.4) are the online stages, and :class:`repro.api.engine.Engine` wires
them behind a content-addressed preparation cache.

This module keeps the original surface:

* :class:`EffiTestConfig` — the **deprecated** composite of what is now
  :class:`repro.api.OfflineConfig` + :class:`repro.api.OnlineConfig`,
* :class:`Preparation` / :class:`PopulationRunResult` — the artifact types
  shared by the facade and the engine,
* :class:`EffiTest` — a thin facade binding one circuit to a private
  engine; new code should use :class:`repro.api.Engine` directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

import numpy as np

from repro.circuit.buffers import BufferPlan
from repro.circuit.generator import Circuit
from repro.core.alignment import BatchAlignment
from repro.core.configuration import ConfigStructure, ConfigurationResult
from repro.core.grouping import GroupingResult
from repro.core.holdtime import HoldBounds
from repro.core.multiplexing import MultiplexPlan
from repro.core.population import PopulationTestResult
from repro.core.prediction import ConditionalPredictor
from repro.core.reduction import (
    ArtifactsNotRetained,
    RunSummary,
    summarize_shard,
)
from repro.core.testflow import ChipTestResult, test_chip
from repro.core.yields import CircuitPopulation
from repro.tester.freqstep import PathwiseResult
from repro.tester.oracle import ChipOracle

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.api.config import OfflineConfig, OnlineConfig


@dataclass(frozen=True)
class EffiTestConfig:
    """All knobs of the framework, defaulted to the paper's setup.

    .. deprecated::
        This is the composite shim over the offline/online split.  New code
        should pass :class:`repro.api.OfflineConfig` and
        :class:`repro.api.OnlineConfig` to :class:`repro.api.Engine`; the
        :attr:`offline` / :attr:`online` properties and :meth:`from_parts`
        bridge the two worlds.
    """

    # §3.1 grouping / selection
    start_threshold: float = 0.95
    threshold_step: float = 0.05
    floor_threshold: float = 0.50
    pc_criterion: str = "largest"
    relative_threshold: float = 0.03
    variance_fraction: float = 0.95
    # §3.2 multiplexing
    fill_slots: bool = True
    fill_sigma_fraction: float = 0.5  # fill only still-poorly-predicted paths
    max_fill_factor: float = 1.0  # fills <= factor * |selected|
    fill_rank: str = "static"  # slot-fill ranking (see OfflineConfig)
    batch_affinity: bool = False  # extension: mean-affinity batch packing
    # §3.3 aligned test
    epsilon: float | None = None  # None -> calibrated from pathwise target
    pathwise_iterations_target: int = 9
    sigma_window: float = 3.0
    k0: float = 1000.0
    kd: float = 1.0
    align: bool = True
    chip_shard_size: int | None = None  # population-engine shard streaming
    artifacts: str = "dense"  # per-chip output retention (see OnlineConfig)
    # §3.4 configuration — xi search tolerance (None -> lattice step / 4)
    xi_tolerance: float | None = None
    configure_kernel: str = "auto"  # relaxation engine (see OnlineConfig)
    test_kernel: str = "auto"  # stepping engine (see OnlineConfig)
    test_budget: str = "uniform"  # iteration budgets (see OnlineConfig)
    criticality_kernel: str = "auto"  # criticality engine (see OnlineConfig)
    shard_workers: int | str | None = None  # intra-run shard threads
    # §3.5 hold bounds
    hold_yield: float = 0.99
    hold_samples: int = 1000
    hold_exact: bool = False  # exact covering MILP instead of greedy drop
    hold_backend: str = "auto"  # solver route for the exact hold MILP
    # buffer policy (Table 1 setup: tau = T/8, 20 discrete steps)
    range_fraction: float = 1.0 / 8.0
    n_steps: int = 20
    # misc
    test_all_paths: bool = False  # Fig. 8 mode: skip statistical prediction
    seed: int = 20160605

    def __post_init__(self) -> None:
        warnings.warn(
            "EffiTestConfig is deprecated; pass repro.api.OfflineConfig and "
            "repro.api.OnlineConfig to repro.api.Engine instead",
            DeprecationWarning,
            stacklevel=2,
        )

    @property
    def offline(self) -> "OfflineConfig":
        """Projection onto the cache-keyed offline knobs."""
        from repro.api.config import OfflineConfig

        # Field names are identical by construction (asserted in tests), so
        # the projection is derived rather than hand-maintained.
        return OfflineConfig(**{
            f.name: getattr(self, f.name) for f in fields(OfflineConfig)
        })

    @property
    def online(self) -> "OnlineConfig":
        """Projection onto the per-run knobs."""
        from repro.api.config import OnlineConfig

        return OnlineConfig(**{
            f.name: getattr(self, f.name) for f in fields(OnlineConfig)
        })

    @classmethod
    def from_parts(
        cls, offline: "OfflineConfig", online: "OnlineConfig"
    ) -> "EffiTestConfig":
        """Recompose the legacy composite from the split configs."""
        values = {f.name: getattr(offline, f.name) for f in fields(offline)}
        values.update({f.name: getattr(online, f.name) for f in fields(online)})
        return cls(**values)


@dataclass
class Preparation:
    """Everything computed offline, before any chip is touched."""

    buffer_plan: BufferPlan
    grouping: GroupingResult | None
    plan: MultiplexPlan
    specs: list[BatchAlignment]
    x_inits: list[np.ndarray]
    hold_bounds: HoldBounds
    default_settings: dict[str, float]
    predictor: ConditionalPredictor | None
    structure: ConfigStructure
    epsilon: float
    prior_means: np.ndarray
    prior_stds: np.ndarray
    offline_seconds: float
    sigma_window: float = 3.0
    #: Per-solve observability from the offline MILPs (empty when the
    #: greedy hold heuristic ran): :class:`~repro.opt.solve.SolveStats`
    #: records — backend chosen, node counts, basis-reuse rate, whether a
    #: warm hint was consumed.
    solver_stats: tuple = ()
    #: The path-delay model the preparation was built from.  The adaptive
    #: test budget (``OnlineConfig(test_budget="adaptive")``) needs it at
    #: run time for criticality and corner-interval computations; ``None``
    #: in preparations restored from a pre-v2 disk cache, in which case
    #: the adaptive path refuses to run rather than guessing.
    model: "object | None" = None

    @property
    def n_tested(self) -> int:
        """The paper's ``n_pt``: paths actually frequency-stepped."""
        return self.plan.n_measured


class PopulationRunResult:
    """Outcome of the full flow over a chip population at one period.

    Since the streaming-reduction refactor this is a *view* over a
    :class:`~repro.core.reduction.RunSummary`: the population statistics
    (``yield_fraction``, ``mean_iterations``, ``n_tested``, per-chip
    timings) are always available, while the dense per-chip artifacts
    (``test``, ``bounds_lower``/``bounds_upper``, ``configuration``) exist
    only when the run retained them (``OnlineConfig(artifacts="dense")``,
    the default for direct runs) and raise
    :class:`~repro.core.reduction.ArtifactsNotRetained` otherwise.

    The legacy keyword construction from dense stage artifacts still works
    and produces a dense-mode summary.
    """

    def __init__(
        self,
        period: float | None = None,
        test: PopulationTestResult | None = None,
        bounds_lower: np.ndarray | None = None,
        bounds_upper: np.ndarray | None = None,
        configuration: ConfigurationResult | None = None,
        passed: np.ndarray | None = None,
        tester_seconds_per_chip: float = 0.0,
        config_seconds_per_chip: float = 0.0,
        *,
        summary: RunSummary | None = None,
    ):
        if summary is None:
            if (
                period is None
                or test is None
                or bounds_lower is None
                or bounds_upper is None
                or configuration is None
                or passed is None
            ):
                raise TypeError(
                    "pass either summary= or ALL dense stage artifacts "
                    "(period, test, bounds_lower, bounds_upper, "
                    "configuration, passed)"
                )
            summary = summarize_shard(
                period,
                test,
                bounds_lower,
                bounds_upper,
                configuration,
                passed,
                tester_seconds_per_chip,
                config_seconds_per_chip,
                artifacts="dense",
            )
        self.summary = summary

    @classmethod
    def from_summary(cls, summary: RunSummary) -> "PopulationRunResult":
        return cls(summary=summary)

    def _dense(self):
        dense = self.summary.dense
        if dense is None:
            raise ArtifactsNotRetained(
                "this run kept artifacts="
                f"{self.summary.artifacts!r}; re-run with "
                "OnlineConfig(artifacts='dense') to keep the per-chip test "
                "result, delay bounds and configuration"
            )
        return dense

    # -- identity / scalars (every retention mode) -----------------------------

    @property
    def period(self) -> float:
        return self.summary.period

    @property
    def n_chips(self) -> int:
        return self.summary.n_chips

    @property
    def artifacts(self) -> str:
        """Retention mode of this run ("summary" | "compact" | "dense")."""
        return self.summary.artifacts

    @property
    def tester_seconds_per_chip(self) -> float:
        return self.summary.tester_seconds_per_chip

    @property
    def config_seconds_per_chip(self) -> float:
        return self.summary.config_seconds_per_chip

    @property
    def n_tested(self) -> int:
        """Paths actually measured in this run (== the plan's ``n_pt``)."""
        return self.summary.n_measured

    @property
    def mean_iterations(self) -> float:
        """The paper's ``t_a``."""
        return self.summary.mean_iterations

    @property
    def iterations_per_tested_path(self) -> float:
        """The paper's ``t_v = t_a / n_pt`` (0 when nothing was tested)."""
        return self.summary.iterations_per_tested_path

    @property
    def yield_fraction(self) -> float:
        """The paper's ``y_t``."""
        return self.summary.yield_fraction

    # -- per-chip columns ("compact" and "dense") ------------------------------

    @property
    def passed(self) -> np.ndarray:
        if self.summary.passed is None:
            raise ArtifactsNotRetained(
                "per-chip pass flags were not retained; re-run with "
                "OnlineConfig(artifacts='compact') or 'dense'"
            )
        return self.summary.passed

    @property
    def iterations(self) -> np.ndarray:
        """Per-chip iteration counts (compact column)."""
        if self.summary.iterations is None:
            raise ArtifactsNotRetained(
                "per-chip iteration counts were not retained; re-run with "
                "OnlineConfig(artifacts='compact') or 'dense'"
            )
        return self.summary.iterations

    # -- dense artifacts ("dense" only) ----------------------------------------

    @property
    def test(self) -> PopulationTestResult:
        return self._dense().test

    @property
    def bounds_lower(self) -> np.ndarray:
        """(n_chips, n_paths) full required-path lower bounds."""
        return self._dense().bounds_lower

    @property
    def bounds_upper(self) -> np.ndarray:
        return self._dense().bounds_upper

    @property
    def configuration(self) -> ConfigurationResult:
        return self._dense().configuration


class EffiTest:
    """The EffiTest framework bound to one circuit.

    .. deprecated::
        Thin facade over :class:`repro.api.Engine`; kept so existing
        callers and the published quickstart keep working.  Each instance
        owns a private engine, so preparations are cached per facade.
    """

    def __init__(self, circuit: Circuit, config: EffiTestConfig | None = None):
        from repro.api.engine import Engine

        warnings.warn(
            "EffiTest is deprecated; use repro.api.Engine directly",
            DeprecationWarning,
            stacklevel=2,
        )
        self.circuit = circuit
        if config is None:
            with warnings.catch_warnings():
                # The caller was already warned above; the composite we
                # default-construct on their behalf should not warn twice.
                warnings.simplefilter("ignore", DeprecationWarning)
                config = EffiTestConfig()
        self.config = config
        self._engine = Engine(
            offline=self.config.offline, online=self.config.online
        )

    @property
    def engine(self):
        """The underlying :class:`repro.api.Engine` (shared cache)."""
        return self._engine

    # -- offline ---------------------------------------------------------------

    def prepare(self, clock_period: float) -> Preparation:
        """Run the offline flow; ``clock_period`` sizes the buffer ranges
        (the design's original period) and anchors nothing else."""
        # Project the config per call: the public `config` attribute is
        # mutable and some legacy callers reassign it after construction.
        return self._engine.prepare(
            self.circuit, clock_period, self.config.offline
        )

    # -- per-population ----------------------------------------------------------

    def run(
        self,
        population: CircuitPopulation,
        period: float,
        preparation: Preparation | None = None,
        clock_period: float | None = None,
    ) -> PopulationRunResult:
        """Test, predict, configure and pass/fail every chip at ``period``."""
        return self._engine.run(
            self.circuit,
            population,
            period,
            preparation=preparation,
            clock_period=clock_period,
            offline=self.config.offline,
            online=self.config.online,
        )

    def run_chip(
        self, true_delays: np.ndarray, preparation: Preparation
    ) -> ChipTestResult:
        """Scalar reference flow (Procedure 2) for one chip's delays."""
        oracle = ChipOracle(true_delays)
        return test_chip(
            oracle,
            preparation.plan,
            preparation.specs,
            preparation.prior_means,
            preparation.prior_stds,
            preparation.epsilon,
            sigma_window=self.config.sigma_window,
            k0=self.config.k0,
            kd=self.config.kd,
            align=self.config.align,
            x_inits=preparation.x_inits,
        )

    def pathwise_baseline(self, population: CircuitPopulation) -> PathwiseResult:
        """The comparison method of [2, 6, 8, 9]: per-path binary search
        over all required paths with the same resolution ``epsilon``."""
        return self._engine.pathwise_baseline(
            self.circuit, population, self.config.offline
        )
