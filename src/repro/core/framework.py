"""EffiTest end-to-end framework (Fig. 4 of the paper).

Offline (once per circuit design, the paper's ``Tp``):

1. path selection for prediction (§3.1, Procedure 1),
2. path test multiplexing + slot filling (§3.2),
3. hold-time tuning bounds (§3.5),
4. alignment structures and the configuration constraint skeleton.

On the tester (per chip, ``Tt``): scan test with delay alignment
(§3.3, Procedure 2).  Off the tester (``Ts``): statistical prediction of
untested delays (eqs. 4–5) and buffer configuration (§3.4), then the final
pass/fail test.

:class:`EffiTest` wires the pieces; :meth:`EffiTest.run` executes the whole
flow over a Monte-Carlo population and reports the Table 1/Table 2
quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.buffers import BufferPlan
from repro.circuit.generator import Circuit
from repro.circuit.insertion import plan_buffers
from repro.core.alignment import BatchAlignment, build_batch_alignment
from repro.core.configuration import (
    ConfigStructure,
    ConfigurationResult,
    build_config_structure,
    configure_chips,
)
from repro.core.grouping import GroupingResult, group_and_select
from repro.core.holdtime import HoldBounds, compute_hold_bounds, hold_feasible_settings
from repro.core.multiplexing import MultiplexPlan, plan_multiplexing
from repro.core.population import PopulationTestResult, test_population
from repro.core.prediction import ConditionalPredictor, build_predictor
from repro.core.testflow import ChipTestResult, test_chip
from repro.core.yields import CircuitPopulation, configured_pass
from repro.tester.freqstep import PathwiseResult, pathwise_frequency_stepping
from repro.tester.oracle import ChipOracle
from repro.utils.rng import derive_seed
from repro.utils.timing import Stopwatch


@dataclass(frozen=True)
class EffiTestConfig:
    """All knobs of the framework, defaulted to the paper's setup."""

    # §3.1 grouping / selection
    start_threshold: float = 0.95
    threshold_step: float = 0.05
    floor_threshold: float = 0.50
    pc_criterion: str = "largest"
    relative_threshold: float = 0.03
    variance_fraction: float = 0.95
    # §3.2 multiplexing
    fill_slots: bool = True
    fill_sigma_fraction: float = 0.5  # fill only still-poorly-predicted paths
    max_fill_factor: float = 1.0  # fills <= factor * |selected|
    batch_affinity: bool = False  # extension: mean-affinity batch packing
    # §3.3 aligned test
    epsilon: float | None = None  # None -> calibrated from pathwise target
    pathwise_iterations_target: int = 9
    sigma_window: float = 3.0
    k0: float = 1000.0
    kd: float = 1.0
    align: bool = True
    # §3.4 configuration — xi search tolerance (None -> lattice step / 4)
    xi_tolerance: float | None = None
    # §3.5 hold bounds
    hold_yield: float = 0.99
    hold_samples: int = 1000
    # buffer policy (Table 1 setup: tau = T/8, 20 discrete steps)
    range_fraction: float = 1.0 / 8.0
    n_steps: int = 20
    # misc
    test_all_paths: bool = False  # Fig. 8 mode: skip statistical prediction
    seed: int = 20160605


@dataclass
class Preparation:
    """Everything computed offline, before any chip is touched."""

    buffer_plan: BufferPlan
    grouping: GroupingResult | None
    plan: MultiplexPlan
    specs: list[BatchAlignment]
    x_inits: list[np.ndarray]
    hold_bounds: HoldBounds
    default_settings: dict[str, float]
    predictor: ConditionalPredictor | None
    structure: ConfigStructure
    epsilon: float
    prior_means: np.ndarray
    prior_stds: np.ndarray
    offline_seconds: float

    @property
    def n_tested(self) -> int:
        """The paper's ``n_pt``: paths actually frequency-stepped."""
        return self.plan.n_measured


@dataclass
class PopulationRunResult:
    """Outcome of the full flow over a chip population at one period."""

    period: float
    test: PopulationTestResult
    bounds_lower: np.ndarray  # (n_chips, n_paths) full required-path bounds
    bounds_upper: np.ndarray
    configuration: ConfigurationResult
    passed: np.ndarray
    tester_seconds_per_chip: float
    config_seconds_per_chip: float

    @property
    def mean_iterations(self) -> float:
        """The paper's ``t_a``."""
        return self.test.mean_iterations

    @property
    def iterations_per_tested_path(self) -> float:
        """The paper's ``t_v = t_a / n_pt``."""
        return self.test.mean_iterations / max(len(self.test.measured_indices), 1)

    @property
    def yield_fraction(self) -> float:
        """The paper's ``y_t``."""
        return float(self.passed.mean())


class EffiTest:
    """The EffiTest framework bound to one circuit."""

    def __init__(self, circuit: Circuit, config: EffiTestConfig | None = None):
        self.circuit = circuit
        self.config = config or EffiTestConfig()

    # -- offline ---------------------------------------------------------------

    def prepare(self, clock_period: float) -> Preparation:
        """Run the offline flow; ``clock_period`` sizes the buffer ranges
        (the design's original period) and anchors nothing else."""
        cfg = self.config
        circuit = self.circuit
        watch = Stopwatch()

        with watch.measure("offline"):
            buffer_plan = plan_buffers(
                list(circuit.buffered_ffs),
                clock_period,
                range_fraction=cfg.range_fraction,
                n_steps=cfg.n_steps,
            )

            model = circuit.paths.model
            prior_means = model.means
            prior_stds = model.stds()

            if cfg.test_all_paths:
                grouping = None
                selected = np.arange(circuit.paths.n_paths, dtype=np.intp)
                fill = False
            else:
                grouping = group_and_select(
                    model,
                    start_threshold=cfg.start_threshold,
                    threshold_step=cfg.threshold_step,
                    floor_threshold=cfg.floor_threshold,
                    pc_criterion=cfg.pc_criterion,
                    variance_fraction=cfg.variance_fraction,
                    relative_threshold=cfg.relative_threshold,
                )
                selected = grouping.tested_indices
                fill = cfg.fill_slots

            plan = plan_multiplexing(
                circuit.paths,
                selected,
                mutual_exclusions=circuit.mutual_exclusions,
                fill_slots=fill,
                affinity=cfg.batch_affinity,
                fill_sigma_fraction=cfg.fill_sigma_fraction,
                max_fill_factor=cfg.max_fill_factor,
            )

            hold_bounds = compute_hold_bounds(
                circuit.short_paths,
                buffer_plan,
                target_yield=cfg.hold_yield,
                n_samples=cfg.hold_samples,
                seed=derive_seed(cfg.seed, circuit.name, "hold"),
            )
            default_settings = hold_feasible_settings(
                buffer_plan, hold_bounds, circuit.ff_names
            )

            specs = []
            x_inits = []
            for batch in plan.batches:
                spec = build_batch_alignment(
                    batch.path_indices,
                    circuit.paths.source_idx,
                    circuit.paths.sink_idx,
                    circuit.ff_names,
                    buffer_plan,
                    hold_pairs=hold_bounds.pairs,
                    hold_lambdas=hold_bounds.lambdas,
                    default_settings=default_settings,
                )
                specs.append(spec)
                x_inits.append(
                    np.array([default_settings[name] for name in spec.buffer_names])
                )

            predictor = None
            if plan.n_measured < circuit.paths.n_paths:
                predictor = build_predictor(model, plan.measured)

            structure = build_config_structure(
                circuit.paths, buffer_plan, hold_bounds
            )

            epsilon = cfg.epsilon
            if epsilon is None:
                widths = 2.0 * cfg.sigma_window * prior_stds
                epsilon = float(
                    np.median(widths) / 2**cfg.pathwise_iterations_target
                )

        return Preparation(
            buffer_plan=buffer_plan,
            grouping=grouping,
            plan=plan,
            specs=specs,
            x_inits=x_inits,
            hold_bounds=hold_bounds,
            default_settings=default_settings,
            predictor=predictor,
            structure=structure,
            epsilon=epsilon,
            prior_means=prior_means,
            prior_stds=prior_stds,
            offline_seconds=watch.total("offline"),
        )

    # -- per-population ----------------------------------------------------------

    def run(
        self,
        population: CircuitPopulation,
        period: float,
        preparation: Preparation | None = None,
        clock_period: float | None = None,
    ) -> PopulationRunResult:
        """Test, predict, configure and pass/fail every chip at ``period``."""
        prep = preparation or self.prepare(clock_period or period)
        cfg = self.config
        watch = Stopwatch()
        n_chips = population.n_chips

        with watch.measure("tester"):
            test = test_population(
                population.required,
                prep.plan,
                prep.specs,
                prep.prior_means,
                prep.prior_stds,
                prep.epsilon,
                sigma_window=cfg.sigma_window,
                k0=cfg.k0,
                kd=cfg.kd,
                align=cfg.align,
                x_inits=prep.x_inits,
            )

        with watch.measure("config"):
            lower, upper = self._full_bounds(population, prep, test)
            configuration = configure_chips(
                prep.structure,
                lower,
                upper,
                period,
                xi_tolerance=cfg.xi_tolerance,
            )
        passed = configured_pass(self.circuit, population, configuration, period)

        return PopulationRunResult(
            period=period,
            test=test,
            bounds_lower=lower,
            bounds_upper=upper,
            configuration=configuration,
            passed=passed,
            tester_seconds_per_chip=watch.total("tester") / n_chips,
            config_seconds_per_chip=watch.total("config") / n_chips,
        )

    def run_chip(
        self, true_delays: np.ndarray, preparation: Preparation
    ) -> ChipTestResult:
        """Scalar reference flow (Procedure 2) for one chip's delays."""
        oracle = ChipOracle(true_delays)
        return test_chip(
            oracle,
            preparation.plan,
            preparation.specs,
            preparation.prior_means,
            preparation.prior_stds,
            preparation.epsilon,
            sigma_window=self.config.sigma_window,
            k0=self.config.k0,
            kd=self.config.kd,
            align=self.config.align,
            x_inits=preparation.x_inits,
        )

    def pathwise_baseline(self, population: CircuitPopulation) -> PathwiseResult:
        """The comparison method of [2, 6, 8, 9]: per-path binary search
        over all required paths with the same resolution ``epsilon``."""
        cfg = self.config
        model = self.circuit.paths.model
        epsilon = cfg.epsilon
        if epsilon is None:
            widths = 2.0 * cfg.sigma_window * model.stds()
            epsilon = float(np.median(widths) / 2**cfg.pathwise_iterations_target)
        return pathwise_frequency_stepping(
            population.required,
            model.means,
            model.stds(),
            epsilon,
            sigma_window=cfg.sigma_window,
        )

    # -- helpers -------------------------------------------------------------------

    def _full_bounds(
        self,
        population: CircuitPopulation,
        prep: Preparation,
        test: PopulationTestResult,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dense (n_chips, n_paths) bounds: tested ranges + predictions."""
        n_chips = population.n_chips
        n_paths = self.circuit.paths.n_paths
        lower = np.empty((n_chips, n_paths))
        upper = np.empty((n_chips, n_paths))
        lower[:, test.measured_indices] = test.lower
        upper[:, test.measured_indices] = test.upper

        if prep.predictor is not None:
            # Conservative conditioning on measured *upper* bounds (§3.4).
            measured_upper = test.upper
            pred_lower, pred_upper = prep.predictor.predict_intervals(
                measured_upper, sigma_window=self.config.sigma_window
            )
            lower[:, prep.predictor.predicted_idx] = pred_lower
            upper[:, prep.predictor.predicted_idx] = pred_upper
        return lower, upper


