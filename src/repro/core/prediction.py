"""Conditional Gaussian delay prediction (§3.1, eqs. 4–5 of the paper).

With jointly Gaussian path delays ``[d_k, D_t] ~ N(mu, Sigma)``, measuring
``D_t = d_t`` updates the remaining delay ``d_k`` to

    mu'_k    = mu_k + Sigma_kt Sigma_t^-1 (d_t - mu_t)          (eq. 4)
    sigma'^2 = sigma_k^2 - Sigma_kt Sigma_t^-1 Sigma_tk         (eq. 5)

The conditional variance is data-independent (it depends only on the
covariance), which the paper exploits twice: to decide *which* extra paths
to measure in idle test slots (largest conditional variance first, §3.2)
and to bound estimated delays by ``mu' ± 3 sigma'`` for configuration
(§3.4).  :class:`ConditionalPredictor` precomputes the weight matrix once
per circuit so per-chip prediction is a single matrix-vector product.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.variation.correlation import PathDelayModel

_JITTER = 1e-9


@dataclass(frozen=True)
class ConditionalPredictor:
    """Precomputed conditional update for a fixed tested-path subset."""

    tested_idx: np.ndarray
    predicted_idx: np.ndarray
    weights: np.ndarray  # (n_predicted, n_tested): Sigma_kt Sigma_t^-1
    prior_means_tested: np.ndarray
    prior_means_predicted: np.ndarray
    conditional_stds: np.ndarray  # (n_predicted,)

    @property
    def n_tested(self) -> int:
        return len(self.tested_idx)

    @property
    def n_predicted(self) -> int:
        return len(self.predicted_idx)

    def predict_means(self, measured: np.ndarray) -> np.ndarray:
        """Conditional means given measured values of the tested paths.

        ``measured`` has shape ``(n_tested,)`` or ``(n_chips, n_tested)``;
        the paper conservatively feeds the measured *upper bounds* here.
        """
        measured = np.asarray(measured, dtype=float)
        delta = measured - self.prior_means_tested
        return self.prior_means_predicted + delta @ self.weights.T

    def predict_intervals(
        self, measured: np.ndarray, sigma_window: float = 3.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """``mu' ± sigma_window * sigma'`` bounds for the predicted paths."""
        means = self.predict_means(measured)
        half = sigma_window * self.conditional_stds
        return means - half, means + half


def build_predictor(
    model: PathDelayModel, tested_indices
) -> ConditionalPredictor:
    """Construct the conditional predictor for ``tested_indices``.

    The tested covariance block is regularized with a tiny diagonal jitter
    before solving — measured paths in one physical cluster can be nearly
    collinear, which is precisely the regime EffiTest operates in.
    """
    tested = np.unique(np.asarray(tested_indices, dtype=np.intp))
    if tested.size == 0:
        raise ValueError("at least one tested path is required")
    if tested.max(initial=0) >= model.n_paths:
        raise ValueError("tested index out of range")
    all_idx = np.arange(model.n_paths, dtype=np.intp)
    predicted = np.setdiff1d(all_idx, tested)

    a_t = model.loadings[tested]
    a_k = model.loadings[predicted]
    sigma_t = a_t @ a_t.T
    sigma_t[np.diag_indices_from(sigma_t)] += (
        model.independent[tested] ** 2 + _JITTER * max(float(np.trace(sigma_t)), 1.0)
    )
    sigma_kt = a_k @ a_t.T  # independent parts never cross-correlate

    weights = np.linalg.solve(sigma_t, sigma_kt.T).T  # Sigma_kt Sigma_t^-1

    prior_var = (
        np.einsum("ij,ij->i", a_k, a_k) + model.independent[predicted] ** 2
    )
    explained = np.einsum("ij,ij->i", weights, sigma_kt)
    conditional_var = np.maximum(prior_var - explained, 0.0)

    return ConditionalPredictor(
        tested_idx=tested,
        predicted_idx=predicted,
        weights=weights,
        prior_means_tested=model.means[tested],
        prior_means_predicted=model.means[predicted],
        conditional_stds=np.sqrt(conditional_var),
    )


def conditional_stds_if_tested(
    model: PathDelayModel, tested_indices
) -> np.ndarray:
    """Conditional sigma of every untested path for a hypothetical test set.

    Used by slot filling (§3.2): since eq. 5 does not depend on measured
    values, the benefit of measuring one more path can be ranked offline.
    """
    return build_predictor(model, tested_indices).conditional_stds
