"""Conditional Gaussian delay prediction (§3.1, eqs. 4–5 of the paper).

With jointly Gaussian path delays ``[d_k, D_t] ~ N(mu, Sigma)``, measuring
``D_t = d_t`` updates the remaining delay ``d_k`` to

    mu'_k    = mu_k + Sigma_kt Sigma_t^-1 (d_t - mu_t)          (eq. 4)
    sigma'^2 = sigma_k^2 - Sigma_kt Sigma_t^-1 Sigma_tk         (eq. 5)

The conditional variance is data-independent (it depends only on the
covariance), which the paper exploits twice: to decide *which* extra paths
to measure in idle test slots (largest conditional variance first, §3.2)
and to bound estimated delays by ``mu' ± 3 sigma'`` for configuration
(§3.4).  :class:`ConditionalPredictor` precomputes the weight matrix once
per circuit so per-chip prediction is a single matrix-vector product.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_triangular

from repro.variation.correlation import PathDelayModel

_JITTER = 1e-9


@dataclass(frozen=True)
class ConditionalPredictor:
    """Precomputed conditional update for a fixed tested-path subset."""

    tested_idx: np.ndarray
    predicted_idx: np.ndarray
    weights: np.ndarray  # (n_predicted, n_tested): Sigma_kt Sigma_t^-1
    prior_means_tested: np.ndarray
    prior_means_predicted: np.ndarray
    conditional_stds: np.ndarray  # (n_predicted,)

    @property
    def n_tested(self) -> int:
        return len(self.tested_idx)

    @property
    def n_predicted(self) -> int:
        return len(self.predicted_idx)

    def predict_means(self, measured: np.ndarray) -> np.ndarray:
        """Conditional means given measured values of the tested paths.

        ``measured`` has shape ``(n_tested,)`` or ``(n_chips, n_tested)``;
        the paper conservatively feeds the measured *upper bounds* here.
        """
        measured = np.asarray(measured, dtype=float)
        delta = measured - self.prior_means_tested
        return self.prior_means_predicted + delta @ self.weights.T

    def predict_intervals(
        self, measured: np.ndarray, sigma_window: float = 3.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """``mu' ± sigma_window * sigma'`` bounds for the predicted paths."""
        means = self.predict_means(measured)
        half = sigma_window * self.conditional_stds
        return means - half, means + half


def build_predictor(
    model: PathDelayModel, tested_indices
) -> ConditionalPredictor:
    """Construct the conditional predictor for ``tested_indices``.

    The tested covariance block is regularized with a tiny diagonal jitter
    before solving — measured paths in one physical cluster can be nearly
    collinear, which is precisely the regime EffiTest operates in.
    """
    tested = np.unique(np.asarray(tested_indices, dtype=np.intp))
    if tested.size == 0:
        raise ValueError("at least one tested path is required")
    if tested.max(initial=0) >= model.n_paths:
        raise ValueError("tested index out of range")
    all_idx = np.arange(model.n_paths, dtype=np.intp)
    predicted = np.setdiff1d(all_idx, tested)

    a_t = model.loadings[tested]
    a_k = model.loadings[predicted]
    sigma_t = a_t @ a_t.T
    sigma_t[np.diag_indices_from(sigma_t)] += (
        model.independent[tested] ** 2 + _JITTER * max(float(np.trace(sigma_t)), 1.0)
    )
    sigma_kt = a_k @ a_t.T  # independent parts never cross-correlate

    weights = np.linalg.solve(sigma_t, sigma_kt.T).T  # Sigma_kt Sigma_t^-1

    prior_var = (
        np.einsum("ij,ij->i", a_k, a_k) + model.independent[predicted] ** 2
    )
    explained = np.einsum("ij,ij->i", weights, sigma_kt)
    conditional_var = np.maximum(prior_var - explained, 0.0)

    return ConditionalPredictor(
        tested_idx=tested,
        predicted_idx=predicted,
        weights=weights,
        prior_means_tested=model.means[tested],
        prior_means_predicted=model.means[predicted],
        conditional_stds=np.sqrt(conditional_var),
    )


def conditional_stds_if_tested(
    model: PathDelayModel, tested_indices
) -> np.ndarray:
    """Conditional sigma of every untested path for a hypothetical test set.

    Used by slot filling (§3.2): since eq. 5 does not depend on measured
    values, the benefit of measuring one more path can be ranked offline.
    """
    return build_predictor(model, tested_indices).conditional_stds


class IncrementalConditioner:
    """Predictor v2: the tested block's Cholesky factor, grown in place.

    Greedy slot filling asks "which candidate path, if measured next,
    stays hardest to predict?" after *every* pick — with the dense
    :func:`build_predictor` rebuild that is one O(n^3) factorization per
    hypothetical candidate.  This class keeps the Cholesky factor ``L`` of
    the tested covariance block and the forward-solved cross block
    ``W = L^-1 Sigma_tk`` and extends both by one rank per committed path:

    * the conditional variance of every remaining path is
      ``sigma_k^2 - ||W_k||^2`` (eq. 5), available in O(n_k) at any time;
    * committing candidate ``c`` appends the row ``[W_c^T, sqrt(var(c|T))]``
      to ``L`` and one row ``(Sigma_ck - W_c^T W) / sqrt(var(c|T))`` to
      ``W`` — O(n_tested * n_candidates), no refactorization.

    The dense rebuild stays the reference; the two agree to solver
    tolerance (the per-step diagonal jitter is sized from the running
    trace rather than the final one, an O(1e-9) difference — see
    ``tests/core/test_prediction.py``).
    """

    def __init__(self, model: PathDelayModel, tested_indices):
        tested = np.unique(np.asarray(tested_indices, dtype=np.intp))
        if tested.size == 0:
            raise ValueError("at least one tested path is required")
        if tested.max(initial=0) >= model.n_paths:
            raise ValueError("tested index out of range")
        self._model = model
        self._tested = list(tested.tolist())
        all_idx = np.arange(model.n_paths, dtype=np.intp)
        self._predicted = np.setdiff1d(all_idx, tested)

        a_t = model.loadings[tested]
        sigma_t = a_t @ a_t.T
        self._trace = float(np.trace(sigma_t))
        sigma_t[np.diag_indices_from(sigma_t)] += (
            model.independent[tested] ** 2
            + _JITTER * max(self._trace, 1.0)
        )
        self._chol = np.linalg.cholesky(sigma_t)
        a_k = model.loadings[self._predicted]
        # W = L^-1 Sigma_tk, one column per still-predicted path.
        self._w = solve_triangular(
            self._chol, a_t @ a_k.T, lower=True
        )
        self._prior_var = (
            np.einsum("ij,ij->i", a_k, a_k)
            + model.independent[self._predicted] ** 2
        )

    @property
    def tested_idx(self) -> np.ndarray:
        return np.asarray(self._tested, dtype=np.intp)

    @property
    def predicted_idx(self) -> np.ndarray:
        return self._predicted

    def conditional_stds(self) -> np.ndarray:
        """Conditional sigma of every still-predicted path (eq. 5)."""
        explained = np.einsum("ij,ij->j", self._w, self._w)
        return np.sqrt(np.maximum(self._prior_var - explained, 0.0))

    def extend(self, path_index: int) -> None:
        """Commit one more path to the tested set (one rank-1 extension)."""
        pos_arr = np.flatnonzero(self._predicted == path_index)
        if pos_arr.size == 0:
            raise ValueError(
                f"path {path_index} is not available to test (already "
                "tested or out of range)"
            )
        pos = int(pos_arr[0])
        model = self._model
        s_c = model.loadings[path_index]
        w_c = self._w[:, pos].copy()
        raw_var = float(s_c @ s_c)
        self._trace += raw_var
        own_var = (
            raw_var
            + float(model.independent[path_index]) ** 2
            + _JITTER * max(self._trace, 1.0)
            - float(w_c @ w_c)
        )
        pivot = np.sqrt(max(own_var, _JITTER))

        keep = np.ones(len(self._predicted), dtype=bool)
        keep[pos] = False
        remaining = self._predicted[keep]
        w_keep = self._w[:, keep]
        # cov(c, k | T) / pivot becomes the new row of W.
        cross = model.loadings[remaining] @ s_c - w_keep.T @ w_c
        new_row = cross / pivot

        n = self._chol.shape[0]
        chol = np.zeros((n + 1, n + 1))
        chol[:n, :n] = self._chol
        chol[n, :n] = w_c
        chol[n, n] = pivot
        self._chol = chol
        self._w = np.vstack([w_keep, new_row])
        self._prior_var = self._prior_var[keep]
        self._predicted = remaining
        self._tested.append(int(path_index))


def greedy_fill_ranking(
    model: PathDelayModel,
    tested_indices,
    candidates,
    budget: int,
    *,
    mode: str = "incremental",
) -> list[int]:
    """Sequentially pick ``budget`` candidates by conditional sigma.

    Unlike the static ranking (one :func:`conditional_stds_if_tested`
    call), each pick conditions on the previously picked paths too, so
    near-collinear candidates stop shadowing each other.  ``mode``
    selects the engine: ``"incremental"`` (Cholesky extension, the fast
    path) or ``"dense"`` (full rebuild per pick, the reference).
    """
    if mode not in ("incremental", "dense"):
        raise ValueError(f"mode must be 'incremental' or 'dense', got {mode!r}")
    candidate_set = [int(c) for c in np.asarray(candidates, dtype=np.intp)]
    picks: list[int] = []
    if mode == "incremental":
        conditioner = IncrementalConditioner(model, tested_indices)
        for _ in range(min(budget, len(candidate_set))):
            stds = conditioner.conditional_stds()
            pos = {int(p): i for i, p in enumerate(conditioner.predicted_idx)}
            scores = np.array([stds[pos[c]] for c in candidate_set])
            best = int(np.argmax(scores))
            chosen = candidate_set.pop(best)
            picks.append(chosen)
            conditioner.extend(chosen)
        return picks
    tested = list(np.unique(np.asarray(tested_indices, dtype=np.intp)))
    for _ in range(min(budget, len(candidate_set))):
        predictor = build_predictor(model, tested)
        pos = {int(p): i for i, p in enumerate(predictor.predicted_idx)}
        scores = np.array(
            [predictor.conditional_stds[pos[c]] for c in candidate_set]
        )
        best = int(np.argmax(scores))
        chosen = candidate_set.pop(best)
        picks.append(chosen)
        tested.append(chosen)
    return picks
