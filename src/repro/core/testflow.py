"""Per-chip aligned delay test — the paper's Procedure 2, readable form.

For every batch: solve the alignment problem (eqs. 7–14) for a clock period
and buffer settings, apply them on the tester, turn each pass into a new
upper bound (``u = T - x_i + x_j``) and each fail into a new lower bound,
and retire paths whose range is narrower than ``epsilon``.  One application
of ``(T, x)`` is one frequency-stepping iteration — the unit of tester cost
in Table 1.

This scalar engine is the reference implementation; the vectorized
population engine (:mod:`repro.core.population`) is tested against it for
trace equality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.alignment import (
    BatchAlignment,
    center_sorted_weights,
    solve_alignment,
)
from repro.core.multiplexing import MultiplexPlan
from repro.opt.weighted_median import weighted_median_rows
from repro.tester.oracle import ChipOracle


@dataclass(frozen=True)
class ChipTestResult:
    """Measured delay ranges of one chip after the aligned test."""

    measured_indices: np.ndarray  # global path indices, aligned with bounds
    lower: np.ndarray
    upper: np.ndarray
    iterations: int
    iterations_per_batch: tuple[int, ...]


def run_batch(
    oracle: ChipOracle,
    batch_paths: np.ndarray,
    spec: BatchAlignment,
    prior_lower: np.ndarray,
    prior_upper: np.ndarray,
    x_init: np.ndarray,
    epsilon: float,
    k0: float = 1000.0,
    kd: float = 1.0,
    align: bool = True,
    max_iterations: int | None = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Test one batch on one chip; returns (lower, upper, iterations)."""
    m = len(batch_paths)
    lower = np.array(prior_lower, dtype=float, copy=True)
    upper = np.array(prior_upper, dtype=float, copy=True)
    if lower.shape != (m,) or upper.shape != (m,):
        raise ValueError("priors must have one entry per batch path")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if max_iterations is None:
        widths = np.maximum(upper - lower, epsilon)
        max_iterations = int(m * (np.ceil(np.log2(widths / epsilon)).max() + 2))

    iterations = 0
    x = np.array(x_init, dtype=float, copy=True)
    while iterations < max_iterations:
        active = (upper - lower) >= epsilon
        if not active.any():
            break
        centers = np.where(active, 0.5 * (lower + upper), np.nan)
        weights = center_sorted_weights(centers, k0, kd)
        if align and spec.n_buffers:
            period_row, x_row = solve_alignment(
                spec, centers[None, :], weights[None, :], x[None, :]
            )
            period = float(period_row[0])
            x = x_row[0]
        else:
            shifted = (centers + spec.shift(x))[None, :]
            period = float(weighted_median_rows(shifted, weights[None, :])[0])

        shift = spec.shift(x)
        passed = oracle.measure(batch_paths, shift, period)
        iterations += 1
        bound = period - shift
        upper = np.where(active & passed, np.minimum(upper, bound), upper)
        lower = np.where(active & ~passed, np.maximum(lower, bound), lower)
    return lower, upper, iterations


def test_chip(
    oracle: ChipOracle,
    plan: MultiplexPlan,
    specs: list[BatchAlignment],
    prior_means: np.ndarray,
    prior_stds: np.ndarray,
    epsilon: float,
    sigma_window: float = 3.0,
    k0: float = 1000.0,
    kd: float = 1.0,
    align: bool = True,
    x_inits: list[np.ndarray] | None = None,
) -> ChipTestResult:
    """Procedure 2 over all batches of one chip.

    ``x_inits`` optionally provides the hold-feasible starting settings per
    batch (defaults to each spec's nearest-to-zero feasible point).
    """
    if len(specs) != plan.n_batches:
        raise ValueError("one alignment spec per batch required")
    all_indices: list[np.ndarray] = []
    all_lower: list[np.ndarray] = []
    all_upper: list[np.ndarray] = []
    per_batch: list[int] = []
    for b, (batch, spec) in enumerate(zip(plan.batches, specs)):
        idx = batch.path_indices
        x_init = x_inits[b] if x_inits is not None else spec.feasible_default()
        lower, upper, iters = run_batch(
            oracle,
            idx,
            spec,
            prior_means[idx] - sigma_window * prior_stds[idx],
            prior_means[idx] + sigma_window * prior_stds[idx],
            x_init,
            epsilon,
            k0=k0,
            kd=kd,
            align=align,
        )
        all_indices.append(idx)
        all_lower.append(lower)
        all_upper.append(upper)
        per_batch.append(iters)

    indices = np.concatenate(all_indices) if all_indices else np.array([], dtype=np.intp)
    order = np.argsort(indices, kind="stable")
    return ChipTestResult(
        measured_indices=indices[order],
        lower=np.concatenate(all_lower)[order] if all_indices else np.array([]),
        upper=np.concatenate(all_upper)[order] if all_indices else np.array([]),
        iterations=int(sum(per_batch)),
        iterations_per_batch=tuple(per_batch),
    )
