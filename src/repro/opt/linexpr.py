"""Linear expressions over named variables.

This is the modelling vocabulary for the LP/MILP layer: a
:class:`LinExpr` is an affine function ``sum(coeff * var) + constant`` and a
:class:`Constraint` compares a :class:`LinExpr` against zero.  The paper's
optimization problems (delay alignment, eqs. 7–14; buffer configuration,
eqs. 15–18; hold bounds, eqs. 19–20) are all built from these.

Variables are plain strings; the :class:`~repro.opt.model.Model` owns their
bounds and integrality.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Mapping, Union

Number = Union[int, float]


class Sense(Enum):
    """Constraint sense, always read as ``expr SENSE 0``."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``expr (<=,>=,==) 0``.

    Stored in homogeneous form: the right-hand side has been folded into the
    expression's constant term.
    """

    expr: "LinExpr"
    sense: Sense
    name: str = ""

    def coefficients(self) -> dict[str, float]:
        """Variable coefficients of the constraint's left-hand side."""
        return dict(self.expr.terms)

    @property
    def rhs(self) -> float:
        """Right-hand side when written as ``terms SENSE rhs``."""
        return -self.expr.constant

    def __str__(self) -> str:
        terms = " + ".join(f"{c:g}*{v}" for v, c in sorted(self.expr.terms.items()))
        return f"{terms or '0'} {self.sense.value} {self.rhs:g}"


class LinExpr:
    """An affine expression ``sum(terms[v] * v) + constant``.

    Supports ``+``, ``-``, scalar ``*`` / ``/`` and comparisons, which produce
    :class:`Constraint` objects:

    >>> x, y = LinExpr.variable("x"), LinExpr.variable("y")
    >>> str(2 * x - y + 1 <= 5)
    '2*x + -1*y <= 4'
    """

    __slots__ = ("terms", "constant")

    def __init__(
        self, terms: Mapping[str, float] | None = None, constant: float = 0.0
    ) -> None:
        self.terms: dict[str, float] = dict(terms) if terms else {}
        self.constant = float(constant)

    @staticmethod
    def variable(name: str) -> "LinExpr":
        """An expression consisting of a single variable."""
        if not name:
            raise ValueError("variable name must be non-empty")
        return LinExpr({name: 1.0})

    @staticmethod
    def constant_expr(value: Number) -> "LinExpr":
        """An expression with no variables."""
        return LinExpr({}, float(value))

    @staticmethod
    def sum(exprs: Iterable["LinExpr | Number"]) -> "LinExpr":
        """Sum many expressions/numbers efficiently."""
        total = LinExpr()
        for e in exprs:
            total = total + e
        return total

    def copy(self) -> "LinExpr":
        return LinExpr(self.terms, self.constant)

    def coefficient(self, name: str) -> float:
        """Coefficient of variable ``name`` (0.0 if absent)."""
        return self.terms.get(name, 0.0)

    def variables(self) -> set[str]:
        """Names of variables with non-zero coefficient."""
        return {v for v, c in self.terms.items() if c != 0.0}

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        """Value of the expression under a full variable assignment."""
        value = self.constant
        for var, coeff in self.terms.items():
            value += coeff * assignment[var]
        return value

    # -- arithmetic ---------------------------------------------------------

    def _coerce(self, other: "LinExpr | Number") -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, (int, float)):
            return LinExpr.constant_expr(other)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: "LinExpr | Number") -> "LinExpr":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        out = self.copy()
        for var, coeff in rhs.terms.items():
            out.terms[var] = out.terms.get(var, 0.0) + coeff
        out.constant += rhs.constant
        return out

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({v: -c for v, c in self.terms.items()}, -self.constant)

    def __sub__(self, other: "LinExpr | Number") -> "LinExpr":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self + (-rhs)

    def __rsub__(self, other: "LinExpr | Number") -> "LinExpr":
        return (-self) + other

    def __mul__(self, scalar: Number) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        return LinExpr(
            {v: c * scalar for v, c in self.terms.items()}, self.constant * scalar
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: Number) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        if scalar == 0:
            raise ZeroDivisionError("division of LinExpr by zero")
        return self * (1.0 / scalar)

    # -- comparisons produce constraints -------------------------------------

    def __le__(self, other: "LinExpr | Number") -> Constraint:
        return Constraint(self - other, Sense.LE)

    def __ge__(self, other: "LinExpr | Number") -> Constraint:
        return Constraint(self - other, Sense.GE)

    def equals(self, other: "LinExpr | Number") -> Constraint:
        """Equality constraint (method form; ``==`` is kept as identity)."""
        return Constraint(self - other, Sense.EQ)

    def __repr__(self) -> str:
        terms = " + ".join(f"{c:g}*{v}" for v, c in sorted(self.terms.items()))
        if not terms:
            return f"LinExpr({self.constant:g})"
        if self.constant:
            return f"LinExpr({terms} + {self.constant:g})"
        return f"LinExpr({terms})"
