"""Weighted medians, scalar and row-vectorized.

The delay-alignment objective (eq. 7 of the paper) minimizes a weighted sum
of absolute distances ``sum(k_ij * |T - c_ij|)`` over the shifted range
centres ``c_ij``; for fixed buffer values, the optimal clock period ``T`` is
the *weighted median* of the centres.  The row-vectorized variant evaluates
one median per Monte-Carlo chip so the population test engine
(:mod:`repro.core.population`) can align thousands of chips per call.
"""

from __future__ import annotations

import numpy as np


def weighted_median(values: np.ndarray, weights: np.ndarray) -> float:
    """Smallest ``v`` in ``values`` minimizing ``sum(w * |v - values|)``.

    Ignores entries with zero weight; raises if total weight is zero.

    Delegates to :func:`weighted_median_rows` so the scalar and vectorized
    paths share one tie-breaking rule bit for bit — the scalar ``testflow``
    engine and the population engine must pick the same median even when
    cumulative-weight rounding puts an entry within one ulp of half the
    total weight.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape or values.ndim != 1:
        raise ValueError("values and weights must be 1-D arrays of equal shape")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    if weights.sum() <= 0:
        raise ValueError("total weight must be positive")
    return float(weighted_median_rows(values[None, :], weights[None, :])[0])


def weighted_median_rows(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Row-wise weighted median with NaN masking.

    ``values`` and ``weights`` have shape ``(rows, cols)``.  Entries where
    ``values`` is NaN (or weight is 0) are excluded from that row's median.
    Rows with no valid entries return NaN.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape or values.ndim != 2:
        raise ValueError("values and weights must be 2-D arrays of equal shape")
    rows, _ = values.shape

    mask = np.isnan(values) | (weights <= 0)
    work_values = np.where(mask, np.inf, values)
    work_weights = np.where(mask, 0.0, weights)

    order = np.argsort(work_values, axis=1, kind="stable")
    sorted_values = np.take_along_axis(work_values, order, axis=1)
    sorted_weights = np.take_along_axis(work_weights, order, axis=1)

    cumulative = np.cumsum(sorted_weights, axis=1)
    totals = cumulative[:, -1]
    valid = totals > 0

    # First index where cumulative weight reaches half the total.
    target = 0.5 * totals[:, None]
    reached = cumulative >= target - 1e-15
    idx = reached.argmax(axis=1)

    out = np.full(rows, np.nan)
    picked = sorted_values[np.arange(rows), idx]
    out[valid] = picked[valid]
    return out
