"""Minimum feasible clock period via maximum mean cycle (Karp) and
bounded-buffer binary search.

With unconstrained clock tuning (``x`` free), the setup constraints
``T >= D_ij + x_i - x_j`` (eq. 1 of the paper) are feasible iff for every
directed cycle ``C`` in the flip-flop graph ``T >= sum(D_ij in C)/|C|``.
The smallest such ``T`` is the *maximum mean cycle* of the delay graph —
Karp's classic O(VE) dynamic program computes it exactly.  This reproduces
the paper's motivating example (Fig. 2): a 4-flip-flop loop with stage
delays 3, 8, 5, 6 tunes from period 8 down to 22/4 = 5.5.

With *bounded* buffer ranges (eq. 3), the minimum period is found by binary
search on ``T`` with difference-constraint feasibility at each step.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Mapping, Sequence

import networkx as nx
import numpy as np

from repro.opt.diffconstraints import DifferenceSystem

Edge = tuple[Hashable, Hashable, float]


def maximum_mean_cycle(edges: Iterable[Edge]) -> float:
    """Maximum mean weight over all directed cycles.

    Returns ``-inf`` when the graph is acyclic.  Uses Karp's theorem on each
    strongly connected component:

        mmc = max_v min_{0<=k<n} (F_n(v) - F_k(v)) / (n - k)

    where ``F_k(v)`` is the maximum weight of a k-edge walk ending at ``v``.
    """
    graph = nx.MultiDiGraph()
    for u, v, w in edges:
        graph.add_edge(u, v, weight=float(w))
    best = -math.inf
    for component in nx.strongly_connected_components(graph):
        sub = graph.subgraph(component)
        if sub.number_of_edges() == 0:
            continue
        best = max(best, _karp_single_scc(sub))
    return best


def _karp_single_scc(graph: nx.MultiDiGraph) -> float:
    nodes = list(graph.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    edge_list = [
        (index[u], index[v], data["weight"]) for u, v, data in graph.edges(data=True)
    ]

    # F[k][v]: max weight of a k-edge walk from the source set to v.
    f = np.full((n + 1, n), -math.inf)
    f[0, :] = 0.0  # virtual source reaches every node with weight 0
    for k in range(1, n + 1):
        for u, v, w in edge_list:
            candidate = f[k - 1, u] + w
            if candidate > f[k, v]:
                f[k, v] = candidate

    best = -math.inf
    for v in range(n):
        if not math.isfinite(f[n, v]):
            continue
        worst = math.inf
        for k in range(n):
            if math.isfinite(f[k, v]):
                worst = min(worst, (f[n, v] - f[k, v]) / (n - k))
        best = max(best, worst)
    return best


def min_clock_period_unbounded(edges: Iterable[Edge]) -> float:
    """Smallest ``T`` for which eq. 1 is feasible with unconstrained buffers.

    This is ``max(maximum mean cycle, 0)``; acyclic delay graphs can be
    tuned to an arbitrarily small positive period.
    """
    return max(maximum_mean_cycle(edges), 0.0)


def min_clock_period_bounded(
    edges: Sequence[Edge],
    lower: Mapping[Hashable, float],
    upper: Mapping[Hashable, float],
    tolerance: float = 1e-6,
) -> float:
    """Smallest feasible ``T`` when each ``x_i`` must lie in
    ``[lower[i], upper[i]]`` (eq. 3 of the paper).

    Nodes missing from ``lower``/``upper`` are treated as untunable
    (``x = 0``).  Solved by binary search on ``T`` with Bellman–Ford
    feasibility; the result is within ``tolerance`` of the true optimum.
    """
    edges = list(edges)
    if not edges:
        return 0.0
    nodes = sorted({u for u, _, _ in edges} | {v for _, v, _ in edges}, key=str)
    index = {node: i for i, node in enumerate(nodes)}

    lo = min_clock_period_unbounded(edges)
    hi = max(w for _, _, w in edges)
    span = max(upper.get(n, 0.0) - lower.get(n, 0.0) for n in nodes) if nodes else 0.0
    hi = max(hi + span, lo)

    def feasible(period: float) -> bool:
        system = DifferenceSystem(len(nodes))
        for node in nodes:
            i = index[node]
            system.add_bounds(i, lower.get(node, 0.0), upper.get(node, 0.0))
        for u, v, w in edges:
            # T >= w + x_u - x_v  <=>  x_u - x_v <= T - w
            system.add_le(index[v], index[u], period - w)
        return bool(system.solve().feasible)

    if feasible(lo):
        return lo
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    return hi
