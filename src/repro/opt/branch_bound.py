"""Warm-started branch & bound on top of the revised simplex.

Together with :mod:`repro.opt.simplex` this provides a dependency-free MILP
capability standing in for the paper's Gurobi.  It is intended for the small
integer programs EffiTest produces (tens of variables): delay alignment
(eqs. 7–14 of the paper) on a single test batch, buffer configuration
(eqs. 15–18) and hold-bound selection (eqs. 19–20) on reduced instances.

Two things distinguish it from the historical solver retained in
:mod:`repro.opt.reference_solver`:

- **Warm node solves.**  A child node differs from its parent by exactly
  one variable bound, so the parent's optimal basis is still dual feasible
  at the child; each child LP starts from it and reoptimizes with a few
  dual-simplex pivots instead of a cold two-phase solve.  A caller can
  likewise seed the root (and an integer incumbent) from a previous solve
  of a structurally identical model — the sweep-variant warm start.
- **Best-bound node selection.**  Open nodes live in a heap keyed by
  ``(relaxation bound, insertion counter)``; the counter makes the order —
  and therefore the reported optimum — deterministic even among tied
  bounds.  Branching stays on the most fractional integer variable with
  index tie-breaking, so the search tree is reproducible.

When the node budget runs out *with* an incumbent, the result is
:attr:`LPStatus.FEASIBLE` (usable but not proven optimal) rather than the
indistinguishable-from-dead ``ITERATION_LIMIT``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, replace

import numpy as np

from repro.opt.model import MatrixForm
from repro.opt.simplex import Basis, LPResult, LPStatus, solve_lp

_INT_TOL = 1e-6
_FEAS_TOL = 1e-7


@dataclass
class MILPResult:
    """Outcome of a branch & bound solve."""

    status: LPStatus
    x: np.ndarray | None
    objective: float | None
    nodes_explored: int = 0
    #: Total simplex pivots across every node LP (warm and cold).
    simplex_iterations: int = 0
    #: Node LPs solved (the basis-reuse denominator).
    lp_solves: int = 0
    #: Node LPs that reoptimized from a parent/caller basis.
    basis_reuses: int = 0
    #: True when a caller-provided warm incumbent or root basis was used.
    warm_hint_used: bool = False
    #: Root-relaxation basis, for warm-starting a structurally identical
    #: solve (the next sweep variant).
    root_basis: Basis | None = None

    @property
    def ok(self) -> bool:
        return self.status is LPStatus.OPTIMAL

    @property
    def usable(self) -> bool:
        """True when ``x`` is a feasible integer point (proven optimal or not)."""
        return self.status in (LPStatus.OPTIMAL, LPStatus.FEASIBLE)

    @property
    def basis_reuse_rate(self) -> float:
        return self.basis_reuses / self.lp_solves if self.lp_solves else 0.0


def _most_fractional(x: np.ndarray, integer_mask: np.ndarray) -> int | None:
    """Index of the integer variable farthest from integrality, or None.

    Vectorized; ties resolve to the smallest index (``argmax`` returns the
    first maximum), matching the historical Python loop exactly.
    """
    idx = np.flatnonzero(integer_mask)
    if not idx.size:
        return None
    vals = x[idx]
    frac = np.abs(vals - np.round(vals))
    k = int(np.argmax(frac))
    if frac[k] <= _INT_TOL:
        return None
    return int(idx[k])


def _feasible_incumbent(form: MatrixForm, x: np.ndarray) -> np.ndarray | None:
    """Validate a candidate warm incumbent against ``form``; None if stale.

    Sweep variants share structure but not coefficients, so the previous
    variant's optimum may violate this variant's constraints — it is a
    *hint*, never trusted.  Integer entries are snapped before checking.
    """
    if x.shape != (len(form.variable_names),):
        return None
    candidate = np.asarray(x, float).copy()
    candidate[form.integer] = np.round(candidate[form.integer])
    if not np.isfinite(candidate).all():
        return None
    if (candidate < form.lower - _FEAS_TOL).any() or (candidate > form.upper + _FEAS_TOL).any():
        return None
    if form.a_ub.size and (form.a_ub @ candidate > form.b_ub + _FEAS_TOL).any():
        return None
    if form.a_eq.size and (np.abs(form.a_eq @ candidate - form.b_eq) > _FEAS_TOL).any():
        return None
    return candidate


def solve_milp(
    form: MatrixForm,
    node_limit: int = 20000,
    gap_tol: float = 1e-9,
    *,
    warm_basis: Basis | None = None,
    warm_incumbent: np.ndarray | None = None,
) -> MILPResult:
    """Solve a MILP given in matrix form.

    The objective handled internally is the *minimization* objective of the
    matrix form; the returned objective is in the original model's sense
    (via :meth:`MatrixForm.objective_value`).

    ``warm_basis`` seeds the root relaxation and ``warm_incumbent`` the
    integer incumbent, typically from a previous solve of a structurally
    identical model; both are validated and silently dropped when stale.
    """
    warm_used = False
    if not np.any(form.integer):
        lp = solve_lp(form, start=warm_basis)
        return MILPResult(
            lp.status,
            lp.x,
            lp.objective,
            simplex_iterations=lp.iterations,
            lp_solves=1,
            basis_reuses=int(lp.warm_started),
            warm_hint_used=lp.warm_started,
            root_basis=lp.basis,
        )

    iterations = 0
    lp_solves = 0
    reuses = 0

    root = solve_lp(form, start=warm_basis)
    iterations += root.iterations
    lp_solves += 1
    reuses += int(root.warm_started)
    warm_used |= root.warm_started
    if root.status is not LPStatus.OPTIMAL:
        return MILPResult(
            root.status,
            None,
            None,
            nodes_explored=1,
            simplex_iterations=iterations,
            lp_solves=lp_solves,
            basis_reuses=reuses,
            warm_hint_used=warm_used,
        )

    sign = -1.0 if form.flip_objective else 1.0

    def relax_cost(result: LPResult) -> float:
        # Internal minimization value (lower bound for child nodes).
        assert result.x is not None
        return sign * (result.objective - form.objective_constant)  # type: ignore[operator]

    incumbent_x: np.ndarray | None = None
    incumbent_cost = math.inf
    if warm_incumbent is not None:
        candidate = _feasible_incumbent(form, warm_incumbent)
        if candidate is not None:
            incumbent_x = candidate
            incumbent_cost = float(form.c @ candidate)
            warm_used = True
    nodes = 0
    proven = True  # flips off only when the node budget truncates the search

    # Best-bound heap: (relaxation bound, insertion counter, bounds, LP).
    # The counter both breaks bound ties deterministically and keeps the
    # un-orderable payloads out of heapq's comparisons.
    counter = 0
    heap: list[tuple[float, int, np.ndarray, np.ndarray, LPResult]] = []
    heapq.heappush(heap, (relax_cost(root), counter, form.lower.copy(), form.upper.copy(), root))

    while heap:
        if nodes >= node_limit:
            proven = False
            break
        bound, _, lower, upper, lp = heapq.heappop(heap)
        nodes += 1
        assert lp.x is not None
        if bound >= incumbent_cost - gap_tol:
            # Best-bound order: every remaining node's bound is >= this
            # one's, so the incumbent is proven optimal — stop.
            break
        branch_var = _most_fractional(lp.x, form.integer)
        if branch_var is None:
            x_int = lp.x.copy()
            x_int[form.integer] = np.round(x_int[form.integer])
            # form.c is already the internal minimization cost vector.
            cost = float(form.c @ x_int)
            if cost < incumbent_cost - gap_tol:
                incumbent_cost = cost
                incumbent_x = x_int
            continue

        value = lp.x[branch_var]
        floor_v, ceil_v = math.floor(value), math.ceil(value)

        children = []
        up_upper = upper.copy()
        up_upper[branch_var] = min(up_upper[branch_var], floor_v)
        if up_upper[branch_var] >= lower[branch_var] - _INT_TOL:
            children.append((lower.copy(), up_upper))
        dn_lower = lower.copy()
        dn_lower[branch_var] = max(dn_lower[branch_var], ceil_v)
        if dn_lower[branch_var] <= upper[branch_var] + _INT_TOL:
            children.append((dn_lower, upper.copy()))

        for lo, hi in children:
            child_form = replace(form, lower=lo, upper=hi)
            # The parent's basis stays dual feasible after the bound
            # change; the child LP reoptimizes from it with dual-simplex
            # pivots instead of a cold two-phase solve.
            child_lp = solve_lp(child_form, start=lp.basis)
            iterations += child_lp.iterations
            lp_solves += 1
            reuses += int(child_lp.warm_started)
            if child_lp.status is LPStatus.OPTIMAL:
                counter += 1
                heapq.heappush(heap, (relax_cost(child_lp), counter, lo, hi, child_lp))

    if incumbent_x is None:
        status = LPStatus.INFEASIBLE if proven else LPStatus.ITERATION_LIMIT
        return MILPResult(
            status,
            None,
            None,
            nodes_explored=nodes,
            simplex_iterations=iterations,
            lp_solves=lp_solves,
            basis_reuses=reuses,
            warm_hint_used=warm_used,
        )
    status = LPStatus.OPTIMAL if proven else LPStatus.FEASIBLE
    return MILPResult(
        status,
        incumbent_x,
        form.objective_value(incumbent_x),
        nodes_explored=nodes,
        simplex_iterations=iterations,
        lp_solves=lp_solves,
        basis_reuses=reuses,
        warm_hint_used=warm_used,
        root_basis=root.basis,
    )


__all__ = ["MILPResult", "solve_milp", "_most_fractional"]
