"""Branch & bound MILP solver on top of the pure-Python simplex.

Together with :mod:`repro.opt.simplex` this provides a dependency-free MILP
capability standing in for the paper's Gurobi.  It is intended for the small
integer programs EffiTest produces (tens of variables): delay alignment
(eqs. 7–14 of the paper) on a single test batch, buffer configuration
(eqs. 15–18) and hold-bound selection (eqs. 19–20) on reduced instances.

Branching is depth-first on the most fractional integer variable, with
incumbent pruning.  Determinism: ties are broken by variable index, so the
search tree (and therefore the reported optimum) is reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.opt.model import MatrixForm
from repro.opt.simplex import LPResult, LPStatus, solve_lp

_INT_TOL = 1e-6


@dataclass
class MILPResult:
    """Outcome of a branch & bound solve."""

    status: LPStatus
    x: np.ndarray | None
    objective: float | None
    nodes_explored: int = 0

    @property
    def ok(self) -> bool:
        return self.status is LPStatus.OPTIMAL


def _most_fractional(x: np.ndarray, integer_mask: np.ndarray) -> int | None:
    """Index of the integer variable farthest from integrality, or None."""
    best_idx: int | None = None
    best_frac = _INT_TOL
    for i in np.flatnonzero(integer_mask):
        frac = abs(x[i] - round(x[i]))
        if frac > best_frac:
            best_frac = frac
            best_idx = int(i)
    return best_idx


def solve_milp(
    form: MatrixForm,
    node_limit: int = 20000,
    gap_tol: float = 1e-9,
) -> MILPResult:
    """Solve a MILP given in matrix form.

    The objective handled internally is the *minimization* objective of the
    matrix form; the returned objective is in the original model's sense
    (via :meth:`MatrixForm.objective_value`).
    """
    if not np.any(form.integer):
        lp = solve_lp(form)
        return MILPResult(lp.status, lp.x, lp.objective)

    root = solve_lp(form)
    if root.status is not LPStatus.OPTIMAL:
        return MILPResult(root.status, None, None, nodes_explored=1)

    sign = -1.0 if form.flip_objective else 1.0

    def relax_cost(result: LPResult) -> float:
        # Internal minimization value (lower bound for child nodes).
        assert result.x is not None
        return sign * (result.objective - form.objective_constant)  # type: ignore[operator]

    incumbent_x: np.ndarray | None = None
    incumbent_cost = math.inf
    nodes = 0

    stack: list[tuple[np.ndarray, np.ndarray, LPResult]] = [
        (form.lower.copy(), form.upper.copy(), root)
    ]
    while stack and nodes < node_limit:
        lower, upper, lp = stack.pop()
        nodes += 1
        assert lp.x is not None
        bound = relax_cost(lp)
        if bound >= incumbent_cost - gap_tol:
            continue
        branch_var = _most_fractional(lp.x, form.integer)
        if branch_var is None:
            x_int = lp.x.copy()
            x_int[form.integer] = np.round(x_int[form.integer])
            # form.c is already the internal minimization cost vector.
            cost = float(form.c @ x_int)
            if cost < incumbent_cost - gap_tol:
                incumbent_cost = cost
                incumbent_x = x_int
            continue

        value = lp.x[branch_var]
        floor_v, ceil_v = math.floor(value), math.ceil(value)

        children = []
        up_upper = upper.copy()
        up_upper[branch_var] = min(up_upper[branch_var], floor_v)
        if up_upper[branch_var] >= lower[branch_var] - _INT_TOL:
            children.append((lower.copy(), up_upper))
        dn_lower = lower.copy()
        dn_lower[branch_var] = max(dn_lower[branch_var], ceil_v)
        if dn_lower[branch_var] <= upper[branch_var] + _INT_TOL:
            children.append((dn_lower, upper.copy()))

        solved = []
        for lo, hi in children:
            child_form = replace(form, lower=lo, upper=hi)
            child_lp = solve_lp(child_form)
            if child_lp.status is LPStatus.OPTIMAL:
                solved.append((relax_cost(child_lp), lo, hi, child_lp))
        # Explore the more promising child first (it goes last on the stack).
        solved.sort(key=lambda t: -t[0])
        for _, lo, hi, child_lp in solved:
            stack.append((lo, hi, child_lp))

    if incumbent_x is None:
        status = LPStatus.ITERATION_LIMIT if stack else LPStatus.INFEASIBLE
        return MILPResult(status, None, None, nodes_explored=nodes)
    status = LPStatus.ITERATION_LIMIT if stack else LPStatus.OPTIMAL
    return MILPResult(
        status,
        incumbent_x,
        form.objective_value(incumbent_x),
        nodes_explored=nodes,
    )
