"""Backend dispatch for :class:`~repro.opt.model.Model`.

``solve(model)`` picks the SciPy/HiGHS backend by default and the
pure-Python simplex + branch & bound with ``backend="pure"``.  Both return a
:class:`Solution` mapping variable names to values, so the EffiTest core is
completely solver-agnostic (the paper's framework treats Gurobi the same
way).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.opt.branch_bound import solve_milp
from repro.opt.model import Model
from repro.opt.scipy_backend import solve_lp_scipy, solve_milp_scipy
from repro.opt.simplex import LPStatus, solve_lp


@dataclass
class Solution:
    """Solver outcome in the model's variable space."""

    status: LPStatus
    values: dict[str, float]
    objective: float | None

    @property
    def ok(self) -> bool:
        return self.status is LPStatus.OPTIMAL

    @property
    def failure_reason(self) -> str | None:
        """Human-readable reason when not ``ok`` (``None`` on success).

        Distinguishes ``"numerical_difficulties"`` (HiGHS gave up on an
        ill-conditioned model — rescale and retry) from
        ``"iteration_limit"`` (raise the budget) and the infeasible /
        unbounded verdicts.
        """
        return None if self.ok else self.status.value

    def __getitem__(self, name: str) -> float:
        return self.values[name]

    def get(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)


def solve(model: Model, backend: str = "scipy") -> Solution:
    """Solve ``model`` and return a :class:`Solution`.

    ``backend`` is ``"scipy"`` (HiGHS, default) or ``"pure"`` (this
    library's simplex/branch & bound).
    """
    if backend not in ("scipy", "pure"):
        raise ValueError(f"unknown backend {backend!r}; use 'scipy' or 'pure'")
    form = model.to_matrix_form()
    if backend == "scipy":
        result = solve_milp_scipy(form) if model.is_mip else solve_lp_scipy(form)
        x, status, obj = result.x, result.status, result.objective
    elif model.is_mip:
        milp = solve_milp(form)
        x, status, obj = milp.x, milp.status, milp.objective
    else:
        lp = solve_lp(form)
        x, status, obj = lp.x, lp.status, lp.objective

    values = form.assignment(x) if x is not None else {}
    return Solution(status, values, obj)
