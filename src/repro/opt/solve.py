"""Backend dispatch for :class:`~repro.opt.model.Model`.

``solve(model)`` picks the SciPy/HiGHS backend by default, the pure-Python
revised simplex + branch & bound with ``backend="pure"``, and a **solver
portfolio** with ``backend="auto"``: per problem size and integrality
profile it routes small models to the in-tree solver (whose per-call
overhead is tiny and which can warm-start) and large or binary-heavy
models to HiGHS.  All paths return a :class:`Solution` mapping variable
names to values, so the EffiTest core is completely solver-agnostic (the
paper's framework treats Gurobi the same way), and every solve carries a
:class:`SolveStats` record — nodes, pivots, basis-reuse rate, the backend
chosen — that the offline stage surfaces through ``Preparation`` timing
metadata.

``solve_matrix_form`` is the lower-level entry used by the precompiled
models (:class:`~repro.core.alignment.CompiledAlignmentModel`,
:class:`~repro.core.holdtime.CompiledHoldBoundModel`): it takes a
ready-made :class:`~repro.opt.model.MatrixForm` plus an optional
:class:`~repro.opt.warmstart.WarmStartCache` and threads bases and
incumbents across structurally identical solves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.opt.branch_bound import solve_milp
from repro.opt.model import MatrixForm, Model
from repro.opt.reference_solver import solve_lp_reference, solve_milp_reference
from repro.opt.scipy_backend import solve_lp_scipy, solve_milp_scipy
from repro.opt.simplex import LPStatus, solve_lp
from repro.opt.warmstart import WarmHint, WarmStartCache

_BACKENDS = ("scipy", "pure", "auto", "reference")

# Portfolio thresholds (rows + columns of the standardized problem).  The
# in-tree revised simplex beats HiGHS below these sizes because SciPy's
# per-call overhead (model translation, process-level setup) dominates
# sub-millisecond solves; above them HiGHS's sparse factorizations win.
# Binary-heavy MILPs go to HiGHS earlier: B&B node counts grow with the
# integer dimension regardless of matrix size.
_AUTO_LP_SIZE = 240
_AUTO_MILP_SIZE = 200
_AUTO_MILP_INTEGERS = 24


@dataclass
class SolveStats:
    """Per-solve observability: what ran, how hard, and how warm."""

    backend: str
    is_mip: bool
    nodes: int = 0
    simplex_iterations: int = 0
    lp_solves: int = 0
    basis_reuses: int = 0
    warm_hint_used: bool = False
    seconds: float = 0.0

    @property
    def basis_reuse_rate(self) -> float:
        return self.basis_reuses / self.lp_solves if self.lp_solves else 0.0


@dataclass
class Solution:
    """Solver outcome in the model's variable space."""

    status: LPStatus
    values: dict[str, float]
    objective: float | None
    stats: SolveStats | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.status is LPStatus.OPTIMAL

    @property
    def usable(self) -> bool:
        """True when the values are feasible — proven optimal or not.

        ``FEASIBLE`` (branch & bound ran out of node budget holding an
        integer incumbent) is usable-but-unproven; everything else usable
        is ``OPTIMAL``.
        """
        return self.status in (LPStatus.OPTIMAL, LPStatus.FEASIBLE)

    @property
    def failure_reason(self) -> str | None:
        """Human-readable reason when not ``ok`` (``None`` on success).

        Distinguishes ``"feasible"`` (node budget ran out but an integer
        incumbent is in hand — the values are usable, just not proven
        optimal) from ``"iteration_limit"`` (nothing usable; raise the
        budget), ``"numerical_difficulties"`` (HiGHS gave up on an
        ill-conditioned model — rescale and retry) and the infeasible /
        unbounded verdicts.
        """
        return None if self.ok else self.status.value

    def __getitem__(self, name: str) -> float:
        return self.values[name]

    def get(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)


def _problem_size(form: MatrixForm) -> int:
    rows = form.a_ub.shape[0] + form.a_eq.shape[0]
    return rows + len(form.variable_names)


def choose_backend(form: MatrixForm, warm_hint: bool = False) -> str:
    """Resolve ``"auto"`` to a concrete backend for ``form``.

    Deterministic in the problem alone (plus whether a warm hint exists:
    HiGHS cannot consume one, so a hint shifts the tipping point toward
    the in-tree solver).
    """
    size = _problem_size(form)
    if bool(np.any(form.integer)):
        n_int = int(np.count_nonzero(form.integer))
        if n_int <= _AUTO_MILP_INTEGERS and (size <= _AUTO_MILP_SIZE or warm_hint):
            return "pure"
        return "scipy"
    if size <= _AUTO_LP_SIZE or warm_hint:
        return "pure"
    return "scipy"


def solve_matrix_form(
    form: MatrixForm,
    backend: str = "auto",
    *,
    warm: WarmStartCache | None = None,
    node_limit: int = 20000,
) -> Solution:
    """Solve a ready-made matrix form, threading warm starts when given.

    With ``warm``, the cache is consulted under the form's
    :meth:`~repro.opt.model.MatrixForm.structure_fingerprint` before the
    solve and updated with the terminal basis/incumbent after it — the
    mechanism by which sweep variants start from the previous variant's
    vertex.  Only the in-tree backend can consume hints; ``"auto"``
    accounts for that when routing.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; use one of {_BACKENDS}")
    is_mip = bool(np.any(form.integer))
    fingerprint: str | None = None
    hint: WarmHint | None = None
    if warm is not None and backend in ("auto", "pure"):
        fingerprint = form.structure_fingerprint()
        hint = warm.get(fingerprint)
    chosen = choose_backend(form, warm_hint=hint is not None) if backend == "auto" else backend

    start = time.perf_counter()
    stats = SolveStats(backend=chosen, is_mip=is_mip)
    new_hint: WarmHint | None = None
    if chosen == "scipy":
        result = solve_milp_scipy(form) if is_mip else solve_lp_scipy(form)
        x, status, obj = result.x, result.status, result.objective
    elif chosen == "reference":
        if is_mip:
            ref = solve_milp_reference(form, node_limit=node_limit)
            x, status, obj = ref.x, ref.status, ref.objective
            stats.nodes = ref.nodes_explored
        else:
            lp_ref = solve_lp_reference(form)
            x, status, obj = lp_ref.x, lp_ref.status, lp_ref.objective
    elif is_mip:
        milp = solve_milp(
            form,
            node_limit=node_limit,
            warm_basis=None if hint is None else hint.basis,
            warm_incumbent=None if hint is None else hint.x,
        )
        x, status, obj = milp.x, milp.status, milp.objective
        stats.nodes = milp.nodes_explored
        stats.simplex_iterations = milp.simplex_iterations
        stats.lp_solves = milp.lp_solves
        stats.basis_reuses = milp.basis_reuses
        stats.warm_hint_used = milp.warm_hint_used
        if milp.usable:
            new_hint = WarmHint(basis=milp.root_basis, x=milp.x, objective=milp.objective)
    else:
        lp = solve_lp(form, start=None if hint is None else hint.basis)
        x, status, obj = lp.x, lp.status, lp.objective
        stats.simplex_iterations = lp.iterations
        stats.lp_solves = 1
        stats.basis_reuses = int(lp.warm_started)
        stats.warm_hint_used = lp.warm_started
        if lp.ok:
            new_hint = WarmHint(basis=lp.basis, x=lp.x, objective=lp.objective)
    stats.seconds = time.perf_counter() - start

    if warm is not None and fingerprint is not None and new_hint is not None:
        warm.put(fingerprint, new_hint)

    values = form.assignment(x) if x is not None else {}
    return Solution(status, values, obj, stats=stats)


def solve(
    model: Model,
    backend: str = "scipy",
    *,
    warm: WarmStartCache | None = None,
) -> Solution:
    """Solve ``model`` and return a :class:`Solution`.

    ``backend`` is ``"scipy"`` (HiGHS, the default), ``"pure"`` (this
    library's revised simplex / branch & bound), ``"auto"`` (the size- and
    integrality-based portfolio) or ``"reference"`` (the historical dense
    solvers, for A/B checks).
    """
    return solve_matrix_form(model.to_matrix_form(), backend, warm=warm)


__all__ = ["Solution", "SolveStats", "choose_backend", "solve", "solve_matrix_form"]
