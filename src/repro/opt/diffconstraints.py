"""Difference-constraint systems and (batched) min-plus feasibility.

Most of EffiTest's optimization problems have *network* structure: every
constraint is of the form ``x_v - x_u <= w``.  Setup constraints
(eq. 1 of the paper) give ``x_j - x_i >= D_ij - T``; hold bounds (eq. 21)
give ``x_i - x_j >= lambda_ij``; buffer ranges (eq. 3) are differences
against a reference node fixed at 0.  A system of such constraints is
feasible iff its constraint graph has no negative cycle, and Bellman–Ford
produces a witness assignment — this is how the library checks per-chip
configurability ("ideal yield") and solves the buffer-configuration problem
(§3.4) orders of magnitude faster than a generic MILP.

Three layers:

* :class:`RelaxKernel` — a precompiled graph.  Edges are sorted and grouped
  by destination node once at construction; each relaxation sweep is then a
  single gather (``dist[:, edge_u] + weights``) plus a segmented min
  (``np.minimum.reduceat``) and one masked column update — no Python loop
  over edges.  Batch rows that stop improving retire immediately and the
  surviving rows are compacted, so late sweeps only pay for stragglers.
* :func:`bellman_ford` — functional entry point; compiles a kernel per
  call.  Edge weights may carry a trailing *batch* axis so one call
  resolves feasibility for thousands of Monte-Carlo chips simultaneously.
  (:func:`bellman_ford_reference` keeps the historical per-edge Python
  sweep as the bit-identity baseline for tests and benchmarks.)
* :class:`DifferenceSystem` — a small convenience builder with named bounds
  and a distinguished reference node; it compiles its graph once and
  reuses the kernel across :meth:`~DifferenceSystem.solve` and
  :meth:`~DifferenceSystem.solve_on_lattice`.

Both kernels run epsilon-thresholded relaxation from the all-zeros state
(a virtual source) to the same shortest-path fixed point: relaxation order
— in-place per edge versus simultaneous per sweep — only reorders which
improving chain is applied first, and accepted values are always path
sums, so the quiescent states agree (pinned bit-exactly by the old-vs-new
tests in ``tests/opt/test_diffconstraints.py``).  One caveat: when two
path sums into the same node tie within ``_EPS`` (duplicated constraints,
algebraically equal weights rounded differently), the vectorized kernel
keeps the exact group minimum while the reference keeps whichever
candidate its edge order accepted first, so witnesses can differ below
the epsilon threshold.  Lattice-floored systems are immune in practice —
distinct path sums there differ by a full step, and the configure stage
re-snaps witnesses to the lattice — and generic continuous weights make
sub-epsilon ties measure-zero.

Discrete buffers: when every variable lives on a shared lattice
``{offset + k * step}``, flooring each weight to a multiple of ``step``
yields a system whose feasibility is *exactly* the feasibility of the
discrete problem (differences of lattice points are lattice-valued).  See
:meth:`DifferenceSystem.solve_on_lattice`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_EPS = 1e-9


@dataclass
class DiffResult:
    """Outcome of a difference-constraint solve.

    ``x`` has shape ``(n_nodes,)`` for scalar systems or
    ``(n_batch, n_nodes)`` for batched ones; infeasible rows contain NaN.
    ``feasible`` is a bool or a boolean array of shape ``(n_batch,)``.
    """

    feasible: np.ndarray | bool
    x: np.ndarray


class RelaxKernel:
    """Precompiled min-plus relaxation kernel for one constraint graph.

    The graph (``x[v] - x[u] <= w`` edges over ``n_nodes`` variables) is
    fixed at construction; only the weights vary between solves.  Edges
    are argsorted by destination once, so a relaxation sweep is three
    array operations over the whole edge set:

    1. gather:   ``cand = dist[:, edge_u] + weights``
    2. segment:  ``np.minimum.reduceat(cand, group_starts)`` — the best
       candidate per destination node
    3. update:   compare against the current ``dist`` column block and
       write back where the improvement exceeds the epsilon threshold

    Rows converge independently: a row with no accepted update retires
    from the sweep loop (it is at the fixed point), and surviving rows are
    compacted so the per-sweep cost tracks the straggler count.  Rows
    still improving after ``n_nodes`` sweeps contain a negative cycle.
    """

    def __init__(self, n_nodes: int, edge_u: np.ndarray, edge_v: np.ndarray):
        edge_u = np.asarray(edge_u, dtype=np.intp)
        edge_v = np.asarray(edge_v, dtype=np.intp)
        if edge_u.shape != edge_v.shape or edge_u.ndim != 1:
            raise ValueError("edge_u and edge_v must be 1-D arrays of equal length")
        if edge_u.size and np.any(
            (edge_u < 0) | (edge_u >= n_nodes) | (edge_v < 0) | (edge_v >= n_nodes)
        ):
            raise ValueError("edge endpoints out of range")
        self.n_nodes = int(n_nodes)
        self.n_edges = len(edge_u)
        self._schedule = None  # flattened level schedule, built on first use
        if self.n_edges == 0:
            self.order = np.zeros(0, dtype=np.intp)
            self._u = self.order
            self._starts = self.order
            self._targets = self.order
            self._levels = []
            return

        # Group edges by destination, then order the groups along an
        # approximate topological order (reverse DFS postorder) and batch
        # consecutive dependency-free groups into *levels*.  Distances
        # update between levels, so one sweep propagates a whole forward
        # chain instead of a single hop; only back edges (cycles) need
        # further sweeps.  The schedule is pure acceleration — any
        # relaxation order reaches the same fixed point.
        by_dest = np.argsort(edge_v, kind="stable")
        v_sorted = edge_v[by_dest]
        bounds = np.flatnonzero(np.r_[True, v_sorted[1:] != v_sorted[:-1]])
        bounds = np.r_[bounds, self.n_edges]
        group_targets = v_sorted[bounds[:-1]]
        rank = self._reverse_postorder(edge_u, edge_v)
        schedule = np.argsort(rank[group_targets], kind="stable")

        parts = [np.arange(bounds[g], bounds[g + 1], dtype=np.intp) for g in schedule]
        self.order = by_dest[np.concatenate(parts)]
        self._u = edge_u[self.order]
        sizes = np.array([len(p) for p in parts], dtype=np.intp)
        starts = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(np.intp)
        self._starts = starts  # per-group edge start, kernel order
        self._targets = group_targets[schedule]

        # Greedy leveling: a group whose sources include a target already
        # placed in the current level must start a new one (its reads would
        # otherwise miss that in-level update).
        self._levels = []
        level_start = 0
        placed: set[int] = set()
        for g in range(len(schedule)):
            sources = self._u[starts[g] : starts[g] + sizes[g]]
            if any(int(s) in placed for s in sources):
                self._append_level(level_start, g, starts, sizes)
                level_start = g
                placed = set()
            placed.add(int(self._targets[g]))
        self._append_level(level_start, len(schedule), starts, sizes)

    def _append_level(
        self, gs: int, ge: int, starts: np.ndarray, sizes: np.ndarray
    ) -> None:
        if ge <= gs:
            return
        es = int(starts[gs])
        ee = int(starts[ge - 1] + sizes[ge - 1])
        self._levels.append(
            (es, ee, self._targets[gs:ge], (starts[gs:ge] - es).astype(np.intp))
        )

    @staticmethod
    def _reverse_postorder(edge_u: np.ndarray, edge_v: np.ndarray) -> np.ndarray:
        """Quasi-topological node ranks (iterative DFS finish times)."""
        n = int(max(edge_u.max(), edge_v.max())) + 1 if len(edge_u) else 0
        adj: list[list[int]] = [[] for _ in range(n)]
        for u, v in zip(edge_u.tolist(), edge_v.tolist()):
            adj[u].append(v)
        visited = [False] * n
        post: list[int] = []
        for root in range(n):
            if visited[root]:
                continue
            visited[root] = True
            stack = [(root, 0)]
            while stack:
                node, i = stack.pop()
                targets = adj[node]
                while i < len(targets) and visited[targets[i]]:
                    i += 1
                if i < len(targets):
                    stack.append((node, i + 1))
                    visited[targets[i]] = True
                    stack.append((targets[i], 0))
                else:
                    post.append(node)
        rank = np.empty(n, dtype=np.intp)
        rank[post] = np.arange(n - 1, -1, -1)
        return rank

    def _schedule_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The level schedule flattened for the compiled kernel.

        Levels cover consecutive schedule groups, so the group edge ranges
        are exactly ``_starts`` with their successors and only the
        per-level group counts need assembling.  Returns ``(group_start,
        group_end, group_target, level_ptr)``.
        """
        if self._schedule is None:
            group_start = self._starts
            group_end = np.r_[self._starts[1:], self.n_edges].astype(np.intp)
            counts = np.array([len(tgts) for _, _, tgts, _ in self._levels], dtype=np.intp)
            level_ptr = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
            self._schedule = (group_start, group_end, self._targets, level_ptr)
        return self._schedule

    def solve(
        self, weights: np.ndarray, n_batch: int | None = None, mode: str = "vectorized"
    ) -> DiffResult:
        """Feasibility + witness; ``weights`` in original edge order.

        ``weights`` is ``(n_edges,)`` for a scalar system or ``(n_edges,
        n_batch)`` for a batched one.  Matches :func:`bellman_ford`.
        ``mode`` selects the sweep implementation (``"vectorized"`` or the
        bit-identical ``"compiled"`` per-row kernel).
        """
        weights = np.asarray(weights, dtype=float)
        batched = weights.ndim == 2
        if batched:
            if n_batch is None or weights.shape != (self.n_edges, n_batch):
                raise ValueError(
                    f"weights shape {weights.shape} does not match "
                    f"({self.n_edges}, n_batch={n_batch})"
                )
            rows = weights[self.order].T
        else:
            if weights.shape != (self.n_edges,):
                raise ValueError(
                    f"weights shape {weights.shape} does not match ({self.n_edges},)"
                )
            rows = weights[self.order].reshape(1, -1)
        dist, infeasible = self.solve_rows(np.ascontiguousarray(rows), mode=mode)
        if batched:
            return DiffResult(~infeasible, dist)
        return DiffResult(bool(~infeasible[0]), dist[0])

    def solve_rows(
        self, weights: np.ndarray, mode: str = "vectorized"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Core solve on destination-grouped ``(rows, n_edges)`` weights.

        The fast path for callers that precompute weights directly in the
        kernel's edge order (see
        :class:`repro.core.configuration.ConfigGraph`).  Returns ``(dist,
        infeasible)``; infeasible rows of ``dist`` contain NaN.  ``mode``
        picks the vectorized all-rows sweep (default) or the compiled
        per-row kernel of :mod:`repro.kernels.relax` — bit-identical by
        construction and pinned by ``tests/kernels``.
        """
        if mode not in ("vectorized", "compiled"):
            raise ValueError(
                f"mode must be 'vectorized' or 'compiled', got {mode!r}"
            )
        n_rows = weights.shape[0]
        dist = np.zeros((n_rows, self.n_nodes))
        infeasible = np.zeros(n_rows, dtype=bool)
        if self.n_edges == 0 or n_rows == 0:
            return dist, infeasible
        if mode == "compiled":
            return self._solve_rows_compiled(weights, dist, infeasible)

        u = self._u
        # Working set: rows still making >eps improvements.  `d`/`w` are
        # compacted copies; retired rows scatter back through `active_idx`.
        active_idx = np.arange(n_rows, dtype=np.intp)
        d = dist
        w = weights
        cand = np.empty((n_rows, self.n_edges))

        # Early negative-cycle cut: a distance is always the weight of some
        # relaxation walk from the all-zeros source, and a walk that repeats
        # no edge weighs at least sum(min(w, 0)).  A row dipping below that
        # (minus float dust) has traversed a negative cycle and can retire
        # as infeasible immediately instead of burning all n_nodes sweeps —
        # the workload is dominated by infeasible rows otherwise, since
        # feasible rows quiesce within a few scheduled sweeps.
        floor_bound = np.minimum(w, 0.0).sum(axis=1)
        floor_bound -= 1e-6 + 1e-9 * np.abs(w).sum(axis=1)

        # The virtual source with 0-weight edges to all nodes is encoded by
        # the all-zeros initial distances, so at most n_nodes sweeps are
        # needed; rows still improving afterwards contain a negative cycle.
        for _ in range(self.n_nodes):
            rows = d.shape[0]
            changed = np.zeros(rows, dtype=bool)
            for es, ee, tgts, lstarts in self._levels:
                buf = cand[:rows, es:ee]
                np.take(d, u[es:ee], axis=1, out=buf)
                buf += w[:, es:ee]
                grouped = np.minimum.reduceat(buf, lstarts, axis=1)
                cur = d[:, tgts]
                better = grouped < cur - _EPS
                improved = better.any(axis=1)
                if improved.any():
                    d[:, tgts] = np.where(better, grouped, cur)
                    changed |= improved
            diverged = changed & (d.min(axis=1) < floor_bound)
            retire = ~changed | diverged
            if retire.any():
                if diverged.any():
                    infeasible[active_idx[np.flatnonzero(diverged)]] = True
                keep = np.flatnonzero(~retire)
                if d is dist:
                    # First retirement: switch to compacted copies so the
                    # full array keeps the retired rows' final values.
                    d = d[keep]
                else:
                    quiesced = np.flatnonzero(~changed)
                    dist[active_idx[quiesced]] = d[quiesced]
                    d = d[keep]
                w = w[keep]
                floor_bound = floor_bound[keep]
                active_idx = active_idx[keep]
                if active_idx.size == 0:
                    dist[infeasible] = np.nan
                    return dist, infeasible

        # One extra quiescence check over the whole edge set: rows that can
        # still relax against their final distances contain a negative cycle.
        buf = cand[: d.shape[0]]
        np.take(d, u, axis=1, out=buf)
        buf += w
        grouped = np.minimum.reduceat(buf, self._starts, axis=1)
        bad = (grouped < d[:, self._targets] - _EPS).any(axis=1)
        if d is not dist:
            dist[active_idx] = d
        infeasible[active_idx[bad]] = True
        dist[infeasible] = np.nan
        return dist, infeasible

    def _solve_rows_compiled(
        self, weights: np.ndarray, dist_out: np.ndarray, infeasible_out: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dispatch one batch to the compiled per-row relaxation kernel.

        The early negative-cycle floor is computed here in NumPy (pairwise
        summation) and passed in, so its float rounding matches the
        vectorized sweep bit for bit; the kernel itself replays the same
        level schedule row by row (see :mod:`repro.kernels.relax`).
        """
        from repro.kernels.relax import relax_rows_kernel

        w = np.ascontiguousarray(weights, dtype=float)
        floor_bound = np.minimum(w, 0.0).sum(axis=1)
        floor_bound -= 1e-6 + 1e-9 * np.abs(w).sum(axis=1)
        group_start, group_end, group_target, level_ptr = self._schedule_arrays()
        relax_rows_kernel(
            dist_out,
            infeasible_out,
            w,
            self._u,
            group_start,
            group_end,
            group_target,
            level_ptr,
            floor_bound,
            self.n_nodes,
            _EPS,
        )
        dist_out[infeasible_out] = np.nan
        return dist_out, infeasible_out


def bellman_ford(
    n_nodes: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    weights: np.ndarray,
    n_batch: int | None = None,
) -> DiffResult:
    """Feasibility + witness for ``x[v] - x[u] <= w`` constraint systems.

    Parameters
    ----------
    n_nodes:
        Number of variables (graph nodes).
    edge_u, edge_v:
        Integer arrays of shape ``(n_edges,)``: constraint ``x[v]-x[u] <= w``.
    weights:
        Shape ``(n_edges,)`` for a scalar system, or ``(n_edges, n_batch)``
        for a batched one (each batch column is an independent system over
        the same graph).
    n_batch:
        Required iff ``weights`` is 2-D; checked against its second axis.

    Returns
    -------
    DiffResult
        The witness is the Bellman–Ford potential from a virtual source
        connected to every node with weight 0; it is the *component-wise
        largest* solution bounded above by 0 on each node's tightest chain.
        Any uniform shift of a row is also feasible.

    This is a thin wrapper that compiles a :class:`RelaxKernel` per call;
    hot loops that solve the same graph repeatedly should compile once and
    call :meth:`RelaxKernel.solve` (or precompute destination-grouped
    weights and call :meth:`RelaxKernel.solve_rows`).
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim == 2 and n_batch is None:
        raise ValueError(
            f"weights shape {weights.shape} does not match "
            f"({len(np.atleast_1d(edge_u))}, n_batch=None)"
        )
    return RelaxKernel(n_nodes, edge_u, edge_v).solve(weights, n_batch=n_batch)


def bellman_ford_reference(
    n_nodes: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    weights: np.ndarray,
    n_batch: int | None = None,
) -> DiffResult:
    """The historical per-edge Python relaxation sweep, kept verbatim.

    Same contract as :func:`bellman_ford`.  Retained as the bit-identity
    baseline: the randomized suite asserts exact witness equality against
    the vectorized kernel, and ``benchmarks/bench_configure.py`` times the
    configure stage on both.
    """
    edge_u = np.asarray(edge_u, dtype=np.intp)
    edge_v = np.asarray(edge_v, dtype=np.intp)
    weights = np.asarray(weights, dtype=float)
    if edge_u.shape != edge_v.shape or edge_u.ndim != 1:
        raise ValueError("edge_u and edge_v must be 1-D arrays of equal length")
    batched = weights.ndim == 2
    if batched:
        if n_batch is None or weights.shape != (len(edge_u), n_batch):
            raise ValueError(
                f"weights shape {weights.shape} does not match "
                f"({len(edge_u)}, n_batch={n_batch})"
            )
        dist = np.zeros((n_batch, n_nodes))
        active = np.ones(n_batch, dtype=bool)
    else:
        dist = np.zeros((1, n_nodes))
        weights = weights.reshape(-1, 1)
        active = np.ones(1, dtype=bool)

    n_edges = len(edge_u)
    if np.any((edge_u < 0) | (edge_u >= n_nodes) | (edge_v < 0) | (edge_v >= n_nodes)):
        raise ValueError("edge endpoints out of range")

    rows = dist.shape[0]
    for _ in range(n_nodes):
        if not active.any():
            break
        changed = np.zeros(rows, dtype=bool)
        for e in range(n_edges):
            u, v = edge_u[e], edge_v[e]
            candidate = dist[:, u] + weights[e]
            better = candidate < dist[:, v] - _EPS
            if better.any():
                improve = better & active
                if improve.any():
                    dist[improve, v] = candidate[improve]
                    changed |= improve
        active &= changed

    infeasible = np.zeros(rows, dtype=bool)
    if active.any():
        for e in range(n_edges):
            u, v = edge_u[e], edge_v[e]
            candidate = dist[:, u] + weights[e]
            infeasible |= active & (candidate < dist[:, v] - _EPS)

    dist[infeasible] = np.nan
    if batched:
        return DiffResult(~infeasible, dist)
    return DiffResult(bool(~infeasible[0]), dist[0])


class DifferenceSystem:
    """Incremental builder for difference-constraint systems.

    Nodes ``0..n_nodes-1`` are the variables; an internal reference node is
    created automatically and fixed at 0, so absolute bounds become
    difference edges against it.

    >>> sys_ = DifferenceSystem(2)
    >>> sys_.add_le(0, 1, 3.0)      # x1 - x0 <= 3
    >>> sys_.add_ge(0, 1, -1.0)     # x1 - x0 >= -1
    >>> sys_.add_bounds(0, -5, 5)
    >>> sys_.add_bounds(1, -5, 5)
    >>> result = sys_.solve()
    >>> bool(result.feasible)
    True
    """

    def __init__(self, n_nodes: int, n_batch: int | None = None) -> None:
        if n_nodes < 0:
            raise ValueError("n_nodes must be non-negative")
        self.n_nodes = n_nodes
        self.n_batch = n_batch
        self._ref = n_nodes
        self._edges_u: list[int] = []
        self._edges_v: list[int] = []
        self._weights: list[np.ndarray | float] = []
        self._compiled: tuple[int, RelaxKernel] | None = None

    def _check_weight(self, weight) -> np.ndarray | float:
        if np.ndim(weight) == 0:
            return float(weight)
        arr = np.asarray(weight, dtype=float)
        if self.n_batch is None or arr.shape != (self.n_batch,):
            raise ValueError(
                f"batched weight must have shape ({self.n_batch},), got {arr.shape}"
            )
        return arr

    def add_le(self, u: int, v: int, weight) -> None:
        """Add ``x_v - x_u <= weight``."""
        self._edges_u.append(u)
        self._edges_v.append(v)
        self._weights.append(self._check_weight(weight))

    def add_ge(self, u: int, v: int, weight) -> None:
        """Add ``x_v - x_u >= weight`` (stored as ``x_u - x_v <= -weight``)."""
        self.add_le(v, u, -self._check_weight(weight))

    def add_upper_bound(self, v: int, bound) -> None:
        """Add ``x_v <= bound``."""
        self.add_le(self._ref, v, bound)

    def add_lower_bound(self, v: int, bound) -> None:
        """Add ``x_v >= bound``."""
        self.add_le(v, self._ref, -self._check_weight(bound))

    def add_bounds(self, v: int, lower, upper) -> None:
        """Add ``lower <= x_v <= upper``."""
        self.add_lower_bound(v, lower)
        self.add_upper_bound(v, upper)

    def _weight_matrix(self) -> np.ndarray:
        if self.n_batch is None:
            return np.array([float(w) for w in self._weights])
        rows = [
            np.full(self.n_batch, w) if np.ndim(w) == 0 else w for w in self._weights
        ]
        return np.array(rows) if rows else np.zeros((0, self.n_batch))

    def _kernel(self) -> RelaxKernel:
        """The compiled graph, rebuilt only when edges were added."""
        n_edges = len(self._edges_u)
        if self._compiled is None or self._compiled[0] != n_edges:
            self._compiled = (
                n_edges,
                RelaxKernel(
                    self.n_nodes + 1,
                    np.array(self._edges_u, dtype=np.intp),
                    np.array(self._edges_v, dtype=np.intp),
                ),
            )
        return self._compiled[1]

    def solve(self) -> DiffResult:
        """Solve the system; witness values are normalized to reference = 0."""
        weights = self._weight_matrix()
        result = self._kernel().solve(weights, n_batch=self.n_batch)
        return self._normalize(result)

    def solve_on_lattice(self, step: float) -> DiffResult:
        """Solve with all variables restricted to multiples of ``step``.

        Weight flooring makes this *exact* for the discrete problem (see
        module docstring).  Witness values are multiples of ``step``.
        """
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        weights = self._weight_matrix()
        floored = np.floor(weights / step + _EPS) * step
        result = self._kernel().solve(floored, n_batch=self.n_batch)
        normalized = self._normalize(result)
        # Re-snap: normalization subtracts a lattice value from lattice
        # values, so this only removes floating-point dust.
        with np.errstate(invalid="ignore"):
            normalized.x[...] = np.round(normalized.x / step) * step
        return normalized

    def _normalize(self, result: DiffResult) -> DiffResult:
        x = result.x
        if x.ndim == 1:
            ref_value = x[self._ref]
            x = x - ref_value if np.isfinite(ref_value) else x
            return DiffResult(result.feasible, x[: self.n_nodes])
        ref_values = x[:, self._ref : self._ref + 1]
        with np.errstate(invalid="ignore"):
            x = x - ref_values
        return DiffResult(result.feasible, x[:, : self.n_nodes])
