"""Difference-constraint systems and (batched) Bellman–Ford feasibility.

Most of EffiTest's optimization problems have *network* structure: every
constraint is of the form ``x_v - x_u <= w``.  Setup constraints
(eq. 1 of the paper) give ``x_j - x_i >= D_ij - T``; hold bounds (eq. 21)
give ``x_i - x_j >= lambda_ij``; buffer ranges (eq. 3) are differences
against a reference node fixed at 0.  A system of such constraints is
feasible iff its constraint graph has no negative cycle, and Bellman–Ford
produces a witness assignment — this is how the library checks per-chip
configurability ("ideal yield") and solves the buffer-configuration problem
(§3.4) orders of magnitude faster than a generic MILP.

Two layers:

* :func:`bellman_ford` — the array-level workhorse.  Edge weights may carry a
  leading *batch* axis so one call resolves feasibility for thousands of
  Monte-Carlo chips simultaneously.
* :class:`DifferenceSystem` — a small convenience builder with named bounds
  and a distinguished reference node.

Discrete buffers: when every variable lives on a shared lattice
``{offset + k * step}``, flooring each weight to a multiple of ``step``
yields a system whose feasibility is *exactly* the feasibility of the
discrete problem (differences of lattice points are lattice-valued).  See
:meth:`DifferenceSystem.solve_on_lattice`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_EPS = 1e-9


@dataclass
class DiffResult:
    """Outcome of a difference-constraint solve.

    ``x`` has shape ``(n_nodes,)`` for scalar systems or
    ``(n_batch, n_nodes)`` for batched ones; infeasible rows contain NaN.
    ``feasible`` is a bool or a boolean array of shape ``(n_batch,)``.
    """

    feasible: np.ndarray | bool
    x: np.ndarray


def bellman_ford(
    n_nodes: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    weights: np.ndarray,
    n_batch: int | None = None,
) -> DiffResult:
    """Feasibility + witness for ``x[v] - x[u] <= w`` constraint systems.

    Parameters
    ----------
    n_nodes:
        Number of variables (graph nodes).
    edge_u, edge_v:
        Integer arrays of shape ``(n_edges,)``: constraint ``x[v]-x[u] <= w``.
    weights:
        Shape ``(n_edges,)`` for a scalar system, or ``(n_edges, n_batch)``
        for a batched one (each batch column is an independent system over
        the same graph).
    n_batch:
        Required iff ``weights`` is 2-D; checked against its second axis.

    Returns
    -------
    DiffResult
        The witness is the Bellman–Ford potential from a virtual source
        connected to every node with weight 0; it is the *component-wise
        largest* solution bounded above by 0 on each node's tightest chain.
        Any uniform shift of a row is also feasible.
    """
    edge_u = np.asarray(edge_u, dtype=np.intp)
    edge_v = np.asarray(edge_v, dtype=np.intp)
    weights = np.asarray(weights, dtype=float)
    if edge_u.shape != edge_v.shape or edge_u.ndim != 1:
        raise ValueError("edge_u and edge_v must be 1-D arrays of equal length")
    batched = weights.ndim == 2
    if batched:
        if n_batch is None or weights.shape != (len(edge_u), n_batch):
            raise ValueError(
                f"weights shape {weights.shape} does not match "
                f"({len(edge_u)}, n_batch={n_batch})"
            )
        dist = np.zeros((n_batch, n_nodes))
        active = np.ones(n_batch, dtype=bool)
    else:
        dist = np.zeros((1, n_nodes))
        weights = weights.reshape(-1, 1)
        active = np.ones(1, dtype=bool)

    n_edges = len(edge_u)
    if np.any((edge_u < 0) | (edge_u >= n_nodes) | (edge_v < 0) | (edge_v >= n_nodes)):
        raise ValueError("edge endpoints out of range")

    # Virtual source with 0-weight edges to all nodes is encoded by the
    # all-zeros initial distances, so at most n_nodes relaxation sweeps are
    # needed; rows still improving afterwards contain a negative cycle.
    rows = dist.shape[0]
    for _ in range(n_nodes):
        if not active.any():
            break
        changed = np.zeros(rows, dtype=bool)
        for e in range(n_edges):
            u, v = edge_u[e], edge_v[e]
            candidate = dist[:, u] + weights[e]
            better = candidate < dist[:, v] - _EPS
            if better.any():
                improve = better & active
                if improve.any():
                    dist[improve, v] = candidate[improve]
                    changed |= improve
        active &= changed

    # One extra sweep: rows that can still relax are infeasible.
    infeasible = np.zeros(rows, dtype=bool)
    if active.any():
        for e in range(n_edges):
            u, v = edge_u[e], edge_v[e]
            candidate = dist[:, u] + weights[e]
            infeasible |= active & (candidate < dist[:, v] - _EPS)

    dist[infeasible] = np.nan
    if batched:
        return DiffResult(~infeasible, dist)
    return DiffResult(bool(~infeasible[0]), dist[0])


class DifferenceSystem:
    """Incremental builder for difference-constraint systems.

    Nodes ``0..n_nodes-1`` are the variables; an internal reference node is
    created automatically and fixed at 0, so absolute bounds become
    difference edges against it.

    >>> sys_ = DifferenceSystem(2)
    >>> sys_.add_le(0, 1, 3.0)      # x1 - x0 <= 3
    >>> sys_.add_ge(0, 1, -1.0)     # x1 - x0 >= -1
    >>> sys_.add_bounds(0, -5, 5)
    >>> sys_.add_bounds(1, -5, 5)
    >>> result = sys_.solve()
    >>> bool(result.feasible)
    True
    """

    def __init__(self, n_nodes: int, n_batch: int | None = None) -> None:
        if n_nodes < 0:
            raise ValueError("n_nodes must be non-negative")
        self.n_nodes = n_nodes
        self.n_batch = n_batch
        self._ref = n_nodes
        self._edges_u: list[int] = []
        self._edges_v: list[int] = []
        self._weights: list[np.ndarray | float] = []

    def _check_weight(self, weight) -> np.ndarray | float:
        if np.ndim(weight) == 0:
            return float(weight)
        arr = np.asarray(weight, dtype=float)
        if self.n_batch is None or arr.shape != (self.n_batch,):
            raise ValueError(
                f"batched weight must have shape ({self.n_batch},), got {arr.shape}"
            )
        return arr

    def add_le(self, u: int, v: int, weight) -> None:
        """Add ``x_v - x_u <= weight``."""
        self._edges_u.append(u)
        self._edges_v.append(v)
        self._weights.append(self._check_weight(weight))

    def add_ge(self, u: int, v: int, weight) -> None:
        """Add ``x_v - x_u >= weight`` (stored as ``x_u - x_v <= -weight``)."""
        w = self._check_weight(weight)
        self.add_le(v, u, -w if isinstance(w, np.ndarray) else -w)

    def add_upper_bound(self, v: int, bound) -> None:
        """Add ``x_v <= bound``."""
        self.add_le(self._ref, v, bound)

    def add_lower_bound(self, v: int, bound) -> None:
        """Add ``x_v >= bound``."""
        w = self._check_weight(bound)
        self.add_le(v, self._ref, -w if isinstance(w, np.ndarray) else -w)

    def add_bounds(self, v: int, lower, upper) -> None:
        """Add ``lower <= x_v <= upper``."""
        self.add_lower_bound(v, lower)
        self.add_upper_bound(v, upper)

    def _weight_matrix(self) -> np.ndarray:
        if self.n_batch is None:
            return np.array([float(w) for w in self._weights])
        rows = [
            np.full(self.n_batch, w) if np.ndim(w) == 0 else w for w in self._weights
        ]
        return np.array(rows) if rows else np.zeros((0, self.n_batch))

    def solve(self) -> DiffResult:
        """Solve the system; witness values are normalized to reference = 0."""
        weights = self._weight_matrix()
        result = bellman_ford(
            self.n_nodes + 1,
            np.array(self._edges_u, dtype=np.intp),
            np.array(self._edges_v, dtype=np.intp),
            weights,
            n_batch=self.n_batch,
        )
        return self._normalize(result)

    def solve_on_lattice(self, step: float) -> DiffResult:
        """Solve with all variables restricted to multiples of ``step``.

        Weight flooring makes this *exact* for the discrete problem (see
        module docstring).  Witness values are multiples of ``step``.
        """
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        weights = self._weight_matrix()
        floored = np.floor(weights / step + _EPS) * step
        result = bellman_ford(
            self.n_nodes + 1,
            np.array(self._edges_u, dtype=np.intp),
            np.array(self._edges_v, dtype=np.intp),
            floored,
            n_batch=self.n_batch,
        )
        normalized = self._normalize(result)
        # Re-snap: normalization subtracts a lattice value from lattice
        # values, so this only removes floating-point dust.
        with np.errstate(invalid="ignore"):
            normalized.x[...] = np.round(normalized.x / step) * step
        return normalized

    def _normalize(self, result: DiffResult) -> DiffResult:
        x = result.x
        if x.ndim == 1:
            ref_value = x[self._ref]
            x = x - ref_value if np.isfinite(ref_value) else x
            return DiffResult(result.feasible, x[: self.n_nodes])
        ref_values = x[:, self._ref : self._ref + 1]
        with np.errstate(invalid="ignore"):
            x = x - ref_values
        return DiffResult(result.feasible, x[:, : self.n_nodes])
