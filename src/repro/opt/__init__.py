"""Optimization substrate: LP/MILP modelling, solvers and network algorithms.

This subpackage replaces the commercial ILP solver (Gurobi) used by the
paper with:

* a solver-agnostic modelling layer (:class:`Model`, :class:`LinExpr`),
* a SciPy/HiGHS backend plus a pure-Python two-phase simplex and branch &
  bound for independence and cross-checking,
* specialized network solvers exploiting the structure of EffiTest's
  problems: difference-constraint feasibility (Bellman–Ford, chip-batched),
  Karp's maximum mean cycle for minimum clock period, and weighted medians
  for delay-range alignment.
"""

from repro.opt.branch_bound import MILPResult, solve_milp
from repro.opt.cycles import (
    maximum_mean_cycle,
    min_clock_period_bounded,
    min_clock_period_unbounded,
)
from repro.opt.diffconstraints import (
    DifferenceSystem,
    DiffResult,
    RelaxKernel,
    bellman_ford,
    bellman_ford_reference,
)
from repro.opt.linexpr import Constraint, LinExpr, Sense
from repro.opt.model import Model, ObjectiveSense, VarType
from repro.opt.reference_solver import solve_lp_reference, solve_milp_reference
from repro.opt.simplex import Basis, LPResult, LPStatus, solve_lp
from repro.opt.solve import Solution, SolveStats, choose_backend, solve, solve_matrix_form
from repro.opt.warmstart import WarmHint, WarmStartCache
from repro.opt.weighted_median import weighted_median, weighted_median_rows

__all__ = [
    "Basis",
    "Constraint",
    "DiffResult",
    "DifferenceSystem",
    "LinExpr",
    "LPResult",
    "LPStatus",
    "MILPResult",
    "Model",
    "ObjectiveSense",
    "RelaxKernel",
    "Sense",
    "Solution",
    "SolveStats",
    "VarType",
    "WarmHint",
    "WarmStartCache",
    "bellman_ford",
    "bellman_ford_reference",
    "choose_backend",
    "maximum_mean_cycle",
    "min_clock_period_bounded",
    "min_clock_period_unbounded",
    "solve",
    "solve_lp",
    "solve_lp_reference",
    "solve_milp",
    "solve_milp_reference",
    "solve_matrix_form",
    "weighted_median",
    "weighted_median_rows",
]
