"""Bounded-variable revised simplex with warm starts.

A self-contained LP solver used as the in-tree backend of :mod:`repro.opt`
(the paper used Gurobi; our default backend is SciPy's HiGHS, and this
module removes even that dependency for small problems and serves as an
independent cross-check in tests).  The historical dense two-phase tableau
solver it replaced lives on verbatim in :mod:`repro.opt.reference_solver`
for equivalence suites and benchmarks.

The solver works directly on the :class:`~repro.opt.model.MatrixForm`

    min c'x   s.t.  A_ub x <= b_ub,  A_eq x == b_eq,  l <= x <= u

*without* the old shift/mirror/split standardization: structural variables
keep their own (possibly infinite) bounds and inequality rows get one slack
column each, so a variable bound change — the only thing branch & bound
ever edits — maps 1:1 onto a column of the standing problem.  That is what
makes warm starts work:

- :class:`Basis` captures a vertex (basic column set + which nonbasic
  columns sit at their upper bound) and is cheap to store and share;
- ``solve_lp(form, start=basis)`` re-optimizes from that vertex: primal
  simplex when the start is still primal feasible (objective updates
  across sweep variants), dual simplex when only dual feasible (bound
  changes from branching), and a cold two-phase solve as the fallback.

Pivoting uses Bland-style smallest-index rules throughout — entering
column, leaving row, and dual leaving/entering ties are all resolved by
index — so the visited vertex sequence (and therefore the reported
optimum) is deterministic and cycling is excluded.  The basis inverse is
maintained by product-form updates and refactorized periodically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.opt.model import MatrixForm

_TOL = 1e-9
_PIV_TOL = 1e-9
_FEAS_TOL = 1e-8
_DUAL_TOL = 1e-7
_REFACTOR_EVERY = 64

# Column states.
_AT_LOWER = 0
_AT_UPPER = 1
_BASIC = 2
_FREE = 3  # doubly-unbounded nonbasic column parked at zero


class LPStatus(Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    #: The solver gave up for numerical reasons (HiGHS status 4): neither a
    #: proof of infeasibility nor an iteration budget problem — retrying
    #: with a rescaled model can succeed where more iterations cannot.
    NUMERICAL = "numerical_difficulties"
    #: Branch & bound only: the node budget ran out *with* an integer
    #: incumbent in hand.  The solution is feasible and usable but not
    #: proven optimal — callers can tell a usable answer from a dead one.
    FEASIBLE = "feasible"


@dataclass(frozen=True)
class Basis:
    """A simplex vertex in standardized column space.

    ``basic`` lists the basic column indices in row order (structural
    columns first, then one slack column per inequality row);
    ``at_upper`` lists the nonbasic columns parked at their finite upper
    bound (all other nonbasic columns sit at their lower bound, or at
    zero when doubly unbounded).  Hashable and picklable, so it can ride
    in warm-start caches across solves, sweep variants and processes.
    """

    basic: tuple[int, ...]
    at_upper: tuple[int, ...] = ()


@dataclass
class LPResult:
    """Outcome of an LP solve in the original variable space."""

    status: LPStatus
    x: np.ndarray | None
    objective: float | None
    #: Terminal vertex for warm-starting a related solve; ``None`` when the
    #: solve did not end at a clean vertex (infeasible/unbounded/limit, or
    #: a degenerate basis still holding a phase-1 artificial).
    basis: "Basis | None" = field(default=None, repr=False)
    #: Simplex pivots spent (all phases).
    iterations: int = 0
    #: True when the solve reoptimized from a caller-provided start basis
    #: instead of running the two-phase cold start.
    warm_started: bool = False

    @property
    def ok(self) -> bool:
        return self.status is LPStatus.OPTIMAL


class _Numerical(Exception):
    """Internal: basis refactorization failed; caller degrades gracefully."""


def _build_standard(
    form: MatrixForm,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Standardize to ``A x = b`` with per-column bounds (no var rewriting).

    Columns ``0..n-1`` are the structural variables with their original
    bounds; columns ``n..n+n_ub-1`` are slacks in ``[0, inf)`` turning the
    inequality rows into equalities.  Rows are ordered ub-rows then
    eq-rows.
    """
    n = len(form.variable_names)
    n_ub = form.a_ub.shape[0] if form.a_ub.size else len(form.b_ub)
    n_eq = form.a_eq.shape[0] if form.a_eq.size else len(form.b_eq)
    m = n_ub + n_eq
    a = np.zeros((m, n + n_ub))
    if form.a_ub.size:
        a[:n_ub, :n] = form.a_ub
    if form.a_eq.size:
        a[n_ub:, :n] = form.a_eq
    if n_ub:
        a[np.arange(n_ub), n + np.arange(n_ub)] = 1.0
    b = np.concatenate([np.asarray(form.b_ub, float), np.asarray(form.b_eq, float)])
    c = np.concatenate([np.asarray(form.c, float), np.zeros(n_ub)])
    lower = np.concatenate([np.asarray(form.lower, float), np.zeros(n_ub)])
    upper = np.concatenate([np.asarray(form.upper, float), np.full(n_ub, np.inf)])
    return a, b, c, lower, upper, n, n_ub


class _RevisedSimplex:
    """One standardized problem instance plus the working basis state."""

    def __init__(self, form: MatrixForm):
        (self.a, self.b, self.cost, self.lower, self.upper, self.n_struct, self.n_ub) = (
            _build_standard(form)
        )
        self.m = self.a.shape[0]
        self.n_std = self.a.shape[1]  # structural + slack columns
        self.status = np.empty(self.n_std, dtype=np.int8)
        self.basic = np.empty(0, dtype=np.intp)
        self.b_inv = np.empty((self.m, self.m))
        self.xb = np.empty(0)
        self.iterations = 0
        self._last_refactor = 0

    # -- state helpers ---------------------------------------------------------

    def _preferred_status(self) -> np.ndarray:
        st = np.full(self.a.shape[1], _FREE, dtype=np.int8)
        st[np.isfinite(self.upper)] = _AT_UPPER
        st[np.isfinite(self.lower)] = _AT_LOWER  # lower wins when both finite
        return st

    def _nonbasic_values(self) -> np.ndarray:
        vals = np.zeros(self.a.shape[1])
        at_lo = self.status == _AT_LOWER
        at_up = self.status == _AT_UPPER
        vals[at_lo] = self.lower[at_lo]
        vals[at_up] = self.upper[at_up]
        return vals

    def _recompute_xb(self) -> None:
        vals = self._nonbasic_values()
        vals[self.basic] = 0.0
        self.xb = self.b_inv @ (self.b - self.a @ vals)

    def _refactor(self) -> None:
        base = self.a[:, self.basic]
        try:
            inv = np.linalg.inv(base)
        except np.linalg.LinAlgError as exc:
            raise _Numerical from exc
        if not np.isfinite(inv).all():
            raise _Numerical
        self.b_inv = inv
        self._recompute_xb()
        self._last_refactor = self.iterations

    def _maybe_refactor(self) -> None:
        if self.iterations - self._last_refactor >= _REFACTOR_EVERY:
            self._refactor()

    def _pivot_update(self, row: int, col: int, w: np.ndarray) -> None:
        """Product-form update of ``b_inv`` for basic[row] := col."""
        piv = w[row]
        if abs(piv) < _PIV_TOL:
            raise _Numerical
        row_inv = self.b_inv[row] / piv
        rest = w.copy()
        rest[row] = 0.0
        self.b_inv -= np.outer(rest, row_inv)
        self.b_inv[row] = row_inv

    def primal_feasible(self) -> bool:
        lb = self.lower[self.basic]
        ub = self.upper[self.basic]
        return bool(np.all(self.xb >= lb - _FEAS_TOL) and np.all(self.xb <= ub + _FEAS_TOL))

    def _reduced_costs(self, cost: np.ndarray) -> np.ndarray:
        y = cost[self.basic] @ self.b_inv
        return cost - y @ self.a

    def dual_feasible(self, cost: np.ndarray) -> bool:
        d = self._reduced_costs(cost)
        bad = (
            ((self.status == _AT_LOWER) & (d < -_DUAL_TOL))
            | ((self.status == _AT_UPPER) & (d > _DUAL_TOL))
            | ((self.status == _FREE) & (np.abs(d) > _DUAL_TOL))
        )
        return not bool(bad.any())

    # -- warm install ----------------------------------------------------------

    def install_basis(self, start: Basis) -> bool:
        """Adopt a caller basis; False when it no longer fits the problem."""
        basic = np.asarray(start.basic, dtype=np.intp)
        if basic.size != self.m:
            return False
        if basic.size and (
            basic.min() < 0 or basic.max() >= self.n_std or np.unique(basic).size != basic.size
        ):
            return False
        status = self._preferred_status()
        for j in start.at_upper:
            if 0 <= j < self.n_std and math.isfinite(self.upper[j]):
                status[j] = _AT_UPPER
        status[basic] = _BASIC
        base = self.a[:, basic]
        try:
            inv = np.linalg.inv(base)
        except np.linalg.LinAlgError:
            return False
        if not np.isfinite(inv).all():
            return False
        if self.m and float(np.abs(base @ inv - np.eye(self.m)).max()) > 1e-6:
            return False
        self.basic = basic
        self.status = status
        self.b_inv = inv
        self._recompute_xb()
        self._last_refactor = self.iterations
        return True

    # -- primal simplex --------------------------------------------------------

    def primal(self, cost: np.ndarray, max_iter: int) -> LPStatus:
        """Primal simplex from the current (primal feasible) basis."""
        while True:
            if self.iterations >= max_iter:
                return LPStatus.ITERATION_LIMIT
            self._maybe_refactor()
            d = self._reduced_costs(cost)
            st = self.status
            candidates = (
                ((st == _AT_LOWER) & (d < -_TOL))
                | ((st == _AT_UPPER) & (d > _TOL))
                | ((st == _FREE) & (np.abs(d) > _TOL))
            )
            if not candidates.any():
                return LPStatus.OPTIMAL
            j = int(np.argmax(candidates))  # Bland: smallest improving index
            direction = 1.0 if (st[j] == _AT_LOWER or (st[j] == _FREE and d[j] < 0.0)) else -1.0
            w = self.b_inv @ self.a[:, j]
            g = direction * w  # xb moves by -t * g for step t >= 0
            t_arr = np.full(self.m, np.inf)
            lb = self.lower[self.basic]
            ub = self.upper[self.basic]
            pos = g > _PIV_TOL
            if pos.any():
                num = np.where(np.isfinite(lb[pos]), self.xb[pos] - lb[pos], np.inf)
                t_arr[pos] = np.maximum(num, 0.0) / g[pos]
            neg = g < -_PIV_TOL
            if neg.any():
                num = np.where(np.isfinite(ub[neg]), self.xb[neg] - ub[neg], -np.inf)
                t_arr[neg] = np.maximum(num / g[neg], 0.0)
            t_basic = float(t_arr.min()) if self.m else np.inf
            t_self = self.upper[j] - self.lower[j]  # inf unless both bounds finite
            if t_self <= t_basic:
                if not np.isfinite(t_self):
                    return LPStatus.UNBOUNDED
                # Bound flip: the entering column hits its own opposite
                # bound first; no basis change.
                self.xb -= t_self * g
                self.status[j] = _AT_UPPER if st[j] == _AT_LOWER else _AT_LOWER
                self.iterations += 1
                continue
            ties = np.flatnonzero(t_arr <= t_basic + _TOL)
            r = int(ties[np.argmin(self.basic[ties])])  # Bland: smallest leaving var
            t = max(t_basic, 0.0)
            self.xb -= t * g
            if st[j] == _AT_LOWER:
                entering_value = self.lower[j] + t
            elif st[j] == _AT_UPPER:
                entering_value = self.upper[j] - t
            else:
                entering_value = direction * t
            leaving = int(self.basic[r])
            self._pivot_update(r, j, w)
            self.basic[r] = j
            self.status[leaving] = _AT_LOWER if g[r] > 0.0 else _AT_UPPER
            self.status[j] = _BASIC
            self.xb[r] = entering_value
            self.iterations += 1

    # -- dual simplex ----------------------------------------------------------

    def dual(self, cost: np.ndarray, max_iter: int) -> LPStatus:
        """Dual simplex from the current (dual feasible) basis.

        Drives primal bound violations out row by row; the standard tool
        for reoptimizing after branch & bound tightens a variable bound,
        which keeps the parent's basis dual feasible but usually not
        primal feasible.
        """
        while True:
            if self.iterations >= max_iter:
                return LPStatus.ITERATION_LIMIT
            self._maybe_refactor()
            lb = self.lower[self.basic]
            ub = self.upper[self.basic]
            low_viol = self.xb < lb - _FEAS_TOL
            up_viol = self.xb > ub + _FEAS_TOL
            viol = low_viol | up_viol
            if not viol.any():
                return LPStatus.OPTIMAL
            rows = np.flatnonzero(viol)
            r = int(rows[np.argmin(self.basic[rows])])  # smallest leaving var
            below = bool(low_viol[r])
            d = self._reduced_costs(cost)
            alpha = self.b_inv[r] @ self.a
            st = self.status
            if below:  # xb[r] must increase
                can = ((st == _AT_LOWER) & (alpha < -_PIV_TOL)) | (
                    (st == _AT_UPPER) & (alpha > _PIV_TOL)
                )
            else:  # xb[r] must decrease
                can = ((st == _AT_LOWER) & (alpha > _PIV_TOL)) | (
                    (st == _AT_UPPER) & (alpha < -_PIV_TOL)
                )
            can |= (st == _FREE) & (np.abs(alpha) > _PIV_TOL)
            if not can.any():
                return LPStatus.INFEASIBLE
            idx = np.flatnonzero(can)
            ratios = np.abs(d[idx]) / np.abs(alpha[idx])
            best = float(ratios.min())
            j = int(idx[ratios <= best + _TOL].min())  # smallest entering index
            target = lb[r] if below else ub[r]
            s = (self.xb[r] - target) / alpha[j]  # signed step of the entering var
            rng = self.upper[j] - self.lower[j]
            if st[j] != _FREE and np.isfinite(rng) and abs(s) > rng + _TOL:
                # Dual bound flip: the entering column saturates its own
                # range before curing row r; flip it and try again.
                step = math.copysign(rng, s)
                w = self.b_inv @ self.a[:, j]
                self.xb -= step * w
                self.status[j] = _AT_UPPER if st[j] == _AT_LOWER else _AT_LOWER
                self.iterations += 1
                continue
            w = self.b_inv @ self.a[:, j]
            self.xb -= s * w
            if st[j] == _AT_LOWER:
                entering_value = self.lower[j] + s
            elif st[j] == _AT_UPPER:
                entering_value = self.upper[j] + s
            else:
                entering_value = s
            leaving = int(self.basic[r])
            self._pivot_update(r, j, w)
            self.basic[r] = j
            self.status[leaving] = _AT_LOWER if below else _AT_UPPER
            self.status[j] = _BASIC
            self.xb[r] = entering_value
            self.iterations += 1

    # -- cold start ------------------------------------------------------------

    def cold_solve(self, max_iter: int) -> LPStatus:
        """Two-phase solve: slack/artificial start, then the real objective."""
        self.status = self._preferred_status()
        vals = self._nonbasic_values()
        resid = self.b - self.a @ vals

        basic = np.empty(self.m, dtype=np.intp)
        art_rows: list[int] = []
        art_signs: list[float] = []
        for i in range(self.m):
            if i < self.n_ub and resid[i] >= 0.0:
                basic[i] = self.n_struct + i  # the row's own slack, feasible
            else:
                art_rows.append(i)
                art_signs.append(1.0 if resid[i] >= 0.0 else -1.0)
        n_art = len(art_rows)
        if n_art:
            art = np.zeros((self.m, n_art))
            art[art_rows, np.arange(n_art)] = art_signs
            self.a = np.hstack([self.a, art])
            self.cost = np.concatenate([self.cost, np.zeros(n_art)])
            self.lower = np.concatenate([self.lower, np.zeros(n_art)])
            self.upper = np.concatenate([self.upper, np.full(n_art, np.inf)])
            self.status = np.concatenate(
                [self.status, np.full(n_art, _AT_LOWER, dtype=np.int8)]
            )
            basic[art_rows] = self.n_std + np.arange(n_art)

        self.basic = basic
        self.status[basic] = _BASIC
        # The start basis is diagonal (slacks are +e_i, artificials ±e_i).
        self.b_inv = np.eye(self.m)
        if n_art:
            self.b_inv[art_rows, art_rows] = art_signs
        self._recompute_xb()
        self._last_refactor = self.iterations

        if n_art:
            phase1 = np.zeros(self.a.shape[1])
            phase1[self.n_std :] = 1.0
            status = self.primal(phase1, max_iter)
            if status is LPStatus.ITERATION_LIMIT:
                return status
            infeasibility = float(phase1[self.basic] @ self.xb)
            if infeasibility > 1e-6:
                return LPStatus.INFEASIBLE
            # Pin artificials at zero for phase 2: basic ones stay (at
            # value 0, boxed so they can never move off it), nonbasic ones
            # sit at lower.
            self.upper[self.n_std :] = 0.0
        return self.primal(self.cost, max_iter)

    # -- result assembly -------------------------------------------------------

    def finish(self, form: MatrixForm, status: LPStatus, warm: bool) -> LPResult:
        if status is not LPStatus.OPTIMAL:
            return LPResult(status, None, None, iterations=self.iterations, warm_started=warm)
        vals = self._nonbasic_values()
        vals[self.basic] = self.xb
        x = vals[: self.n_struct].copy()
        basis: Basis | None = None
        if not (self.basic >= self.n_std).any():
            at_upper = np.flatnonzero(self.status[: self.n_std] == _AT_UPPER)
            basis = Basis(
                basic=tuple(int(i) for i in self.basic),
                at_upper=tuple(int(i) for i in at_upper),
            )
        return LPResult(
            LPStatus.OPTIMAL,
            x,
            form.objective_value(x),
            basis=basis,
            iterations=self.iterations,
            warm_started=warm,
        )


def solve_lp(
    form: MatrixForm,
    max_iter: int = 20000,
    start: Basis | None = None,
) -> LPResult:
    """Solve the LP relaxation of ``form``, optionally from a start basis.

    With ``start`` the solver re-optimizes instead of starting cold:
    primal simplex when the vertex is still primal feasible (typical after
    an objective/coefficient update across sweep variants), dual simplex
    when only dual feasible (typical after a branch & bound bound change).
    A start that no longer fits — wrong size, singular, neither feasible —
    silently degrades to the cold two-phase solve, so warm hints are never
    required for correctness.
    """
    if start is not None:
        solver = _RevisedSimplex(form)
        if solver.install_basis(start):
            outcome: LPStatus | None = None
            try:
                if solver.primal_feasible():
                    outcome = solver.primal(solver.cost, max_iter)
                elif solver.dual_feasible(solver.cost):
                    outcome = solver.dual(solver.cost, max_iter)
            except _Numerical:
                outcome = None
            if outcome in (LPStatus.OPTIMAL, LPStatus.UNBOUNDED, LPStatus.INFEASIBLE):
                return solver.finish(form, outcome, warm=True)
            # Iteration limit or numerical trouble on the warm path: retry
            # cold rather than reporting a warm-start artifact.
    solver = _RevisedSimplex(form)
    try:
        status = solver.cold_solve(max_iter)
    except _Numerical:
        return LPResult(LPStatus.NUMERICAL, None, None, iterations=solver.iterations)
    return solver.finish(form, status, warm=False)


__all__ = ["Basis", "LPResult", "LPStatus", "solve_lp"]
