"""LP/MILP model container.

A :class:`Model` owns variables (bounds + integrality), constraints and an
objective.  It is solver-agnostic: backends in
:mod:`repro.opt.scipy_backend` and :mod:`repro.opt.branch_bound` convert it
to their native matrix form.  This fills the role Gurobi's modelling API
plays in the paper's implementation.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable

import numpy as np

from repro.opt.linexpr import Constraint, LinExpr, Sense


class VarType(Enum):
    """Variable domain."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


@dataclass
class Variable:
    """A decision variable: name, bounds and domain."""

    name: str
    lower: float
    upper: float
    vtype: VarType

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(
                f"variable {self.name}: lower bound {self.lower} exceeds "
                f"upper bound {self.upper}"
            )


class ObjectiveSense(Enum):
    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


class Model:
    """A mixed-integer linear program.

    >>> m = Model("demo")
    >>> x = m.add_var("x", lower=0, upper=10)
    >>> y = m.add_var("y", lower=0, upper=10, vtype=VarType.INTEGER)
    >>> _ = m.add_constraint(x + 2 * y <= 14)
    >>> m.set_objective(x + y, ObjectiveSense.MAXIMIZE)
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: dict[str, Variable] = {}
        self._constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._sense: ObjectiveSense = ObjectiveSense.MINIMIZE

    # -- variables ------------------------------------------------------------

    def add_var(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = math.inf,
        vtype: VarType = VarType.CONTINUOUS,
    ) -> LinExpr:
        """Declare a variable and return it as a :class:`LinExpr`."""
        if name in self._variables:
            raise ValueError(f"variable {name!r} already declared")
        if vtype is VarType.BINARY:
            lower, upper = max(lower, 0.0), min(upper, 1.0)
        self._variables[name] = Variable(name, float(lower), float(upper), vtype)
        return LinExpr.variable(name)

    def add_binary(self, name: str) -> LinExpr:
        """Declare a 0/1 variable."""
        return self.add_var(name, 0.0, 1.0, VarType.BINARY)

    def has_var(self, name: str) -> bool:
        return name in self._variables

    def variable(self, name: str) -> Variable:
        return self._variables[name]

    @property
    def variables(self) -> list[Variable]:
        return list(self._variables.values())

    @property
    def variable_names(self) -> list[str]:
        return list(self._variables)

    # -- constraints / objective ----------------------------------------------

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a constraint; all referenced variables must be declared."""
        unknown = constraint.expr.variables() - self._variables.keys()
        if unknown:
            raise ValueError(f"constraint references undeclared variables: {unknown}")
        stored = Constraint(constraint.expr, constraint.sense, name or constraint.name)
        self._constraints.append(stored)
        return stored

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        for c in constraints:
            self.add_constraint(c)

    @property
    def constraints(self) -> list[Constraint]:
        return list(self._constraints)

    def set_objective(
        self, expr: LinExpr, sense: ObjectiveSense = ObjectiveSense.MINIMIZE
    ) -> None:
        unknown = expr.variables() - self._variables.keys()
        if unknown:
            raise ValueError(f"objective references undeclared variables: {unknown}")
        self._objective = expr.copy()
        self._sense = sense

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def objective_sense(self) -> ObjectiveSense:
        return self._sense

    @property
    def is_mip(self) -> bool:
        """True when any variable is integer/binary."""
        return any(v.vtype is not VarType.CONTINUOUS for v in self._variables.values())

    # -- matrix form ------------------------------------------------------------

    def to_matrix_form(self) -> "MatrixForm":
        """Convert to ``min c'x`` with rows ``A_ub x <= b_ub`` and
        ``A_eq x == b_eq`` plus per-variable bounds.

        ``>=`` rows are negated into ``<=`` rows; maximization is negated into
        minimization (the stored ``flip_objective`` flag lets callers recover
        the original objective value).
        """
        names = self.variable_names
        index = {n: i for i, n in enumerate(names)}
        n = len(names)

        c = np.zeros(n)
        for var, coeff in self._objective.terms.items():
            c[index[var]] = coeff
        flip = self._sense is ObjectiveSense.MAXIMIZE
        if flip:
            c = -c

        ub_rows: list[np.ndarray] = []
        ub_rhs: list[float] = []
        eq_rows: list[np.ndarray] = []
        eq_rhs: list[float] = []
        for con in self._constraints:
            row = np.zeros(n)
            for var, coeff in con.expr.terms.items():
                row[index[var]] = coeff
            rhs = con.rhs
            if con.sense is Sense.LE:
                ub_rows.append(row)
                ub_rhs.append(rhs)
            elif con.sense is Sense.GE:
                ub_rows.append(-row)
                ub_rhs.append(-rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(rhs)

        lower = np.array([self._variables[v].lower for v in names])
        upper = np.array([self._variables[v].upper for v in names])
        integer = np.array(
            [self._variables[v].vtype is not VarType.CONTINUOUS for v in names]
        )

        return MatrixForm(
            variable_names=names,
            c=c,
            objective_constant=self._objective.constant,
            flip_objective=flip,
            a_ub=np.array(ub_rows) if ub_rows else np.zeros((0, n)),
            b_ub=np.array(ub_rhs),
            a_eq=np.array(eq_rows) if eq_rows else np.zeros((0, n)),
            b_eq=np.array(eq_rhs),
            lower=lower,
            upper=upper,
            integer=integer,
        )

    def __repr__(self) -> str:
        kind = "MILP" if self.is_mip else "LP"
        return (
            f"Model({self.name!r}, {kind}, {len(self._variables)} vars, "
            f"{len(self._constraints)} constraints)"
        )


@dataclass
class MatrixForm:
    """Dense matrix form of a model (see :meth:`Model.to_matrix_form`)."""

    variable_names: list[str]
    c: np.ndarray
    objective_constant: float
    flip_objective: bool
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integer: np.ndarray

    def objective_value(self, x: np.ndarray) -> float:
        """Objective of the *original* model at point ``x``."""
        raw = float(self.c @ x)
        if self.flip_objective:
            raw = -raw
        return raw + self.objective_constant

    def assignment(self, x: np.ndarray) -> dict[str, float]:
        """Map a solution vector back to variable names."""
        return {name: float(v) for name, v in zip(self.variable_names, x)}

    def structure_fingerprint(self) -> str:
        """Hash of the model *structure*, ignoring coefficient values.

        Covers shapes, constraint-matrix sparsity patterns, integrality,
        bound finiteness and the variable layout — exactly what must match
        for a simplex :class:`~repro.opt.simplex.Basis` (and an integer
        incumbent hint) from one solve to be a meaningful warm start for
        another.  Two sweep variants of the same circuit share this
        fingerprint while differing in every coefficient; see
        :mod:`repro.opt.warmstart`.
        """
        digest = hashlib.sha256()
        digest.update(
            repr(
                (self.a_ub.shape, self.a_eq.shape, self.flip_objective)
            ).encode()
        )
        for pattern in (
            self.a_ub != 0.0,
            self.a_eq != 0.0,
            np.asarray(self.integer, bool),
            np.isfinite(self.lower),
            np.isfinite(self.upper),
        ):
            digest.update(np.packbits(pattern.reshape(-1)).tobytes())
        digest.update("\x00".join(self.variable_names).encode())
        return digest.hexdigest()
