"""SciPy (HiGHS) backend for the LP/MILP layer.

This is the default production backend — the drop-in replacement for the
Gurobi solver used in the paper's experiments.  LPs go through
:func:`scipy.optimize.linprog`, MILPs through :func:`scipy.optimize.milp`.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, sparse

from repro.opt.model import MatrixForm
from repro.opt.simplex import LPResult, LPStatus


def _status_from_scipy(status_code: int, success: bool) -> LPStatus:
    """Map HiGHS status codes (shared by linprog and milp) onto LPStatus.

    0 = optimal, 1 = iteration/time limit, 2 = infeasible, 3 = unbounded,
    4 = numerical difficulties.  Code 4 used to be folded into
    ``ITERATION_LIMIT``, which mislabeled genuinely ill-conditioned models
    as budget problems; it now surfaces as ``LPStatus.NUMERICAL``.
    """
    if success:
        return LPStatus.OPTIMAL
    if status_code == 2:
        return LPStatus.INFEASIBLE
    if status_code == 3:
        return LPStatus.UNBOUNDED
    if status_code == 4:
        return LPStatus.NUMERICAL
    return LPStatus.ITERATION_LIMIT


def solve_lp_scipy(form: MatrixForm) -> LPResult:
    """Solve the LP (relaxation) of ``form`` with HiGHS."""
    bounds = list(zip(form.lower, form.upper))
    res = optimize.linprog(
        form.c,
        A_ub=form.a_ub if form.a_ub.size else None,
        b_ub=form.b_ub if form.b_ub.size else None,
        A_eq=form.a_eq if form.a_eq.size else None,
        b_eq=form.b_eq if form.b_eq.size else None,
        bounds=bounds,
        method="highs",
    )
    status = _status_from_scipy(res.status, res.success)
    if status is not LPStatus.OPTIMAL:
        return LPResult(status, None, None)
    return LPResult(status, res.x, form.objective_value(res.x))


def solve_milp_scipy(form: MatrixForm) -> LPResult:
    """Solve a MILP with HiGHS branch & cut."""
    n = len(form.variable_names)
    constraints = []
    if form.a_ub.size:
        constraints.append(
            optimize.LinearConstraint(
                sparse.csr_matrix(form.a_ub), -np.inf, form.b_ub
            )
        )
    if form.a_eq.size:
        constraints.append(
            optimize.LinearConstraint(
                sparse.csr_matrix(form.a_eq), form.b_eq, form.b_eq
            )
        )
    res = optimize.milp(
        c=form.c,
        constraints=constraints or None,
        integrality=form.integer.astype(int),
        bounds=optimize.Bounds(form.lower, form.upper),
    )
    if res.status == 0 and res.x is not None:
        x = np.asarray(res.x, dtype=float)
        # HiGHS can return near-integral values; snap them for stability.
        x[form.integer] = np.round(x[form.integer])
        return LPResult(LPStatus.OPTIMAL, x, form.objective_value(x))
    return LPResult(_status_from_scipy(res.status, False), None, None)
