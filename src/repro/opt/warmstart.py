"""Warm-start cache: bases and incumbents keyed by model structure.

Sweep variants of one circuit (nearby clock periods, different Monte-Carlo
seeds, perturbed delay models) produce MILPs that share *structure* —
variable layout, constraint sparsity, integrality, bound finiteness —
while differing in every coefficient.  The optimal basis and integer
incumbent of one variant are therefore excellent (though never trusted:
always re-validated) starting points for the next.

:class:`WarmStartCache` maps
:meth:`~repro.opt.model.MatrixForm.structure_fingerprint` to the last
:class:`WarmHint` seen for that structure.  It is an LRU with a small
bound — hints are a few hundred bytes each, but unbounded growth across a
long sweep serves nothing: only the most recent variant per structure is
useful.  Thread-safe, because one :class:`~repro.api.engine.Engine` shares
a single cache across its pool of offline computations.

Soundness note: a warm hint changes only *where the solver starts*, never
where it provably ends — `solve_lp` re-validates the basis against the
current problem and falls back to a cold solve, and `solve_milp` checks a
hinted incumbent against the current constraints before admitting it.
Optima are pinned identical warm-vs-cold by the equivalence tests and
``benchmarks/bench_offline.py``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.opt.simplex import Basis


@dataclass(frozen=True)
class WarmHint:
    """What one solve leaves behind for the next structurally equal one."""

    #: Root-relaxation (LP: terminal) basis, or None when the solve ended
    #: without a clean vertex.
    basis: Basis | None
    #: Best integer point found (MILP) / optimal point (LP); re-validated
    #: against the new problem's constraints before use.
    x: np.ndarray | None = None
    objective: float | None = None


@dataclass(frozen=True)
class WarmStats:
    """Counters exposed for tests and benchmark reporting."""

    hits: int
    misses: int
    stores: int
    size: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class WarmStartCache:
    """Small thread-safe LRU of :class:`WarmHint` by structure fingerprint."""

    max_entries: int = 256
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _hits: int = 0
    _misses: int = 0
    _stores: int = 0

    def __post_init__(self) -> None:
        if self.max_entries <= 0:
            raise ValueError("max_entries must be positive")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, fingerprint: str) -> WarmHint | None:
        with self._lock:
            hint = self._entries.get(fingerprint)
            if hint is None:
                self._misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self._hits += 1
            return hint

    def peek(self, fingerprint: str) -> WarmHint | None:
        """Read without touching LRU order or hit/miss counters.

        For callers that *transform* a hint before the real lookup (e.g.
        a compiled model repairing a stale incumbent for new coefficients)
        — the subsequent :meth:`get` inside the solver does the counting.
        """
        with self._lock:
            return self._entries.get(fingerprint)

    def put(self, fingerprint: str, hint: WarmHint) -> None:
        if hint.basis is None and hint.x is None:
            return  # nothing worth remembering
        x = None if hint.x is None else np.array(hint.x, float, copy=True)
        stored = WarmHint(basis=hint.basis, x=x, objective=hint.objective)
        with self._lock:
            self._entries[fingerprint] = stored
            self._entries.move_to_end(fingerprint)
            self._stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    @property
    def stats(self) -> WarmStats:
        with self._lock:
            return WarmStats(
                hits=self._hits,
                misses=self._misses,
                stores=self._stores,
                size=len(self._entries),
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._stores = 0


__all__ = ["WarmHint", "WarmStartCache", "WarmStats"]
