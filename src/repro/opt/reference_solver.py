"""The historical dense two-phase simplex and DFS branch & bound, retained.

These are the pre-warm-start solvers (`solve_lp` / `solve_milp` as they
shipped before the revised-simplex rewrite), kept verbatim as the
**reference engines**:

- the randomized equivalence suite (``tests/opt/test_solver_equivalence.py``)
  pins the new :mod:`repro.opt.simplex` / :mod:`repro.opt.branch_bound`
  against them on statuses and objectives across continuous / integer /
  mixed, feasible / infeasible / unbounded models, and
- ``benchmarks/bench_offline.py`` uses them as the *old* side of its
  cold-vs-warm A/B, asserting identical optima while measuring the speedup.

The implementation is deliberately untouched: a dense tableau, the
shift/mirror/split standardization to non-negative variables, phase-1
artificials, Bland's rule, and cold DFS branch & bound re-solving every
node from scratch.  Nothing in the production flow calls these except
through an explicit ``reference`` backend request.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.opt.model import MatrixForm
from repro.opt.simplex import LPResult, LPStatus

_TOL = 1e-9
_INT_TOL = 1e-6


@dataclass
class _Shift:
    """How one original variable maps to standard-form column(s)."""

    kind: str  # "shift", "mirror", "split"
    columns: tuple[int, ...]
    offset: float


def _standardize(form: MatrixForm) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[_Shift]]:
    """Rewrite the LP with non-negative variables only.

    Returns ``(A, b, c, shifts)`` for ``min c'y s.t. A y (<=,==) b`` where the
    first ``len(b_ub')`` rows are inequalities — encoded by the caller — and
    the variable mapping ``shifts`` recovers original values.
    """
    n = len(form.variable_names)
    shifts: list[_Shift] = []
    col = 0
    col_of: list[tuple[int, ...]] = []
    for i in range(n):
        lo, hi = form.lower[i], form.upper[i]
        if math.isfinite(lo):
            shifts.append(_Shift("shift", (col,), lo))
            col_of.append((col,))
            col += 1
        elif math.isfinite(hi):
            shifts.append(_Shift("mirror", (col,), hi))
            col_of.append((col,))
            col += 1
        else:
            shifts.append(_Shift("split", (col, col + 1), 0.0))
            col_of.append((col, col + 1))
            col += 2
    total_cols = col

    def expand_rows(a: np.ndarray) -> np.ndarray:
        if a.size == 0:
            return np.zeros((a.shape[0], total_cols))
        out = np.zeros((a.shape[0], total_cols))
        for i in range(n):
            s = shifts[i]
            if s.kind == "shift":
                out[:, s.columns[0]] = a[:, i]
            elif s.kind == "mirror":
                out[:, s.columns[0]] = -a[:, i]
            else:
                out[:, s.columns[0]] = a[:, i]
                out[:, s.columns[1]] = -a[:, i]
        return out

    def shift_rhs(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.size == 0:
            return b.copy()
        adjust = np.zeros(a.shape[0])
        for i in range(n):
            s = shifts[i]
            if s.kind == "shift":
                adjust += a[:, i] * s.offset
            elif s.kind == "mirror":
                adjust += a[:, i] * s.offset
        return b - adjust

    a_ub = expand_rows(form.a_ub)
    b_ub = shift_rhs(form.a_ub, form.b_ub)
    a_eq = expand_rows(form.a_eq)
    b_eq = shift_rhs(form.a_eq, form.b_eq)

    # Finite upper bounds of shifted variables become extra <= rows.
    extra_rows = []
    extra_rhs = []
    for i in range(n):
        lo, hi = form.lower[i], form.upper[i]
        if math.isfinite(lo) and math.isfinite(hi):
            row = np.zeros(total_cols)
            row[shifts[i].columns[0]] = 1.0
            extra_rows.append(row)
            extra_rhs.append(hi - lo)
    if extra_rows:
        a_ub = np.vstack([a_ub, np.array(extra_rows)])
        b_ub = np.concatenate([b_ub, np.array(extra_rhs)])

    c = np.zeros(total_cols)
    for i in range(n):
        s = shifts[i]
        if s.kind == "shift":
            c[s.columns[0]] += form.c[i]
        elif s.kind == "mirror":
            c[s.columns[0]] -= form.c[i]
        else:
            c[s.columns[0]] += form.c[i]
            c[s.columns[1]] -= form.c[i]

    n_ub = a_ub.shape[0]
    # Append slack variables for the inequality rows.
    a = np.hstack([np.vstack([a_ub, a_eq]), np.zeros((n_ub + a_eq.shape[0], n_ub))])
    for r in range(n_ub):
        a[r, total_cols + r] = 1.0
    b = np.concatenate([b_ub, b_eq])
    c_full = np.concatenate([c, np.zeros(n_ub)])
    return a, b, c_full, shifts


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """In-place Gauss-Jordan pivot on (row, col)."""
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > _TOL:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _simplex_iterations(
    tableau: np.ndarray,
    basis: np.ndarray,
    cost: np.ndarray,
    max_iter: int,
) -> LPStatus:
    """Run primal simplex on an equality tableau with basic feasible start.

    ``tableau`` is (m, n+1) with the rhs in the last column; ``cost`` is the
    reduced-cost row maintained by the caller convention: we recompute reduced
    costs each iteration from ``cost`` and the basis (simple and robust for
    the small systems this solver targets).
    """
    m, width = tableau.shape
    n = width - 1
    for _ in range(max_iter):
        cb = cost[basis]
        # Reduced costs: c_j - cb' B^-1 A_j; tableau rows are already B^-1 A.
        reduced = cost[:n] - cb @ tableau[:, :n]
        entering = -1
        for j in range(n):  # Bland's rule: first improving index
            if reduced[j] < -_TOL:
                entering = j
                break
        if entering < 0:
            return LPStatus.OPTIMAL
        ratios = np.full(m, np.inf)
        col = tableau[:, entering]
        positive = col > _TOL
        ratios[positive] = tableau[positive, n] / col[positive]
        if not np.any(np.isfinite(ratios)):
            return LPStatus.UNBOUNDED
        best = np.min(ratios)
        # Bland tie-break: smallest basis index among minimal ratios.
        candidates = [r for r in range(m) if ratios[r] <= best + _TOL]
        leaving = min(candidates, key=lambda r: basis[r])
        _pivot(tableau, basis, leaving, entering)
    return LPStatus.ITERATION_LIMIT


def solve_lp_reference(form: MatrixForm, max_iter: int = 20000) -> LPResult:
    """Solve the LP relaxation of ``form`` with the historical two-phase simplex."""
    a, b, c, shifts = _standardize(form)
    m, n = a.shape

    # Make rhs non-negative so artificials give a feasible start.
    neg = b < 0
    a[neg] *= -1.0
    b = b.copy()
    b[neg] *= -1.0

    # Phase 1 tableau: [A | I_artificial | b]
    tableau = np.hstack([a, np.eye(m), b.reshape(-1, 1)])
    basis = np.arange(n, n + m)
    phase1_cost = np.concatenate([np.zeros(n), np.ones(m)])

    status = _simplex_iterations(tableau, basis, phase1_cost, max_iter)
    if status is LPStatus.ITERATION_LIMIT:
        return LPResult(status, None, None)
    infeasibility = phase1_cost[basis] @ tableau[:, -1]
    if infeasibility > 1e-6:
        return LPResult(LPStatus.INFEASIBLE, None, None)

    # Drive any artificial variables out of the basis when possible.
    for r in range(m):
        if basis[r] >= n:
            pivot_col = -1
            for j in range(n):
                if abs(tableau[r, j]) > 1e-7:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, basis, r, pivot_col)
            # else: the row is redundant (all-zero in structural columns).

    # Phase 2: forbid artificials by giving them prohibitive cost, then solve.
    tableau2 = np.hstack([tableau[:, :n], tableau[:, -1].reshape(-1, 1)])
    basis2 = basis.copy()
    redundant = basis2 >= n
    if np.any(redundant):
        keep = ~redundant
        tableau2 = tableau2[keep]
        basis2 = basis2[keep]
    status = _simplex_iterations(tableau2, basis2, np.concatenate([c, [0.0]])[:-1], max_iter)
    if status is not LPStatus.OPTIMAL:
        return LPResult(status, None, None)

    y = np.zeros(n)
    for r, var in enumerate(basis2):
        y[var] = tableau2[r, -1]

    x = np.zeros(len(form.variable_names))
    for i, s in enumerate(shifts):
        if s.kind == "shift":
            x[i] = y[s.columns[0]] + s.offset
        elif s.kind == "mirror":
            x[i] = s.offset - y[s.columns[0]]
        else:
            x[i] = y[s.columns[0]] - y[s.columns[1]]
    return LPResult(LPStatus.OPTIMAL, x, form.objective_value(x))


def _most_fractional_reference(x: np.ndarray, integer_mask: np.ndarray) -> int | None:
    """Index of the integer variable farthest from integrality, or None."""
    best_idx: int | None = None
    best_frac = _INT_TOL
    for i in np.flatnonzero(integer_mask):
        frac = abs(x[i] - round(x[i]))
        if frac > best_frac:
            best_frac = frac
            best_idx = int(i)
    return best_idx


def solve_milp_reference(
    form: MatrixForm,
    node_limit: int = 20000,
    gap_tol: float = 1e-9,
) -> "MILPResult":
    """Solve a MILP with the historical cold depth-first branch & bound.

    Branching is depth-first on the most fractional integer variable, with
    incumbent pruning; every node's LP relaxation is re-solved from a cold
    two-phase start.  Determinism: ties are broken by variable index, so the
    search tree (and therefore the reported optimum) is reproducible.
    """
    from repro.opt.branch_bound import MILPResult

    if not np.any(form.integer):
        lp = solve_lp_reference(form)
        return MILPResult(lp.status, lp.x, lp.objective)

    root = solve_lp_reference(form)
    if root.status is not LPStatus.OPTIMAL:
        return MILPResult(root.status, None, None, nodes_explored=1)

    sign = -1.0 if form.flip_objective else 1.0

    def relax_cost(result: LPResult) -> float:
        # Internal minimization value (lower bound for child nodes).
        assert result.x is not None
        return sign * (result.objective - form.objective_constant)  # type: ignore[operator]

    incumbent_x: np.ndarray | None = None
    incumbent_cost = math.inf
    nodes = 0

    stack: list[tuple[np.ndarray, np.ndarray, LPResult]] = [
        (form.lower.copy(), form.upper.copy(), root)
    ]
    while stack and nodes < node_limit:
        lower, upper, lp = stack.pop()
        nodes += 1
        assert lp.x is not None
        bound = relax_cost(lp)
        if bound >= incumbent_cost - gap_tol:
            continue
        branch_var = _most_fractional_reference(lp.x, form.integer)
        if branch_var is None:
            x_int = lp.x.copy()
            x_int[form.integer] = np.round(x_int[form.integer])
            # form.c is already the internal minimization cost vector.
            cost = float(form.c @ x_int)
            if cost < incumbent_cost - gap_tol:
                incumbent_cost = cost
                incumbent_x = x_int
            continue

        value = lp.x[branch_var]
        floor_v, ceil_v = math.floor(value), math.ceil(value)

        children = []
        up_upper = upper.copy()
        up_upper[branch_var] = min(up_upper[branch_var], floor_v)
        if up_upper[branch_var] >= lower[branch_var] - _INT_TOL:
            children.append((lower.copy(), up_upper))
        dn_lower = lower.copy()
        dn_lower[branch_var] = max(dn_lower[branch_var], ceil_v)
        if dn_lower[branch_var] <= upper[branch_var] + _INT_TOL:
            children.append((dn_lower, upper.copy()))

        solved = []
        for lo, hi in children:
            child_form = replace(form, lower=lo, upper=hi)
            child_lp = solve_lp_reference(child_form)
            if child_lp.status is LPStatus.OPTIMAL:
                solved.append((relax_cost(child_lp), lo, hi, child_lp))
        # Explore the more promising child first (it goes last on the stack).
        solved.sort(key=lambda t: -t[0])
        for _, lo, hi, child_lp in solved:
            stack.append((lo, hi, child_lp))

    if incumbent_x is None:
        status = LPStatus.ITERATION_LIMIT if stack else LPStatus.INFEASIBLE
        return MILPResult(status, None, None, nodes_explored=nodes)
    status = LPStatus.ITERATION_LIMIT if stack else LPStatus.OPTIMAL
    return MILPResult(
        status,
        incumbent_x,
        form.objective_value(incumbent_x),
        nodes_explored=nodes,
    )


__all__ = ["solve_lp_reference", "solve_milp_reference"]
