"""Content-addressed persistent store of reduced run results.

The input side of the pipeline caches *preparations*
(:class:`repro.api.cache.PreparationCache`); this module is its output-side
sibling: a :class:`RunStore` persists each scenario's reduced
:class:`~repro.core.reduction.RunSummary` under a content-addressed
:class:`RunKey`, so interrupted scenario sweeps resume where they stopped
and completed sweeps reload without executing a single online stage.

A run's numbers are fully determined by

1. the circuit being prepared/verified and the circuit the population is
   sampled from (both as content fingerprints — usually the same, but a
   Fig. 7-style stress population draws from a variant),
2. the population recipe ``(n_chips, seed)`` of the lazy
   :class:`~repro.core.yields.ChipSource`,
3. the operating ``period`` and the design ``clock_period``,
4. the offline config (everything in the preparation-cache key) and the
   *result-determining* online knobs (``OnlineConfig.result_fields()`` —
   shard size and artifact retention are excluded because results are
   bit-identical across them by contract).

Each record is one JSON file (scalars, moments, metadata) plus, when the
run retained per-chip columns, one NPZ file next to it — both written
atomically (temp file + rename), so readers only ever see whole records.
Corrupt or version-skewed artifacts are deleted and recomputed; the store
can only ever *save* work, never fail a run.  ``max_entries`` prunes the
oldest records by modification time, mirroring the preparation cache's
disk tier.

The store is safe for *multiple concurrent writers* — racing daemons,
batch sweeps and pool workers pointed at one directory.  Readers need no
locks (rename-atomic writes mean they only ever see whole records); each
write takes a per-key lease file and re-checks the store under the lease
(double-checked locking), so two processes computing the same key produce
exactly one record and a loser never tears the winner's files.  A writer
killed hard leaves its lease and temp files behind; :meth:`RunStore.recover`
(run automatically on open) reaps them once they age past
``stale_after``, alongside orphaned array payloads whose JSON half never
landed.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.core.configuration import ConfigurationResult
from repro.core.population import PopulationTestResult
from repro.core.reduction import (
    DenseArtifacts,
    Moments,
    RunSummary,
    artifacts_rank,
)
from repro.utils.diskio import (
    DEFAULT_STALE_AFTER,
    LockTimeout,
    file_lock,
    prune_by_mtime,
    reap_stale_files,
    write_atomic,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids upward imports
    from repro.api.config import OfflineConfig, OnlineConfig
    from repro.circuit.generator import Circuit
    from repro.core.yields import ChipSource


#: Bump when the on-disk payload layout (or anything entering the digest)
#: changes; old records are then simply never matched again.
DISK_FORMAT_VERSION = 1


@dataclass(frozen=True)
class RunKey:
    """Content identity of one scenario run."""

    circuit_fingerprint: str
    population_fingerprint: str
    n_chips: int
    population_seed: int
    period: float
    clock_period: float
    offline_fields: tuple
    online_fields: tuple

    @staticmethod
    def build(
        circuit: "Circuit",
        source: "ChipSource",
        period: float,
        clock_period: float,
        offline: "OfflineConfig",
        online: "OnlineConfig",
    ) -> "RunKey":
        from repro.circuit.fingerprint import fingerprint_circuit

        return RunKey(
            circuit_fingerprint=fingerprint_circuit(circuit),
            population_fingerprint=fingerprint_circuit(source.circuit),
            n_chips=int(source.n_chips),
            population_seed=int(source.seed),
            period=float(period),
            clock_period=float(clock_period),
            offline_fields=offline.cache_fields(),
            online_fields=online.result_fields(),
        )

    def digest(self) -> str:
        """Stable hex name for the on-disk record.

        Periods enter as their exact ``float.hex`` bits and the config
        fields as their repr (ints, floats, bools, strs, None — all
        round-trip stably), so equal keys name equal files on every
        platform and process.
        """
        payload = repr((
            DISK_FORMAT_VERSION,
            self.circuit_fingerprint,
            self.population_fingerprint,
            self.n_chips,
            self.population_seed,
            self.period.hex(),
            self.clock_period.hex(),
            self.offline_fields,
            self.online_fields,
        ))
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class StoredRun:
    """One loaded record: the summary plus its original offline cost."""

    summary: RunSummary
    offline_seconds: float = 0.0


@dataclass(frozen=True)
class StoreStats:
    """Counters exposed for tests and capacity planning.

    ``skipped`` counts writes elided by double-checked locking: the lease
    holder found an equivalent (or richer) record already on disk — i.e.
    another writer won the race and this process wrote nothing.
    """

    hits: int
    misses: int
    stores: int
    skipped: int = 0


# ----------------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------------

#: NPZ array names of the compact per-chip columns.
_COMPACT_ARRAYS = ("passed", "iterations")


def _moments_json(moments: Moments) -> dict:
    """Strict-JSON form of moments: empty extrema become null, not inf."""
    return {
        "count": moments.count,
        "mean": moments.mean,
        "m2": moments.m2,
        "min": None if moments.count == 0 else moments.min,
        "max": None if moments.count == 0 else moments.max,
    }


def _moments_from_json(payload: dict) -> Moments:
    if payload["count"] == 0:
        return Moments()
    return Moments(**payload)


def summary_payload(summary: RunSummary) -> tuple[dict, dict[str, np.ndarray]]:
    """Split a summary into its JSON scalars and its NPZ arrays.

    Public because the service wire protocol (:mod:`repro.service.protocol`)
    reuses exactly this decomposition — one serialization schema, two
    transports (files here, JSON-lines there).
    """
    arrays: dict[str, np.ndarray] = {}
    if summary.passed is not None:
        arrays["passed"] = summary.passed
    if summary.iterations is not None:
        arrays["iterations"] = summary.iterations
    if summary.dense is not None:
        dense = summary.dense
        arrays["measured_indices"] = dense.test.measured_indices
        arrays["test_lower"] = dense.test.lower
        arrays["test_upper"] = dense.test.upper
        arrays["test_iterations"] = dense.test.iterations
        arrays["iterations_per_batch"] = dense.test.iterations_per_batch
        arrays["bounds_lower"] = dense.bounds_lower
        arrays["bounds_upper"] = dense.bounds_upper
        arrays["feasible"] = np.asarray(dense.configuration.feasible)
        arrays["settings"] = dense.configuration.settings
        arrays["xi"] = dense.configuration.xi
        arrays["buffer_names"] = np.asarray(
            dense.configuration.buffer_names, dtype=np.str_
        )
    meta = {
        "period": summary.period,
        "n_chips": summary.n_chips,
        "n_measured": summary.n_measured,
        "n_passed": summary.n_passed,
        "n_feasible": summary.n_feasible,
        "iteration_moments": _moments_json(summary.iteration_moments),
        "xi_moments": _moments_json(summary.xi_moments),
        "tester_seconds_per_chip": summary.tester_seconds_per_chip,
        "config_seconds_per_chip": summary.config_seconds_per_chip,
        "artifacts": summary.artifacts,
        "arrays": sorted(arrays),
    }
    if summary.stage_seconds is not None:
        meta["stage_seconds"] = {
            stage: float(seconds)
            for stage, seconds in summary.stage_seconds.items()
        }
    return meta, arrays


def payload_summary(
    meta: dict, arrays: dict[str, np.ndarray], mode: str
) -> RunSummary:
    """Rebuild a summary at retention ``mode`` from its stored payload.

    ``mode`` may be weaker than the stored record's retention — the caller
    then only loaded (and we only rebuild) the artifacts that mode needs.
    """
    dense = None
    if mode == "dense":
        dense = DenseArtifacts(
            test=PopulationTestResult(
                measured_indices=arrays["measured_indices"],
                lower=arrays["test_lower"],
                upper=arrays["test_upper"],
                iterations=arrays["test_iterations"],
                iterations_per_batch=arrays["iterations_per_batch"],
            ),
            bounds_lower=arrays["bounds_lower"],
            bounds_upper=arrays["bounds_upper"],
            configuration=ConfigurationResult(
                feasible=arrays["feasible"],
                settings=arrays["settings"],
                xi=arrays["xi"],
                buffer_names=tuple(str(n) for n in arrays["buffer_names"]),
            ),
        )
    return RunSummary(
        period=float(meta["period"]),
        n_chips=int(meta["n_chips"]),
        n_measured=int(meta["n_measured"]),
        n_passed=int(meta["n_passed"]),
        n_feasible=int(meta["n_feasible"]),
        iteration_moments=_moments_from_json(meta["iteration_moments"]),
        xi_moments=_moments_from_json(meta["xi_moments"]),
        tester_seconds_per_chip=float(meta["tester_seconds_per_chip"]),
        config_seconds_per_chip=float(meta["config_seconds_per_chip"]),
        artifacts=mode,
        passed=arrays.get("passed"),
        iterations=arrays.get("iterations"),
        dense=dense,
        # .get(): records written before stage timing existed load fine.
        stage_seconds=meta.get("stage_seconds"),
    )


class RunStore:
    """Persistent content-addressed store of reduced run results.

    Records are plain files under ``root`` (``run-<digest>.json`` +
    optional ``run-<digest>.npz``); every process pointed at the directory
    shares them.  Unlike the preparation cache's pickles the payload is
    JSON + NPZ — safe to load from an untrusted directory, diffable, and
    readable by any numpy.  ``max_entries`` prunes the oldest records by
    modification time; ``None`` keeps everything.

    Writes serialize per key on a ``run-<digest>.lock`` lease file and
    double-check the store under the lease, so any number of processes may
    write concurrently: the first writer of a key lands the record, later
    racers skip (counted in ``stats.skipped``).  ``lock_timeout`` bounds
    how long a writer waits for a contended lease before giving up the
    (best-effort) write; ``stale_after`` is the age past which leases and
    temp files of crashed writers are broken/reaped.  Opening a store runs
    one :meth:`recover` pass.
    """

    def __init__(
        self,
        root: str | Path,
        max_entries: int | None = None,
        lock_timeout: float = 30.0,
        stale_after: float = DEFAULT_STALE_AFTER,
    ):
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.lock_timeout = lock_timeout
        self.stale_after = stale_after
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._skipped = 0
        self.recover()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("run-*.json"))

    def __contains__(self, key: RunKey) -> bool:
        return self._json_path(key).exists()

    @property
    def stats(self) -> StoreStats:
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                stores=self._stores,
                skipped=self._skipped,
            )

    # -- paths -----------------------------------------------------------------

    def _json_path(self, key: RunKey) -> Path:
        return self.root / f"run-{key.digest()}.json"

    def _npz_path(self, key: RunKey) -> Path:
        return self.root / f"run-{key.digest()}.npz"

    def _lock_path(self, key: RunKey) -> Path:
        return self.root / f"run-{key.digest()}.lock"

    def _drop(self, key: RunKey) -> None:
        for path in (self._json_path(key), self._npz_path(key)):
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass

    def _count(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    # -- lookup ----------------------------------------------------------------

    def probe(self, key: RunKey, artifacts: str = "summary") -> bool:
        """Cheap hit test: can a later :meth:`load` likely serve ``key``?

        Reads only the (kB-sized) JSON metadata — version and retention
        rank are validated, array payloads are not touched, and no
        hit/miss counters move.  A record that probes ``True`` can still
        fail its full ``load`` (arrays corrupted or deleted in between);
        callers treat that as a late miss.  Unreadable metadata is dropped
        here, exactly as ``load`` would drop it.
        """
        try:
            with open(self._json_path(key), "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except FileNotFoundError:
            return False
        except (OSError, ValueError):
            self._drop(key)
            return False
        try:
            return meta["version"] == DISK_FORMAT_VERSION and (
                artifacts_rank(meta["artifacts"]) >= artifacts_rank(artifacts)
            )
        except Exception:
            self._drop(key)
            return False

    def load(self, key: RunKey, artifacts: str = "summary") -> StoredRun | None:
        """Fetch the record for ``key``, or ``None`` on a miss.

        ``artifacts`` is the retention the caller needs: a stored record
        serves the request only when it retains *at least* that much (a
        dense record answers summary requests; a summary record cannot
        answer a dense one and counts as a miss).  The loaded summary is
        *downgraded* to the requested retention — a summary request
        against a dense record reads no arrays at all, so warm sweeps stay
        O(1) per record regardless of how richly it was stored.  Any
        unreadable or version-skewed record is deleted and reported as a
        miss — the caller recomputes and overwrites it.
        """
        path = self._json_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except FileNotFoundError:
            self._count("_misses")
            return None
        except (OSError, ValueError):
            self._drop(key)
            self._count("_misses")
            return None
        try:
            if meta["version"] != DISK_FORMAT_VERSION:
                raise ValueError(f"version skew: {meta['version']}")
            rank = artifacts_rank(artifacts)
            if artifacts_rank(meta["artifacts"]) < rank:
                # Not corrupt — just slimmer than requested.  Keep it (a
                # later summary request can still use it) but miss now.
                self._count("_misses")
                return None
            if rank == 0:
                needed = []
            elif rank == 1:
                needed = list(_COMPACT_ARRAYS)
            else:
                needed = meta.get("arrays", [])
            arrays: dict[str, np.ndarray] = {}
            if needed:
                with np.load(self._npz_path(key)) as payload:
                    arrays = {name: payload[name] for name in needed}
            run = StoredRun(
                summary=payload_summary(meta, arrays, artifacts),
                offline_seconds=float(meta.get("offline_seconds", 0.0)),
            )
        except Exception:
            # Truncated write, missing npz, schema drift: drop the record
            # and recompute rather than failing the sweep.
            self._drop(key)
            self._count("_misses")
            return None
        self._count("_hits")
        return run

    @contextlib.contextmanager
    def lease(self, key: RunKey) -> Iterator[None]:
        """Hold ``key``'s cross-process writer lease for the block.

        Serializes writers of one key across *processes* (the coalescing
        daemon uses it around compute-and-store so two daemons sharing a
        store directory never duplicate a run).  Raises
        :class:`~repro.utils.diskio.LockTimeout` past ``lock_timeout``;
        leases older than ``stale_after`` are treated as crashed and
        broken.
        """
        with file_lock(
            self._lock_path(key),
            timeout=self.lock_timeout,
            stale_after=self.stale_after,
        ):
            yield

    def store(
        self, key: RunKey, summary: RunSummary, offline_seconds: float = 0.0
    ) -> None:
        """Persist one record atomically (best-effort; never raises).

        Concurrent-writer safe: the write happens under ``key``'s lease
        file, and the store is re-checked under the lease — if an
        equivalent (or richer) record landed while we raced, nothing is
        written (``stats.skipped``), so N racing writers produce exactly
        one record and never tear each other's files.  A lease contended
        past ``lock_timeout`` skips the write too: the holder is writing
        this very record.
        """
        try:
            with self.lease(key):
                if self.probe(key, artifacts=summary.artifacts):
                    # Double-check under the lock: another writer already
                    # landed a record at least this rich.
                    self._count("_skipped")
                    return
                self._store_locked(key, summary, offline_seconds)
        except LockTimeout:
            self._count("_skipped")
            return
        except Exception:
            self._drop(key)
            return
        self._count("_stores")
        self.prune()

    def store_under_lease(
        self, key: RunKey, summary: RunSummary, offline_seconds: float = 0.0
    ) -> None:
        """Persist a record while *already holding* ``key``'s lease.

        :meth:`store` acquires the lease itself; callers that compute under
        :meth:`lease` (the service daemon's leader path) use this variant
        instead — the lease file is not reentrant, so calling ``store``
        inside the block would stall until ``lock_timeout`` and then skip.
        Same semantics otherwise: double-checked against the store,
        best-effort, counters and pruning included.
        """
        try:
            if self.probe(key, artifacts=summary.artifacts):
                self._count("_skipped")
                return
            self._store_locked(key, summary, offline_seconds)
        except Exception:
            self._drop(key)
            return
        self._count("_stores")
        self.prune()

    def _store_locked(
        self, key: RunKey, summary: RunSummary, offline_seconds: float
    ) -> None:
        """The actual record write; caller holds ``key``'s lease."""
        meta, arrays = summary_payload(summary)
        meta["version"] = DISK_FORMAT_VERSION
        meta["offline_seconds"] = float(offline_seconds)
        meta["key"] = {
            "circuit_fingerprint": key.circuit_fingerprint,
            "population_fingerprint": key.population_fingerprint,
            "n_chips": key.n_chips,
            "population_seed": key.population_seed,
            "period": key.period,
            "clock_period": key.clock_period,
        }
        # Arrays land first, the JSON record last: a record is visible
        # only once its whole payload is.  allow_nan=False keeps the
        # records strict RFC 8259 JSON, readable by any tooling.
        if arrays:
            write_atomic(
                self._npz_path(key),
                lambda handle: np.savez(handle, **arrays),
            )
        else:
            # A slimmer re-store must not leave a stale array file.
            self._npz_path(key).unlink(missing_ok=True)
        write_atomic(
            self._json_path(key),
            lambda handle: handle.write(
                json.dumps(meta, indent=1, allow_nan=False).encode()
            ),
        )

    def prune(self) -> None:
        """Delete the oldest records past ``max_entries`` (by mtime)."""
        prune_by_mtime(
            self.root,
            "run-*.json",
            self.max_entries,
            companions=lambda record: (record.with_suffix(".npz"),),
        )

    def recover(self, stale_after: float | None = None) -> int:
        """Clean up what a killed writer can leave behind; returns count.

        Three kinds of debris (all invisible to ``load``, which only ever
        follows whole ``.json`` records, but each wastes space or blocks
        writers):

        * ``*.tmp`` — ``write_atomic`` staging files that never reached
          their rename,
        * ``run-*.npz`` without a ``run-*.json`` sibling — array payloads
          whose metadata half never landed (arrays are written first),
        * ``run-*.lock`` — abandoned writer leases (the mtime-based
          stale-lease reaper; a live writer's young lease survives).

        Only files older than ``stale_after`` (default: the store's) are
        touched, so in-flight writers are never disturbed.  Runs on store
        open; call it explicitly in long-lived daemons.
        """
        horizon = self.stale_after if stale_after is None else stale_after
        reaped = reap_stale_files(self.root, "*.tmp", horizon)
        reaped += reap_stale_files(self.root, "run-*.lock", horizon)
        for orphan in self.root.glob("run-*.npz"):
            if orphan.with_suffix(".json").exists():
                continue
            try:
                # effilint: disable=EFT002 -- staleness is wall-clock by definition: mtime age vs. horizon, never a result identity
                age = time.time() - orphan.stat().st_mtime
            except OSError:
                continue
            if age <= horizon:
                continue  # a writer may be mid-record: npz lands first
            try:
                orphan.unlink(missing_ok=True)
            except OSError:
                continue
            reaped += 1
        return reaped

    def clear(self) -> None:
        """Delete every record (counters included)."""
        for record in self.root.glob("run-*.json"):
            record.unlink(missing_ok=True)
        for debris in ("run-*.npz", "run-*.lock", "*.tmp"):
            for path in self.root.glob(debris):
                path.unlink(missing_ok=True)
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._stores = 0
            self._skipped = 0


def store_layout(root: str | Path) -> tuple[Path, Path]:
    """Canonical sub-directories of one persistent workspace ``root``.

    Returns ``(runs_dir, preparations_dir)`` — where the
    :class:`RunStore` and the engine's disk preparation tier live under a
    workspace such as ``.effitest-store``.  The experiment runner and the
    service daemon both derive their paths here, so a daemon pointed at an
    experiment workspace serves its records (and vice versa) instead of
    silently maintaining a parallel tree.
    """
    base = Path(root).expanduser()
    return base / "runs", base / "preparations"


def ensure_store(store: "RunStore | str | Path | None") -> "RunStore | None":
    """Normalize the ``store=`` argument every consumer accepts.

    ``None`` passes through (no persistence), an open :class:`RunStore` is
    used as-is, and a path opens one at that directory.  The single place
    where "store or path" becomes a store — :meth:`repro.api.Engine.sweep`,
    the experiment runner, and the service daemon all call this instead of
    re-implementing default-path logic.
    """
    if store is None or isinstance(store, RunStore):
        return store
    return RunStore(store)


__all__ = [
    "DISK_FORMAT_VERSION",
    "RunKey",
    "RunStore",
    "StoreStats",
    "StoredRun",
    "ensure_store",
    "payload_summary",
    "store_layout",
    "summary_payload",
]
