"""Persistent results subsystem: reduced run summaries on disk.

The pipeline's output-side counterpart of the preparation cache:

* :class:`~repro.results.store.RunKey` — content identity of one scenario
  run (circuit + population fingerprints, population recipe, periods,
  offline/online knobs),
* :class:`~repro.results.store.RunStore` — a content-addressed on-disk
  store (JSON summary + NPZ columns, atomic writes, mtime pruning) that
  makes :meth:`repro.api.Engine.sweep` resumable: interrupted sweeps
  restart where they stopped, completed sweeps reload bit-identically
  without executing a single online stage.

The stored payload is a :class:`~repro.core.reduction.RunSummary`; what a
record can serve depends on the run's ``OnlineConfig.artifacts`` retention
mode (``"summary"`` | ``"compact"`` | ``"dense"``).
"""

from repro.core.reduction import (
    ARTIFACT_MODES,
    ArtifactsNotRetained,
    Moments,
    RunSummary,
)
from repro.results.store import (
    DISK_FORMAT_VERSION,
    RunKey,
    RunStore,
    StoreStats,
    StoredRun,
    ensure_store,
    store_layout,
)

__all__ = [
    "ARTIFACT_MODES",
    "ArtifactsNotRetained",
    "DISK_FORMAT_VERSION",
    "Moments",
    "RunKey",
    "RunStore",
    "StoreStats",
    "StoredRun",
    "RunSummary",
    "ensure_store",
    "store_layout",
]
