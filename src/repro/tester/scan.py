"""Scan-chain test-time cost model.

The paper's economic argument is tester *time*: every frequency-stepping
iteration scans in a test vector (plus the buffer configuration bits, which
EffiTest piggybacks on the same scan chain — "this technique requires no
change to the existing test platform"), pulses the clock pair, and scans
out the capture.  This model converts iteration counts into seconds so
experiment reports can show absolute cost alongside counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ScanCostModel:
    """Per-iteration scan cost.

    Parameters
    ----------
    chain_length_bits:
        Scan chain length (≈ number of flip-flops; configuration bits of the
        tuning buffers ride along and are counted via ``config_bits``).
    shift_frequency_hz:
        Scan shift clock (typically 10–50 MHz on ATE).
    config_bits:
        Extra bits per iteration for buffer settings (EffiTest scans new
        buffer values with every vector; path-wise stepping does not, so
        pass 0 for the baseline).
    capture_overhead_s:
        Fixed per-iteration overhead (clock reconfiguration, capture,
        compare).
    """

    chain_length_bits: int
    shift_frequency_hz: float = 25e6
    config_bits: int = 0
    capture_overhead_s: float = 20e-6

    def __post_init__(self) -> None:
        if self.chain_length_bits <= 0:
            raise ValueError("chain_length_bits must be positive")
        check_positive(self.shift_frequency_hz, "shift_frequency_hz")
        if self.config_bits < 0:
            raise ValueError("config_bits must be non-negative")
        if self.capture_overhead_s < 0:
            raise ValueError("capture_overhead_s must be non-negative")

    @property
    def seconds_per_iteration(self) -> float:
        """Scan-in (vector + config) + capture + scan-out compare."""
        bits = self.chain_length_bits + self.config_bits
        # Scan-out of the previous capture overlaps scan-in of the next
        # vector on real ATE, so one chain transfer per iteration.
        return bits / self.shift_frequency_hz + self.capture_overhead_s

    def total_seconds(self, iterations: float) -> float:
        """Tester time for ``iterations`` frequency-stepping iterations."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        return iterations * self.seconds_per_iteration


def tester_time_summary(
    iterations_effitest: float,
    iterations_pathwise: float,
    chain_length_bits: int,
    config_bits: int,
) -> dict[str, float]:
    """Seconds per chip for EffiTest vs the path-wise baseline."""
    effitest = ScanCostModel(chain_length_bits, config_bits=config_bits)
    baseline = ScanCostModel(chain_length_bits, config_bits=0)
    return {
        "effitest_s": effitest.total_seconds(iterations_effitest),
        "pathwise_s": baseline.total_seconds(iterations_pathwise),
        "speedup": (
            baseline.total_seconds(iterations_pathwise)
            / max(effitest.total_seconds(iterations_effitest), 1e-12)
        ),
    }
