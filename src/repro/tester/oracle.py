"""Pass/fail oracle of the simulated ATE.

A frequency-stepping iteration applies a clock period ``T`` and buffer
settings ``x`` to the chip under test; a path's sink flip-flop latches
correctly iff the setup constraint (eq. 1 of the paper) holds:

    D_ij + x_i - x_j <= T.

This module evaluates exactly that predicate on Monte-Carlo chips — the
whole tester behaviour the algorithms may observe.  It never leaks the true
delay values to callers beyond the boolean outcome, mirroring a real
tester's observability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def shifted_slack_pass(
    true_delays: np.ndarray,
    shift: np.ndarray,
    period: float | np.ndarray,
) -> np.ndarray:
    """Vector pass/fail: ``true_delays + shift <= period`` element-wise.

    ``shift`` is the per-path ``x_source - x_sink``; shapes broadcast, so a
    ``(n_chips, n_paths)`` delay matrix with per-chip periods works.
    """
    return true_delays + shift <= period


@dataclass
class ChipOracle:
    """Single-chip tester with an iteration counter.

    ``true_delays[p]`` is the chip's realized maximum delay of path ``p``
    (setup folded).  ``measure`` is one frequency-stepping iteration on a
    batch of paths; the counter is the paper's ``t_a`` unit of cost.
    """

    true_delays: np.ndarray
    iterations: int = field(default=0)

    def __post_init__(self) -> None:
        self.true_delays = np.asarray(self.true_delays, dtype=float)
        if self.true_delays.ndim != 1:
            raise ValueError("true_delays must be a 1-D per-path array")

    def measure(
        self,
        path_indices: np.ndarray,
        shift: np.ndarray,
        period: float,
    ) -> np.ndarray:
        """Apply (T, x) to the chip; returns pass booleans per batch path."""
        path_indices = np.asarray(path_indices, dtype=np.intp)
        shift = np.asarray(shift, dtype=float)
        if shift.shape != path_indices.shape:
            raise ValueError("shift must align with path_indices")
        self.iterations += 1
        return shifted_slack_pass(self.true_delays[path_indices], shift, period)
