"""ATE (automatic test equipment) substrate.

Simulates the only thing a frequency-stepping tester can observe — did the
sink flip-flop latch at period ``T`` with buffer settings ``x`` — plus the
classic path-wise binary-search baseline and a scan-time cost model.
"""

from repro.tester.freqstep import (
    PathwiseResult,
    pathwise_frequency_stepping,
    required_iterations,
)
from repro.tester.noise import (
    NoisyChipOracle,
    guard_banded_bounds,
    verdict_error_probability,
)
from repro.tester.oracle import ChipOracle, shifted_slack_pass
from repro.tester.scan import ScanCostModel, tester_time_summary

__all__ = [
    "ChipOracle",
    "NoisyChipOracle",
    "guard_banded_bounds",
    "verdict_error_probability",
    "PathwiseResult",
    "ScanCostModel",
    "pathwise_frequency_stepping",
    "required_iterations",
    "shifted_slack_pass",
    "tester_time_summary",
]
