"""Tester non-idealities: clock jitter and guard-banding.

Real ATE clock generation has finite accuracy; a frequency-stepping verdict
near the threshold can flip.  The paper sidesteps this by treating the
tester as exact ("testers ... able to generate various clock signals with a
high accuracy") — this module models the imperfection so users can study
how much accuracy the method actually needs:

* :class:`NoisyChipOracle` — pass/fail with Gaussian period jitter; wrong
  verdicts near the boundary corrupt the inferred bounds.
* :func:`guard_banded_bounds` — the standard countermeasure: widen measured
  ranges by a guard band before configuration, trading yield for safety.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tester.oracle import ChipOracle
from repro.utils.rng import RandomState, as_generator


@dataclass
class NoisyChipOracle:
    """A :class:`ChipOracle` whose applied period jitters per iteration.

    ``jitter_sigma`` is the standard deviation (in delay units) of the
    actual vs requested clock period.  The *same* jitter draw applies to
    every path of one iteration — the clock is shared — which is exactly
    why near-boundary verdicts correlate across a batch.
    """

    true_delays: np.ndarray
    jitter_sigma: float
    seed: RandomState = None
    iterations: int = field(default=0)

    def __post_init__(self) -> None:
        self.true_delays = np.asarray(self.true_delays, dtype=float)
        if self.true_delays.ndim != 1:
            raise ValueError("true_delays must be a 1-D per-path array")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        self._rng = as_generator(self.seed)
        self._exact = ChipOracle(self.true_delays)

    def measure(
        self, path_indices: np.ndarray, shift: np.ndarray, period: float
    ) -> np.ndarray:
        """One frequency-stepping iteration with a jittered period."""
        actual = period + float(self._rng.normal(0.0, self.jitter_sigma))
        out = self._exact.measure(path_indices, shift, actual)
        self.iterations = self._exact.iterations
        return out


def guard_banded_bounds(
    lower: np.ndarray,
    upper: np.ndarray,
    guard_band: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Widen measured ranges by ``guard_band`` on each side.

    Guard-banding restores the bracketing guarantee lost to jitter as long
    as ``guard_band`` covers the worst-case accumulated verdict error
    (a few jitter sigmas in practice); the cost is a wider range, i.e. a
    more conservative configuration.
    """
    if guard_band < 0:
        raise ValueError("guard_band must be non-negative")
    return np.asarray(lower) - guard_band, np.asarray(upper) + guard_band


def verdict_error_probability(
    margin: np.ndarray, jitter_sigma: float
) -> np.ndarray:
    """Probability that jitter flips a verdict at distance ``margin`` from
    the threshold (one-sided Gaussian tail)."""
    from scipy import stats

    margin = np.abs(np.asarray(margin, dtype=float))
    if jitter_sigma == 0:
        return np.where(margin == 0, 0.5, 0.0)
    return stats.norm.sf(margin / jitter_sigma)
