"""Path-wise frequency stepping — the baseline of [2, 6, 8, 9].

Each path is tested alone: starting from the statistical prior
``[mu - 3 sigma, mu + 3 sigma]``, the tester repeatedly applies the range
midpoint as the clock period, shrinking the range by half per iteration
(pass -> new upper bound, fail -> new lower bound) until the range is
narrower than the resolution ``epsilon``.  The total iteration count is the
paper's ``t'_a`` and per-path count ``t'_v`` in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import TEST_KERNELS, resolve_kernel


@dataclass(frozen=True)
class PathwiseResult:
    """Outcome of path-wise stepping over a chip population."""

    lower: np.ndarray  # (n_chips, n_paths)
    upper: np.ndarray
    iterations_per_path: np.ndarray  # (n_paths,) — deterministic per path
    total_iterations: int  # per chip

    @property
    def mean_iterations_per_path(self) -> float:
        return float(self.iterations_per_path.mean())


def required_iterations(
    width: np.ndarray, epsilon: float | np.ndarray
) -> np.ndarray:
    """Iterations of halving needed to take ``width`` below ``epsilon``.

    Binary search halves the range every iteration regardless of pass/fail,
    so the count is ``ceil(log2(width / epsilon))`` (0 when already
    narrow).  ``epsilon`` may be a scalar or a per-path array broadcasting
    against ``width`` — the adaptive budget allocates a coarser resolution
    to well-predicted, rarely-critical paths.
    """
    width = np.asarray(width, dtype=float)
    epsilon = np.asarray(epsilon, dtype=float)
    if np.any(epsilon <= 0):
        raise ValueError("epsilon must be positive")
    with np.errstate(divide="ignore"):
        ratio = np.where(width > epsilon, width / epsilon, 1.0)
    return np.ceil(np.log2(ratio)).astype(int)


def pathwise_frequency_stepping(
    true_delays: np.ndarray,
    prior_means: np.ndarray,
    prior_stds: np.ndarray,
    epsilon: float | np.ndarray,
    sigma_window: float = 3.0,
    kernel: str = "vectorized",
) -> PathwiseResult:
    """Binary-search every path of every chip independently.

    ``true_delays`` is ``(n_chips, n_paths)``; the priors are per path.
    ``epsilon`` is the stepping resolution, scalar or per-path
    (``(n_paths,)``).  Fully vectorized: all chips/paths step in lockstep
    since the iteration count depends only on the prior width.  ``kernel``
    selects the stepping implementation
    (:data:`repro.kernels.TEST_KERNELS`): ``"compiled"`` runs the per-cell
    numba loop of :mod:`repro.kernels.freqstep` — cells are independent
    and step the same midpoints, so results are bit-identical (pinned by
    tests).
    """
    if kernel not in TEST_KERNELS:
        raise ValueError(f"kernel must be one of {TEST_KERNELS}, got {kernel!r}")
    kernel = resolve_kernel(kernel)
    true_delays = np.atleast_2d(np.asarray(true_delays, dtype=float))
    prior_means = np.asarray(prior_means, dtype=float)
    prior_stds = np.asarray(prior_stds, dtype=float)
    n_chips, n_paths = true_delays.shape
    if prior_means.shape != (n_paths,) or prior_stds.shape != (n_paths,):
        raise ValueError("prior arrays must have one entry per path")
    if np.ndim(epsilon) > 0 and np.shape(epsilon) != (n_paths,):
        raise ValueError("per-path epsilon must have one entry per path")

    lower = np.tile(prior_means - sigma_window * prior_stds, (n_chips, 1))
    upper = np.tile(prior_means + sigma_window * prior_stds, (n_chips, 1))
    iters = required_iterations(upper[0] - lower[0], epsilon)
    max_iterations = int(iters.max(initial=0))

    if kernel == "compiled":
        from repro.kernels.freqstep import pathwise_step_kernel

        eps_row = np.ascontiguousarray(
            np.broadcast_to(np.asarray(epsilon, dtype=float), (n_paths,))
        )
        pathwise_step_kernel(
            lower, upper, np.ascontiguousarray(true_delays), eps_row,
            max_iterations,
        )
    else:
        for _ in range(max_iterations):
            active = (upper - lower) >= epsilon
            midpoint = 0.5 * (lower + upper)
            passed = true_delays <= midpoint
            shrink_upper = active & passed
            shrink_lower = active & ~passed
            upper[shrink_upper] = midpoint[shrink_upper]
            lower[shrink_lower] = midpoint[shrink_lower]

    return PathwiseResult(
        lower=lower,
        upper=upper,
        iterations_per_path=iters,
        total_iterations=int(iters.sum()),
    )
