"""Compiled frequency-stepping updates (path-wise and batch engines).

Two kernels, both elementwise over ``(chip, path)`` and therefore
trivially bit-identical to their NumPy twins:

* :func:`pathwise_step_kernel` — the full binary search of the path-wise
  baseline, one ``(chip, path)`` cell at a time instead of whole-array
  lockstep halving.  Per cell the float sequence (midpoint, compare,
  shrink) is exactly the vectorized one; cells are independent.
* :func:`step_bounds_kernel` — one fused iteration of the aligned batch
  engine's oracle + bound tightening
  (:func:`repro.tester.oracle.shifted_slack_pass` followed by the two
  masked ``np.minimum``/``np.maximum`` updates in
  ``_sweep_active_set``), writing the bound buffers in place instead of
  allocating four masks and two fresh arrays per iteration.

Output buffers carry the ``*_out``/``*_buf`` seam names, so effilint's
EFT005 purity rule recognizes them as sanctioned write targets.
"""

from __future__ import annotations

from repro.kernels._compile import njit_kernel


@njit_kernel
def pathwise_step_kernel(
    lower_out, upper_out, true_delays, epsilon, max_iterations
):  # pragma: no cover - covered via pathwise_frequency_stepping
    """Binary-search every ``(chip, path)`` cell down to its ``epsilon``.

    ``lower_out``/``upper_out`` hold the prior ranges on entry and the
    final ranges on return; ``epsilon`` is an ``(n_paths,)`` resolution
    array (the uniform budget passes one value broadcast per path, the
    adaptive budget a per-path allocation).  Matches the lockstep NumPy
    loop exactly: a cell stops shrinking once its width drops below its
    path's epsilon, and no cell steps more than ``max_iterations`` times.
    """
    n_chips, n_paths = true_delays.shape
    for i in range(n_chips):
        for j in range(n_paths):
            lo = lower_out[i, j]
            up = upper_out[i, j]
            delay = true_delays[i, j]
            eps = epsilon[j]
            for _ in range(max_iterations):
                if not (up - lo >= eps):
                    break
                mid = 0.5 * (lo + up)
                if delay <= mid:
                    up = mid
                else:
                    lo = mid
            lower_out[i, j] = lo
            upper_out[i, j] = up


@njit_kernel
def step_bounds_kernel(
    lower_buf, upper_buf, true_delays, shift, period, active
):  # pragma: no cover - covered via run_batch_population
    """One aligned-test iteration: oracle + bound tightening, in place.

    Fuses ``passed = true_delays + shift <= period`` with the masked
    ``upper = min(upper, period - shift)`` / ``lower = max(lower, period -
    shift)`` updates of the batch engine.  Inactive cells are untouched;
    for active cells the accepted value equals the NumPy path's
    ``np.minimum``/``np.maximum`` result exactly.
    """
    n_chips, n_paths = true_delays.shape
    for i in range(n_chips):
        t = period[i]
        for j in range(n_paths):
            if not active[i, j]:
                continue
            bound = t - shift[i, j]
            if true_delays[i, j] + shift[i, j] <= t:
                if bound < upper_buf[i, j]:
                    upper_buf[i, j] = bound
            else:
                if bound > lower_buf[i, j]:
                    lower_buf[i, j] = bound


__all__ = ["pathwise_step_kernel", "step_bounds_kernel"]
