"""Optional compiled fast paths for the two hottest inner loops.

The reproduction's wall-clock at the paper's headline scale (Tables 1/2:
frequency-stepping test cost over 10^5..10^6 chips) concentrates in two
inner loops:

* the min-plus relaxation sweep behind every configure/verify feasibility
  solve (:class:`repro.opt.diffconstraints.RelaxKernel`), and
* the per-chip frequency-stepping updates of the test stage
  (:mod:`repro.tester.freqstep` and the batch population engine).

This package holds ``numba``-compiled twins of those loops
(``@njit(nogil=True, cache=True)``), selected through the existing
``kernel=`` seam: ``"compiled"`` forces them, ``"auto"`` picks
``"compiled"`` when numba is importable and falls back to
``"vectorized"`` otherwise.  numba is strictly optional — without it the
kernel functions degrade to their pure-Python bodies (bit-identical,
slow), so ``"compiled"`` remains testable everywhere while ``"auto"``
never routes production work through the uncompiled fallback.

Every compiled kernel is pinned bit-identical to its vectorized twin: the
same float operations in the same order, with output buffers named through
the ``*_out``/``*_buf`` seam so effilint's EFT005 purity rule covers this
package too (see ``tests/kernels``).
"""

from __future__ import annotations

from repro.kernels._compile import NUMBA_AVAILABLE

#: Kernel names accepted by the test-stage stepping seam
#: (``OnlineConfig.test_kernel``, :func:`repro.tester.freqstep.
#: pathwise_frequency_stepping`, :func:`repro.core.population.
#: run_batch_population`).  The configure seam accepts these plus
#: ``"reference"`` (see :data:`repro.core.configuration.KERNELS`).
TEST_KERNELS = ("auto", "compiled", "vectorized")


def numba_available() -> bool:
    """True when the optional numba dependency imported successfully."""
    return NUMBA_AVAILABLE


def resolve_kernel(name: str) -> str:
    """Resolve the ``"auto"`` kernel name against the environment.

    ``"auto"`` becomes ``"compiled"`` when numba is importable and
    ``"vectorized"`` otherwise; every other name passes through unchanged
    (validation stays with the accepting seam, which knows its own menu).
    """
    if name == "auto":
        return "compiled" if NUMBA_AVAILABLE else "vectorized"
    return name


__all__ = [
    "NUMBA_AVAILABLE",
    "TEST_KERNELS",
    "numba_available",
    "resolve_kernel",
]
