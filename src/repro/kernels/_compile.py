"""The numba shim: ``@njit(nogil=True, cache=True)`` or identity.

numba is an *optional* dependency (``pip install repro[compiled]``).  When
it is absent the decorator degrades to the identity function, so every
kernel in this package still runs — as its plain Python body, bit-identical
but slow — which keeps the ``"compiled"`` selection testable on pure-NumPy
installs while ``"auto"`` routes around it (see
:func:`repro.kernels.resolve_kernel`).

``nogil=True`` is what makes the intra-run shard thread pool
(:mod:`repro.api.parallel`) scale: compiled shards drop the GIL for the
whole inner loop.  ``cache=True`` persists compilation artifacts next to
the module (or under ``NUMBA_CACHE_DIR``), so warm processes skip the
multi-second JIT cost.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only on numba-enabled installs
    from numba import njit as _numba_njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the pure-NumPy environment
    _numba_njit = None
    NUMBA_AVAILABLE = False


def njit_kernel(func):
    """Compile ``func`` with ``@njit(nogil=True, cache=True)`` if possible."""
    if NUMBA_AVAILABLE:
        return _numba_njit(nogil=True, cache=True)(func)
    return func


__all__ = ["NUMBA_AVAILABLE", "njit_kernel"]
