"""Compiled Clark-max arithmetic for batched criticality SSTA.

The batched Clark maximum of :mod:`repro.core.criticality` splits into
three stages: moment folds over the factor columns, the Gaussian
pdf/cdf of the normalized mean gap, and the moment-matched blend.  Only
the first and third are compiled here — scipy's ``norm.pdf``/``norm.cdf``
ufuncs cannot run under numba, and substituting libm equivalents would
break the bit-identity pin, so the Gaussian stage stays in NumPy between
the two kernel calls.  (The batched *sum* is never compiled at all:
``CanonicalForm.__add__`` combines independent terms with CPython's
``math.hypot``, whose corrected rounding differs bitwise from the libm
``hypot`` numba would emit.)

Both kernels replay the vectorized twin float-for-float: per row the
same left folds in ascending factor order, the same expression grouping,
with squares written as ``x * x`` (NumPy lowers ``arr ** 2`` to
``np.square``).  Output buffers carry the ``*_out`` seam names so
effilint's EFT005 purity rule covers this module.
"""

from __future__ import annotations

import math

from repro.kernels._compile import njit_kernel

# Degenerate-spread threshold of ``CanonicalForm.maximum`` (kept local:
# the kernels package must not import from ``repro.core``).
_THETA2_FLOOR = 1e-24


@njit_kernel
def clark_moments_kernel(
    mean_a, load_a, ind_a, mean_b, load_b, ind_b,
    var_a_out, var_b_out, theta2_out, alpha_out,
):  # pragma: no cover - covered via batched_maximum bit-compare tests
    """Row-wise Clark first stage: variances, spread and mean gap.

    Fills ``var_a_out``/``var_b_out`` with the operand variances (factor
    fold plus independent term), ``theta2_out`` with the raw spread
    ``var_a + var_b - 2 rho sqrt(var_a var_b)`` and ``alpha_out`` with the
    normalized mean gap, using a unit spread for degenerate rows exactly
    like the NumPy twin.
    """
    n, n_factors = load_a.shape
    for i in range(n):
        var_a = 0.0
        for f in range(n_factors):
            c = load_a[i, f]
            var_a = var_a + c * c
        var_a = var_a + ind_a[i] * ind_a[i]
        var_b = 0.0
        for f in range(n_factors):
            c = load_b[i, f]
            var_b = var_b + c * c
        var_b = var_b + ind_b[i] * ind_b[i]
        cov = 0.0
        for f in range(n_factors):
            cov = cov + load_a[i, f] * load_b[i, f]
        denom = math.sqrt(var_a) * math.sqrt(var_b)
        if denom == 0.0:
            rho = 0.0
        else:
            rho = cov / denom
        theta2 = var_a + var_b - (2.0 * rho) * math.sqrt(var_a * var_b)
        if theta2 <= _THETA2_FLOOR:
            theta = 1.0
        else:
            theta = math.sqrt(theta2)
        var_a_out[i] = var_a
        var_b_out[i] = var_b
        theta2_out[i] = theta2
        alpha_out[i] = (mean_a[i] - mean_b[i]) / theta


@njit_kernel
def clark_blend_kernel(
    mean_a, load_a, ind_a, mean_b, load_b, ind_b,
    var_a, var_b, theta2, phi,
    mean_out, load_out, ind_out, tight_out,
):  # pragma: no cover - covered via batched_maximum bit-compare tests
    """Row-wise Clark third stage: moment-matched blend of the operands.

    ``tight_out`` holds the Gaussian cdf of the mean gap on entry
    (Clark's blending weight) and the final tightness on return —
    degenerate rows (``theta2 <= 1e-24``) copy the larger-mean operand
    and report a tightness of exactly 1.0 or 0.0, matching the scalar
    reference's early return of the winning operand object.
    """
    n, n_factors = load_a.shape
    for i in range(n):
        if theta2[i] <= _THETA2_FLOOR:
            if mean_a[i] >= mean_b[i]:
                mean_out[i] = mean_a[i]
                for f in range(n_factors):
                    load_out[i, f] = load_a[i, f]
                ind_out[i] = ind_a[i]
                tight_out[i] = 1.0
            else:
                mean_out[i] = mean_b[i]
                for f in range(n_factors):
                    load_out[i, f] = load_b[i, f]
                ind_out[i] = ind_b[i]
                tight_out[i] = 0.0
            continue
        theta = math.sqrt(theta2[i])
        t = tight_out[i]
        p = phi[i]
        ma = mean_a[i]
        mb = mean_b[i]
        mean = ma * t + mb * (1.0 - t) + theta * p
        second = (
            (var_a[i] + ma * ma) * t
            + (var_b[i] + mb * mb) * (1.0 - t)
            + (ma + mb) * theta * p
        )
        variance = second - mean * mean
        if not variance > 0.0:
            variance = 0.0
        shared = 0.0
        for f in range(n_factors):
            merged = load_a[i, f] * t + load_b[i, f] * (1.0 - t)
            load_out[i, f] = merged
            shared = shared + merged * merged
        leftover = variance - shared
        if not leftover > 0.0:
            leftover = 0.0
        mean_out[i] = mean
        ind_out[i] = math.sqrt(leftover)


__all__ = ["clark_blend_kernel", "clark_moments_kernel"]
