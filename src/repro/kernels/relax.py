"""Compiled min-plus relaxation: the per-row twin of ``RelaxKernel``.

:meth:`repro.opt.diffconstraints.RelaxKernel.solve_rows` sweeps all batch
rows simultaneously with three array operations per level (gather,
``np.minimum.reduceat``, masked update).  This module is the same
algorithm turned inside out: one compiled loop nest per *row*, walking the
identical level schedule — so a row's working set (its ``n_nodes``
distances plus one weight row) stays in cache for its whole solve, and the
``nogil`` loop lets shard threads relax different rows concurrently.

Bit-identity argument (pinned by ``tests/kernels``):

* the segmented minimum visits each group's edges in the same kernel
  order ``np.minimum.reduceat`` reduces them (sequential, NaN-propagating
  — the ``isnan`` arm below mirrors ``np.minimum`` exactly);
* the level schedule guarantees no group reads a target written earlier
  in its own level, so per-group sequential writes see exactly the
  distances the per-level batched update reads;
* every accepted update, the epsilon threshold, the divergence floor cut
  and the final quiescence check apply the same float64 operations in the
  same order as the vectorized sweep — only the batching differs, and
  ``floor_bound`` is computed by the caller in NumPy (pairwise summation)
  so even its rounding matches.
"""

from __future__ import annotations

import numpy as np

from repro.kernels._compile import njit_kernel


@njit_kernel
def relax_rows_kernel(
    dist_out,
    infeasible_out,
    w,
    edge_u,
    group_start,
    group_end,
    group_target,
    level_ptr,
    floor_bound,
    n_nodes,
    eps,
):  # pragma: no cover - covered via the dispatching solve_rows
    """Relax every row of ``w`` to quiescence; write into the out buffers.

    ``dist_out`` is ``(n_rows, n_nodes)`` zeros and ``infeasible_out``
    ``(n_rows,)`` False on entry.  ``w`` is destination-grouped weights
    (kernel edge order); the schedule arrays describe the level structure:
    level ``lv`` spans groups ``level_ptr[lv]:level_ptr[lv+1]``, group
    ``g`` spans edges ``group_start[g]:group_end[g]`` into node
    ``group_target[g]``.
    """
    n_rows = w.shape[0]
    n_groups = group_target.shape[0]
    n_levels = level_ptr.shape[0] - 1
    for r in range(n_rows):
        d = dist_out[r]
        wr = w[r]
        fb = floor_bound[r]
        quiesced = False
        diverged = False
        for _ in range(n_nodes):
            changed = False
            for lv in range(n_levels):
                for g in range(level_ptr[lv], level_ptr[lv + 1]):
                    m = np.inf
                    for e in range(group_start[g], group_end[g]):
                        c = d[edge_u[e]] + wr[e]
                        if c < m or np.isnan(c):
                            m = c
                    t = group_target[g]
                    if m < d[t] - eps:
                        d[t] = m
                        changed = True
            if not changed:
                quiesced = True
                break
            dmin = d[0]
            for k in range(1, n_nodes):
                if d[k] < dmin:
                    dmin = d[k]
            if dmin < fb:
                diverged = True
                break
        if diverged:
            infeasible_out[r] = True
        elif not quiesced:
            # Survived all n_nodes sweeps still improving: negative cycle
            # iff any group can relax against the final distances.
            for g in range(n_groups):
                m = np.inf
                for e in range(group_start[g], group_end[g]):
                    c = d[edge_u[e]] + wr[e]
                    if c < m or np.isnan(c):
                        m = c
                if m < d[group_target[g]] - eps:
                    infeasible_out[r] = True
                    break


__all__ = ["relax_rows_kernel"]
