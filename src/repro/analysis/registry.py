"""Rule registry and the shared per-module analysis context.

A rule is a class with an ``id`` (``EFTnnn``), a one-line ``summary``, an
optional path ``scope`` (fnmatch patterns against the posix relpath; ``None``
applies everywhere) and a ``check(ctx)`` generator of :class:`Finding`\\ s.
Rules register themselves via the :func:`register` decorator at import time
(:mod:`repro.analysis.rules` imports every rule module), so the engine and
the CLI discover them from one place.

The :class:`ModuleContext` is the shared parse pass: one source read, one
``ast.parse``, one import/symbol resolution and one pragma scan per file —
every rule consumes the same context instead of re-parsing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.pragmas import PragmaSet
from repro.analysis.resolve import Resolver


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violation at a source location."""

    path: str  # posix relpath from the analysis root
    line: int  # 1-based
    col: int  # 0-based, ast convention
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


@dataclass
class ModuleContext:
    """Everything a rule needs about one parsed module."""

    path: Path  # absolute path on disk
    relpath: str  # posix, relative to the analysis root
    source: str
    lines: list[str] = field(repr=False)
    tree: ast.Module = field(repr=False)
    resolver: Resolver = field(repr=False)
    pragmas: PragmaSet = field(repr=False)

    def finding(
        self, rule: str, node: ast.AST | int, message: str, col: int = 0
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` (or a line number)."""
        if isinstance(node, int):
            return Finding(self.relpath, node, col, rule, message)
        return Finding(
            self.relpath,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            rule,
            message,
        )

    def line_text(self, line: int) -> str:
        """The 1-based source line, or ``""`` past the end."""
        return self.lines[line - 1] if 1 <= line <= len(self.lines) else ""


class Rule:
    """Base class for effilint rules; subclasses override :meth:`check`."""

    id: str = "EFT000"
    name: str = "unnamed"
    summary: str = ""
    #: fnmatch patterns against the posix relpath; ``None`` = every file.
    scope: tuple[str, ...] | None = None

    def applies_to(self, relpath: str) -> bool:
        if self.scope is None:
            return True
        return any(_path_matches(relpath, pattern) for pattern in self.scope)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


def _path_matches(relpath: str, pattern: str) -> bool:
    """fnmatch with tolerance for a missing leading directory.

    ``*`` in :func:`fnmatch.fnmatch` crosses ``/`` so ``*/service/*.py``
    matches ``src/repro/service/daemon.py``; the stripped variant also
    matches when the scoped directory sits at the analysis root (fixture
    trees in tests).
    """
    if fnmatch(relpath, pattern):
        return True
    return pattern.startswith("*/") and fnmatch(relpath, pattern[2:])


_RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    _RULES[rule.id] = rule
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by id (imports the rule package)."""
    import repro.analysis.rules  # noqa: F401 - registration side effect

    return tuple(rule for _, rule in sorted(_RULES.items()))


def get_rule(rule_id: str) -> Rule:
    import repro.analysis.rules  # noqa: F401 - registration side effect

    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}") from None


def known_rule_ids() -> frozenset[str]:
    """Registered ids plus the engine's own EFT000 (pragma/parse errors)."""
    import repro.analysis.rules  # noqa: F401 - registration side effect

    return frozenset(_RULES) | {"EFT000"}


def select_rules(select: Iterable[str] | None) -> tuple[Rule, ...]:
    """The rules to run: all of them, or the ``--select`` subset."""
    if select is None:
        return all_rules()
    return tuple(get_rule(rule_id) for rule_id in select)


__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "get_rule",
    "known_rule_ids",
    "register",
    "select_rules",
]
