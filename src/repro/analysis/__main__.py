"""CLI entry point: ``python -m repro.analysis`` / ``effilint``.

Usage::

    python -m repro.analysis [paths...]
        [--select EFT001,EFT003] [--format text|json] [--verbose]
        [--baseline FILE] [--no-baseline] [--write-baseline]
        [--ratchet-against OLD] [--root DIR] [--list-rules]

Exit codes: **0** clean (no new findings, no stale baseline entries),
**1** findings / stale baseline / ratchet growth, **2** usage error.

The baseline defaults to ``<root>/.effilint-baseline.json`` (``--root``
defaults to the current directory); findings recorded there are reported
as *baselined* and do not fail the run, but entries that no longer fire do
— the shrink-only ratchet.  ``--ratchet-against OLD`` additionally fails
when the current baseline file contains fingerprints ``OLD`` did not (CI
compares against the base branch's copy).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineError,
    fingerprint_findings,
    load_baseline,
    ratchet_violations,
    write_baseline,
)
from repro.analysis.engine import analyze_paths
from repro.analysis.registry import all_rules
from repro.analysis.report import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="effilint",
        description="Project-invariant static analyzer for the EffiTest codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="root for relative paths in findings and baselines (default: cwd)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--ratchet-against",
        default=None,
        metavar="OLD",
        help="fail if the baseline file gained entries relative to OLD "
        "(typically the base branch's copy)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also report baselined and pragma-suppressed findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name}: {rule.summary}")
            if rule.scope:
                print(f"        scope: {', '.join(rule.scope)}")
        return 0

    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    root = Path(args.root)
    if not root.is_dir():
        print(f"effilint: root {root} is not a directory", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"effilint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    try:
        result = analyze_paths(args.paths, root=root, select=select)
    except KeyError as exc:  # unknown --select id
        print(f"effilint: {exc.args[0]}", file=sys.stderr)
        return 2

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    )
    pairs = fingerprint_findings(result.findings, result.line_text)

    if args.write_baseline:
        write_baseline(baseline_path, pairs)
        print(
            f"effilint: wrote {len(pairs)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    stale: list[str] = []
    if args.no_baseline:
        baseline = None
    else:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"effilint: {exc}", file=sys.stderr)
            return 2

    if baseline is None:
        new_findings = [finding for finding, _ in pairs]
        baselined: list = []
    else:
        current = {fingerprint for _, fingerprint in pairs}
        new_findings = [f for f, fp in pairs if fp not in baseline.fingerprints]
        baselined = [f for f, fp in pairs if fp in baseline.fingerprints]
        stale = sorted(baseline.fingerprints - current)

    grew: list[str] = []
    if args.ratchet_against is not None:
        try:
            old = load_baseline(Path(args.ratchet_against))
            current_baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"effilint: {exc}", file=sys.stderr)
            return 2
        grew = ratchet_violations(current_baseline, old)
        for fingerprint in grew:
            entry = current_baseline.entries[fingerprint]
            print(
                f"effilint: baseline grew: {entry.get('rule')} at "
                f"{entry.get('path')} ({fingerprint}) is not in "
                f"{args.ratchet_against} — fix the finding instead of "
                "baselining it",
                file=sys.stderr,
            )

    render = render_text if args.format == "text" else render_json
    render(
        result,
        new_findings,
        baselined,
        stale,
        sys.stdout,
        verbose=args.verbose,
    )
    return 1 if new_findings or stale or grew else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
