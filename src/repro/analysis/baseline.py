"""The shrink-only finding baseline (``.effilint-baseline.json``).

A baseline lets the analyzer land on a codebase with pre-existing findings
without blocking CI on day one: known findings are recorded once (with
``--write-baseline``) and suppressed on later runs, while *new* findings
still fail.  Two properties make it a ratchet rather than a dumping ground:

* **stale entries are an error** — a baselined finding that no longer
  fires must be removed from the file (``--write-baseline`` again), so the
  file can only track reality, never accumulate fiction;
* **CI asserts shrink-only** — ``--ratchet-against OLD`` fails when the
  current baseline contains a fingerprint the old one did not, so the only
  way to add debt is an explicit, reviewable baseline regeneration.

Fingerprints hash the rule id, the path and the *normalized source line
text* plus an occurrence index — stable under unrelated edits that shift
line numbers, unique across repeated identical lines.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.analysis.registry import Finding

__all__ = [
    "Baseline",
    "BaselineError",
    "fingerprint_findings",
    "load_baseline",
    "write_baseline",
]

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".effilint-baseline.json"


class BaselineError(ValueError):
    """The baseline file is unreadable or violates the ratchet."""


def _fingerprint(rule: str, path: str, line_text: str, occurrence: int) -> str:
    payload = f"{rule}\x00{path}\x00{line_text.strip()}\x00{occurrence}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def fingerprint_findings(
    findings: Sequence[Finding], line_text: Callable[[str, int], str]
) -> list[tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint.

    ``line_text(path, line)`` returns the source line the finding anchors
    to.  Repeated identical (rule, path, line-text) triples disambiguate by
    occurrence index in (line, col) order.
    """
    seen: Counter[tuple[str, str, str]] = Counter()
    pairs: list[tuple[Finding, str]] = []
    for finding in sorted(findings):
        text = line_text(finding.path, finding.line)
        key = (finding.rule, finding.path, text.strip())
        pairs.append((finding, _fingerprint(*key, seen[key])))
        seen[key] += 1
    return pairs


@dataclass(frozen=True)
class Baseline:
    """The parsed baseline: fingerprint -> recorded entry."""

    entries: dict[str, dict]

    @property
    def fingerprints(self) -> frozenset[str]:
        return frozenset(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return Baseline({})
    except (OSError, ValueError) as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported version "
            f"{payload.get('version') if isinstance(payload, dict) else payload!r}"
        )
    entries: dict[str, dict] = {}
    for entry in payload.get("findings", []):
        entries[str(entry["fingerprint"])] = entry
    return Baseline(entries)


def write_baseline(
    path: Path, pairs: Iterable[tuple[Finding, str]]
) -> None:
    """Serialize the current findings as the new baseline (sorted, stable)."""
    findings = [
        {
            "fingerprint": fingerprint,
            "rule": finding.rule,
            "path": finding.path,
            "message": finding.message,
        }
        for finding, fingerprint in sorted(pairs)
    ]
    payload = {"version": BASELINE_VERSION, "findings": findings}
    path.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")


def ratchet_violations(current: Baseline, old: Baseline) -> list[str]:
    """Fingerprints present now but absent from ``old`` — growth, an error."""
    return sorted(current.fingerprints - old.fingerprints)
