"""Import and symbol resolution — the shared pass behind every rule.

Rules reason about *canonical dotted names* ("this call is
``numpy.random.default_rng``", "this is ``repro.utils.diskio.write_atomic``"),
not surface spellings (``np.random.default_rng``, ``default_rng`` after a
``from``-import, an aliased module...).  :class:`Resolver` scans a module's
``import`` / ``from ... import`` statements once (including function-local
imports — a deliberate over-approximation: a name imported anywhere in the
file resolves file-wide) and maps expression ASTs back to those canonical
names.

Resolution is best-effort and *syntactic*: attribute chains rooted in an
unknown name (``self.store.lease``) resolve to ``None`` and rules fall back
to attribute-name heuristics where that matters.  Builtins (``open``)
resolve to ``builtins.<name>`` unless shadowed by an import.
"""

from __future__ import annotations

import ast
import builtins

__all__ = ["Resolver"]


class Resolver:
    """Maps names/attribute chains of one module to canonical dotted names."""

    def __init__(self, tree: ast.Module) -> None:
        #: alias -> module path, from ``import x.y as z`` (and ``import x``).
        self.modules: dict[str, str] = {}
        #: alias -> fully qualified origin, from ``from m import n as a``.
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.modules[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: origin module unknown
                    continue
                base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.names[bound] = f"{base}.{alias.name}" if base else alias.name

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of an expression, or ``None``.

        ``Name`` nodes resolve through the import maps, then through
        builtins; ``Attribute`` chains resolve their base and append.  Any
        unresolvable base (a local variable, ``self``, a call result) makes
        the whole chain ``None``.
        """
        if isinstance(node, ast.Name):
            if node.id in self.names:
                return self.names[node.id]
            if node.id in self.modules:
                return self.modules[node.id]
            if hasattr(builtins, node.id):
                return f"builtins.{node.id}"
            return None
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def resolve_call(self, node: ast.Call) -> str | None:
        """Canonical dotted name of a call's callee, or ``None``."""
        return self.resolve(node.func)
