"""File collection, the shared parse pass, and rule execution.

One :class:`~repro.analysis.registry.ModuleContext` is built per file
(source read, ``ast.parse``, import resolution, pragma scan); every selected
rule whose scope matches then runs over that context.  The engine itself
owns rule **EFT000**: syntax errors and malformed pragmas — problems with
the *analysis inputs* rather than the analyzed code — which can never be
suppressed.

Pragma filtering happens here, uniformly: a finding whose anchor line
carries (or whose preceding standalone comment carries) a
``# effilint: disable=<rule> -- reason`` pragma is moved from ``findings``
to ``suppressed`` — visible in verbose output, invisible to exit codes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.pragmas import parse_pragmas
from repro.analysis.registry import (
    Finding,
    ModuleContext,
    Rule,
    select_rules,
)
from repro.analysis.resolve import Resolver

__all__ = ["AnalysisResult", "analyze_paths", "build_context", "iter_python_files"]

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".effitest-store"}


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    out: set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = set(candidate.parts)
                if parts & _SKIP_DIRS or any(
                    part.startswith(".") and part not in (".", "..")
                    for part in candidate.parts
                ):
                    continue
                out.add(candidate.resolve())
    return sorted(out)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def build_context(path: Path, root: Path) -> tuple[ModuleContext | None, list[Finding]]:
    """The shared parse pass for one file.

    Returns ``(context, engine_findings)``; an unparseable file yields
    ``(None, [EFT000 finding])`` and malformed pragmas yield EFT000
    findings alongside a usable context.
    """
    relpath = _relpath(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, [Finding(relpath, 1, 0, "EFT000", f"unreadable file: {exc}")]
    pragmas = parse_pragmas(source)
    engine_findings = [
        Finding(relpath, pragma.line, 0, "EFT000", pragma.error)
        for pragma in pragmas.malformed
    ]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        engine_findings.append(
            Finding(relpath, exc.lineno or 1, 0, "EFT000", f"syntax error: {exc.msg}")
        )
        return None, engine_findings
    ctx = ModuleContext(
        path=path,
        relpath=relpath,
        source=source,
        lines=source.splitlines(),
        tree=tree,
        resolver=Resolver(tree),
        pragmas=pragmas,
    )
    return ctx, engine_findings


@dataclass
class AnalysisResult:
    """Everything one analysis run produced (before baseline application)."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, str]] = field(default_factory=list)
    #: relpath -> source lines, for baseline fingerprinting and reporting.
    sources: dict[str, list[str]] = field(default_factory=dict)
    n_files: int = 0

    def line_text(self, relpath: str, line: int) -> str:
        lines = self.sources.get(relpath, [])
        return lines[line - 1] if 1 <= line <= len(lines) else ""


def analyze_paths(
    paths: Sequence[str | Path],
    root: str | Path | None = None,
    select: Iterable[str] | None = None,
) -> AnalysisResult:
    """Run the selected rules over every Python file under ``paths``.

    ``root`` anchors the relpaths used in findings, scopes and baselines
    (default: the current working directory).  Findings are sorted by
    (path, line, col, rule); pragma-suppressed ones land in
    ``result.suppressed`` with their pragma reason.
    """
    root = Path(root) if root is not None else Path.cwd()
    rules: tuple[Rule, ...] = select_rules(select)
    result = AnalysisResult()
    for path in iter_python_files([Path(p) for p in paths]):
        ctx, engine_findings = build_context(path, root)
        result.n_files += 1
        result.findings.extend(engine_findings)  # EFT000: never suppressible
        if ctx is None:
            continue
        result.sources[ctx.relpath] = ctx.lines
        for rule in rules:
            if not rule.applies_to(ctx.relpath):
                continue
            for finding in rule.check(ctx):
                if ctx.pragmas.suppresses(finding.rule, finding.line):
                    reasons = [
                        pragma.reason
                        for pragma in ctx.pragmas.pragmas
                        if finding.rule in pragma.rules
                        and pragma.error is None
                        and (
                            pragma.line == finding.line
                            or (pragma.standalone and pragma.line + 1 == finding.line)
                        )
                    ]
                    result.suppressed.append(
                        (finding, reasons[0] if reasons else "")
                    )
                else:
                    result.findings.append(finding)
    result.findings.sort()
    result.suppressed.sort()
    return result
