"""EFT003 — store-write discipline in the persistence layers.

The :class:`~repro.results.RunStore` and the preparation cache's disk tier
guarantee that *readers only ever see whole records* — but only because
every write goes through :func:`repro.utils.diskio.write_atomic` (temp file
in the same directory + ``os.replace``).  One bare ``open(path, "w")`` in
those layers reintroduces torn reads for every concurrent process.

Within the persistence scopes (``results/``, ``api/cache.py``,
``service/``) this rule flags direct write APIs — ``open`` with a
write/append/create mode, ``numpy.save``/``savez``/``savez_compressed``,
``json.dump``, ``pickle.dump``, ``Path.write_text``/``write_bytes`` —
unless the call is lexically an argument of ``write_atomic(...)`` (the
sanctioned pattern: ``write_atomic(path, lambda handle: np.savez(handle,
...))``).  Streaming sinks that are *contractually* append-only (the jobs
mode's tail-followed event log) carry a pragma with the contract as the
reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.registry import Finding, ModuleContext, Rule, register

_WRITE_CALLS = {
    "numpy.save": "np.save",
    "numpy.savez": "np.savez",
    "numpy.savez_compressed": "np.savez_compressed",
    "json.dump": "json.dump",
    "pickle.dump": "pickle.dump",
}

_WRITE_METHODS = {"write_text", "write_bytes"}

_MODE_WRITE_CHARS = set("wax+")


def _open_write_mode(node: ast.Call) -> str | None:
    """The literal write-ish mode of an ``open`` call, or ``None``."""
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return None  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if set(mode.value) & _MODE_WRITE_CHARS:
            return mode.value
        return None
    return None  # non-literal mode: out of static reach


@register
class StoreWriteDiscipline(Rule):
    id = "EFT003"
    name = "store-write-discipline"
    summary = (
        "writes in the persistence layers must route through "
        "repro.utils.diskio.write_atomic (readers must only ever see whole files)"
    )
    scope = (
        "*/results/*.py",
        "*/api/cache.py",
        "*/service/*.py",
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._visit(ctx, ctx.tree, exempt=False)

    def _visit(
        self, ctx: ModuleContext, node: ast.AST, exempt: bool
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            resolved = ctx.resolver.resolve_call(node)
            if resolved is not None and resolved.endswith(".write_atomic"):
                # Everything inside the sanctioned helper's argument list
                # (the writer lambda in particular) is the atomic path.
                for child in ast.iter_child_nodes(node):
                    yield from self._visit(ctx, child, exempt=True)
                return
            if not exempt:
                yield from self._check_call(ctx, node, resolved)
        for child in ast.iter_child_nodes(node):
            yield from self._visit(ctx, child, exempt)

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call, resolved: str | None
    ) -> Iterator[Finding]:
        if resolved == "builtins.open":
            mode = _open_write_mode(node)
            if mode is not None:
                yield ctx.finding(
                    "EFT003",
                    node,
                    f"bare open(..., {mode!r}) in a persistence layer — a "
                    "crashed or concurrent writer leaves torn files; route "
                    "the write through repro.utils.diskio.write_atomic (or "
                    "pragma a contractually append-only stream)",
                )
            return
        if resolved in _WRITE_CALLS:
            yield ctx.finding(
                "EFT003",
                node,
                f"direct {_WRITE_CALLS[resolved]}(...) in a persistence "
                "layer — wrap it in write_atomic(path, lambda handle: ...) "
                "so readers only ever see whole files",
            )
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _WRITE_METHODS
        ):
            yield ctx.finding(
                "EFT003",
                node,
                f".{node.func.attr}(...) writes in place — use "
                "repro.utils.diskio.write_atomic so the destination is "
                "never half-written",
            )
