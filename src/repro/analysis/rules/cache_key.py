"""EFT001 — cache-key drift.

The caching architecture keys everything on three hand-maintained tuples:

* ``OfflineConfig.cache_fields()`` — the preparation-cache key,
* ``OnlineConfig.result_fields()`` — the result-determining online knobs,
* ``RunKey`` / ``PreparationKey`` dataclass fields folded into ``digest()``.

A config knob added without updating its key method makes two *different*
configurations share a cache entry: the store silently serves stale
records.  This rule machine-checks the invariant structurally, so the
check travels with the *shape* of the code, not with hard-coded paths:

1. any dataclass defining ``cache_fields`` / ``result_fields`` must fold
   **every** field into it — a field iterated via ``dataclasses.fields``
   counts as covered; a field deliberately excluded must carry an
   ``# effilint: disable=EFT001 -- reason`` pragma on its definition line
   (the machine-verified design decision);
2. any dataclass defining ``digest()`` must reference every field inside
   it (a key field that doesn't enter the digest names colliding files);
3. a ``build`` method that populates ``offline_fields`` /
   ``online_fields`` style members must derive them via ``cache_fields()``
   / ``result_fields()`` — not by open-coding a subset.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.registry import Finding, ModuleContext, Rule, register

#: method name -> the field-tuple contract it implements
KEY_METHODS = ("cache_fields", "result_fields")


def _is_dataclass(node: ast.ClassDef, ctx: ModuleContext) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        resolved = ctx.resolver.resolve(target)
        if resolved == "dataclasses.dataclass":
            return True
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> list[tuple[str, int]]:
    """(name, lineno) of every public annotated field of the class body."""
    fields: list[tuple[str, int]] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append((name, stmt.lineno))
    return fields


def _method(node: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == name:
            return stmt
    return None


def _self_attrs(func: ast.FunctionDef) -> set[str]:
    """Names accessed as ``self.<name>`` anywhere in the method."""
    out: set[str] = set()
    for sub in ast.walk(func):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            out.add(sub.attr)
    return out


def _iterates_all_fields(func: ast.FunctionDef, ctx: ModuleContext) -> bool:
    """True when the method folds ``dataclasses.fields(self)`` in."""
    for sub in ast.walk(func):
        if isinstance(sub, ast.Call):
            resolved = ctx.resolver.resolve_call(sub)
            if resolved == "dataclasses.fields":
                return True
            if isinstance(sub.func, ast.Name) and sub.func.id == "fields":
                return True
    return False


def _called_attrs(func: ast.FunctionDef) -> set[str]:
    """Attribute names invoked as calls anywhere in the method body."""
    out: set[str] = set()
    for sub in ast.walk(func):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            out.add(sub.func.attr)
    return out


#: ``build``-style member -> the config method that must produce it.
_BUILD_CONTRACTS = {
    "offline_fields": "cache_fields",
    "online_fields": "result_fields",
}


@register
class CacheKeyDrift(Rule):
    id = "EFT001"
    name = "cache-key-drift"
    summary = (
        "every config field must enter cache_fields()/result_fields()/digest() "
        "or carry an explicit exclusion pragma with a reason"
    )
    scope = None  # structural: applies to any file defining key dataclasses

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(node, ctx):
                continue
            fields = _dataclass_fields(node)
            if not fields:
                continue

            for method_name in KEY_METHODS:
                func = _method(node, method_name)
                if func is None:
                    continue
                if _iterates_all_fields(func, ctx):
                    continue  # tuple(getattr(self, f.name) for f in fields(self))
                covered = _self_attrs(func)
                for name, lineno in fields:
                    if name in covered:
                        continue
                    yield ctx.finding(
                        "EFT001",
                        lineno,
                        f"field '{name}' of {node.name} is not folded into "
                        f"{method_name}() — two configs differing only in "
                        f"'{name}' would share a cache key; add it to the "
                        "tuple or annotate the exclusion with "
                        "'# effilint: disable=EFT001 -- reason'",
                    )

            digest = _method(node, "digest")
            if digest is not None:
                covered = _self_attrs(digest)
                for name, lineno in fields:
                    if name in covered:
                        continue
                    yield ctx.finding(
                        "EFT001",
                        lineno,
                        f"field '{name}' of {node.name} does not enter "
                        "digest() — distinct keys would name the same "
                        "on-disk record",
                    )

            build = _method(node, "build")
            if build is not None:
                field_names = {name for name, _ in fields}
                called = _called_attrs(build)
                for member, producer in _BUILD_CONTRACTS.items():
                    if member in field_names and producer not in called:
                        yield ctx.finding(
                            "EFT001",
                            build.lineno,
                            f"{node.name}.build populates '{member}' without "
                            f"calling {producer}() — open-coding the key "
                            "tuple drifts from the config the first time a "
                            "knob is added",
                        )
