"""EFT002 — determinism: no ambient entropy, no wall clocks in result paths.

Every stochastic component takes an explicit seed or generator
(:mod:`repro.utils.rng`), and shard sampling is counter-based so any process
can materialize any shard bit-identically.  One stray ``random.random()``
or argument-less ``default_rng()`` breaks replay, cache identity and the
store's content addressing at once — and is invisible in review.

Flagged call sites (by canonical resolved name, so aliases and
``from``-imports are seen through):

* the stdlib ``random`` module (any attribute),
* ``numpy.random.seed`` (global-state seeding),
* ``numpy.random.default_rng()`` / ``numpy.random.SeedSequence()`` with
  **no arguments** — OS-entropy generators (seeded calls are fine),
* ``os.urandom``, ``uuid.uuid1``, ``uuid.uuid4``,
* wall clocks: ``time.time``, ``datetime.datetime.now`` / ``utcnow``,
  ``datetime.date.today`` (``time.monotonic`` / ``perf_counter`` are fine
  — durations are not identities).

Intentional sites (``canonical_seed``'s fresh-entropy branch, lease-file
mtimes, daemon uptime) carry ``# effilint: disable=EFT002 -- reason``
pragmas; the pragma is the audit trail.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.registry import Finding, ModuleContext, Rule, register

#: Always flagged, regardless of arguments.
_BANNED = {
    "numpy.random.seed": "seeds numpy's *global* RNG — pass an explicit Generator",
    "os.urandom": "raw OS entropy is unreplayable",
    "uuid.uuid1": "uuid1 mixes host clock and MAC — unreplayable identity",
    "uuid.uuid4": "uuid4 draws OS entropy — unreplayable identity",
    "time.time": "wall-clock reads differ across runs and machines",
    "datetime.datetime.now": "wall-clock reads differ across runs and machines",
    "datetime.datetime.utcnow": "wall-clock reads differ across runs and machines",
    "datetime.date.today": "wall-clock reads differ across runs and machines",
}

#: Flagged only when called with no arguments (no seed -> OS entropy).
_BANNED_ARGLESS = {
    "numpy.random.default_rng": "argument-less default_rng() draws OS entropy",
    "numpy.random.SeedSequence": "argument-less SeedSequence() draws OS entropy",
}


@register
class Determinism(Rule):
    id = "EFT002"
    name = "determinism"
    summary = (
        "no stdlib random, global numpy seeding, argument-less RNG "
        "construction, OS entropy, or wall-clock calls outside annotated sites"
    )
    scope = None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolver.resolve_call(node)
            if resolved is None:
                continue
            if resolved.startswith("random.") and resolved.count(".") == 1:
                yield ctx.finding(
                    "EFT002",
                    node,
                    f"call to stdlib {resolved}() — the global random module "
                    "is unseeded shared state; use repro.utils.rng with an "
                    "explicit seed",
                )
                continue
            if resolved in _BANNED:
                yield ctx.finding(
                    "EFT002",
                    node,
                    f"call to {resolved}(): {_BANNED[resolved]}",
                )
                continue
            if (
                resolved in _BANNED_ARGLESS
                and not node.args
                and not node.keywords
            ):
                yield ctx.finding(
                    "EFT002",
                    node,
                    f"{resolved}() called without a seed: "
                    f"{_BANNED_ARGLESS[resolved]}; thread a seed through "
                    "repro.utils.rng instead",
                )
