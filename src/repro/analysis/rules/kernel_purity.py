"""EFT005 — kernel purity in the relaxation hot path.

The vectorized configure/verify stack (:mod:`repro.opt.diffconstraints`,
:mod:`repro.core.configuration`) is pinned **bit-identical** to the
retained reference kernel.  Two classes of edit silently break that pin
while passing every shape check:

* **in-place mutation of function parameters** — a kernel that scribbles
  on its caller's arrays (``weights[...] = ...``, ``np.minimum(...,
  out=dist)`` on a parameter, ``param.sort()``) corrupts the caller's
  state across binary-search steps and across the A/B reference runs; the
  sanctioned pattern is writing into *preallocated buffers the function
  owns* (``self._wbuf``, locals, or parameters that are explicitly part of
  the buffer seam: named ``out``/``buf`` or ``*_out``/``*_buf``);
* **dtype-narrowing** — a stray ``.astype(np.float32)`` or
  ``dtype=np.float32`` halves precision on one side of the A/B pin and
  shifts epsilon-threshold comparisons; the kernels are float64 end to
  end.

Scoped to the two kernel modules; fixture-covered elsewhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.registry import Finding, ModuleContext, Rule, register

#: ndarray methods that mutate their receiver in place.
_MUTATORS = {"fill", "sort", "partition", "put", "resize", "setfield", "itemset"}

#: Parameter names that *are* the preallocated-buffer seam.
_SEAM_NAMES = {"out", "buf"}
_SEAM_SUFFIXES = ("_out", "_buf")

#: Narrow dtypes (canonical resolved names and literal spellings).
_NARROW = {
    "numpy.float16",
    "numpy.float32",
    "numpy.int8",
    "numpy.int16",
    "numpy.int32",
    "numpy.uint8",
    "numpy.uint16",
    "numpy.uint32",
    "numpy.half",
    "numpy.single",
}
_NARROW_LITERALS = {name.split(".")[1] for name in _NARROW} | {"f2", "f4", "i1", "i2", "i4"}


def _is_seam(name: str) -> bool:
    return name in _SEAM_NAMES or name.endswith(_SEAM_SUFFIXES)


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = func.args
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return {n for n in names if n not in ("self", "cls") and not _is_seam(n)}


def _subscript_base(node: ast.expr) -> ast.expr:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _narrow_dtype(node: ast.expr, ctx: ModuleContext) -> str | None:
    """The narrow dtype a node names, or ``None``."""
    resolved = ctx.resolver.resolve(node)
    if resolved in _NARROW:
        return resolved
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value.lower().lstrip("<>=") in _NARROW_LITERALS:
            return node.value
    return None


@register
class KernelPurity(Rule):
    id = "EFT005"
    name = "kernel-purity"
    summary = (
        "kernel functions must not mutate caller arrays in place (outside "
        "the out=/buf= seam) or narrow dtypes below float64"
    )
    scope = (
        "*/opt/diffconstraints.py",
        "*/core/configuration.py",
        "*/core/criticality.py",
        "*/kernels/*.py",
        "*/tester/freqstep.py",
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_dtype(ctx, node)

    def _check_function(
        self, ctx: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        params = _param_names(func)
        if not params:
            return
        # Rebinding (`lower = np.asarray(lower)`) is pure and severs the
        # alias; only *mutations* of a still-parameter-bound name count.
        rebound: set[str] = set()
        for sub in ast.walk(func):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, ast.Name) and target.id in params:
                        rebound.add(target.id)
            elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                if sub.target.id in params:
                    rebound.add(sub.target.id)
        live = params - rebound

        for sub in ast.walk(func):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not func:
                continue  # nested functions are visited on their own
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    elements = (
                        target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for element in elements:
                        if isinstance(element, ast.Subscript):
                            base = _subscript_base(element)
                            if isinstance(base, ast.Name) and base.id in live:
                                yield ctx.finding(
                                    "EFT005",
                                    sub,
                                    f"in-place write into parameter "
                                    f"'{base.id}' — the kernel scribbles on "
                                    "its caller's array; copy first or route "
                                    "through a preallocated out=/buf= seam "
                                    "parameter",
                                )
                        elif (
                            isinstance(sub, ast.AugAssign)
                            and isinstance(element, ast.Name)
                            and element.id in live
                        ):
                            yield ctx.finding(
                                "EFT005",
                                sub,
                                f"augmented assignment mutates parameter "
                                f"'{element.id}' in place for array "
                                "arguments — rebind the result of a pure "
                                "operation instead",
                            )
            elif isinstance(sub, ast.Call):
                for keyword in sub.keywords:
                    if keyword.arg == "out":
                        base = _subscript_base(keyword.value)
                        if isinstance(base, ast.Name) and base.id in live:
                            yield ctx.finding(
                                "EFT005",
                                sub,
                                f"out= targets parameter '{base.id}' — the "
                                "caller's array is overwritten; preallocate "
                                "a buffer the kernel owns (or name the "
                                "parameter as the seam: out/buf/*_out/*_buf)",
                            )
                if isinstance(sub.func, ast.Attribute) and sub.func.attr in _MUTATORS:
                    receiver = sub.func.value
                    if isinstance(receiver, ast.Name) and receiver.id in live:
                        yield ctx.finding(
                            "EFT005",
                            sub,
                            f".{sub.func.attr}() mutates parameter "
                            f"'{receiver.id}' in place — operate on a copy",
                        )

    def _check_dtype(self, ctx: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            for arg in (*node.args, *[k.value for k in node.keywords if k.arg == "dtype"]):
                narrow = _narrow_dtype(arg, ctx)
                if narrow is not None:
                    yield ctx.finding(
                        "EFT005",
                        node,
                        f".astype({narrow}) narrows precision in the kernel "
                        "path — the A/B bit-identity pin against the "
                        "reference kernel requires float64 end to end",
                    )
            return
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                narrow = _narrow_dtype(keyword.value, ctx)
                if narrow is not None:
                    yield ctx.finding(
                        "EFT005",
                        node,
                        f"dtype={narrow} narrows precision in the kernel "
                        "path — the bit-identity pin requires float64",
                    )
