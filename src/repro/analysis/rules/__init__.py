"""Rule modules; importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401 - registration side effects
    cache_key,
    determinism,
    kernel_purity,
    leases,
    store_writes,
)
