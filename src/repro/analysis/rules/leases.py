"""EFT004 — lease and lock discipline.

The cross-process safety story rests on three usage contracts around
:mod:`repro.utils.diskio` and :meth:`repro.results.RunStore.lease`:

1. **``try_acquire_lock`` results must be consumed.**  The call *is* the
   acquisition — discarding the boolean means the caller proceeds whether
   or not it holds the lease (and leaks the file when it does).
2. **``file_lock`` / ``RunStore.lease`` only via ``with``.**  Both are
   context managers; calling one without entering it acquires nothing (a
   generator context manager runs no code until ``__enter__``) while
   *looking* locked — the worst kind of bug.
3. **Store writes vs. the lease, in the daemon.**  ``RunStore.store``
   re-acquires the key lease internally, so calling it *inside* a ``with
   store.lease(key)`` block deadlocks until the timeout and then skips the
   write; the caller-holds-the-lease variant ``store_under_lease`` exists
   for exactly that position — and conversely must only run where the
   lease is actually held (lexically inside the ``with``, or pragma'd with
   the holding caller named in the reason).

``lease`` is matched only on store-shaped receivers (``...store.lease`` or
``self.lease`` inside a ``*Store`` class) so unrelated methods that happen
to be called ``lease`` — the coalescing table's in-process one — stay out
of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.registry import Finding, ModuleContext, Rule, register


def _is_store_lease_call(node: ast.Call, class_stack: list[str]) -> bool:
    """``<store-shaped receiver>.lease(...)``?"""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "lease":
        return False
    receiver = func.value
    if isinstance(receiver, ast.Name):
        if receiver.id == "self":
            return any("store" in name.lower() for name in class_stack)
        return "store" in receiver.id.lower()
    if isinstance(receiver, ast.Attribute):
        return "store" in receiver.attr.lower()
    return False


def _is_file_lock_call(node: ast.Call, ctx: ModuleContext) -> bool:
    resolved = ctx.resolver.resolve_call(node)
    if resolved is not None:
        return resolved.split(".")[-1] == "file_lock"
    func = node.func
    return isinstance(func, ast.Attribute) and func.attr == "file_lock"


def _is_try_acquire_call(node: ast.Call, ctx: ModuleContext) -> bool:
    resolved = ctx.resolver.resolve_call(node)
    if resolved is not None and resolved.split(".")[-1] == "try_acquire_lock":
        return True
    func = node.func
    return isinstance(func, ast.Attribute) and func.attr == "try_acquire_lock"


@register
class LeaseDiscipline(Rule):
    id = "EFT004"
    name = "lease-discipline"
    summary = (
        "try_acquire_lock results consumed; file_lock/store.lease only via "
        "'with'; store() vs store_under_lease() matched to lease position"
    )
    scope = (
        "*/results/*.py",
        "*/api/cache.py",
        "*/service/*.py",
        "*/utils/diskio.py",
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        with_items: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.add(id(item.context_expr))
        yield from self._visit(ctx, ctx.tree, with_items, [], in_lease_with=False)

    def _visit(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        with_items: set[int],
        class_stack: list[str],
        in_lease_with: bool,
    ) -> Iterator[Finding]:
        if isinstance(node, ast.ClassDef):
            class_stack = [*class_stack, node.name]

        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            if _is_try_acquire_call(node.value, ctx):
                yield ctx.finding(
                    "EFT004",
                    node,
                    "try_acquire_lock(...) result discarded — the caller "
                    "cannot know whether it holds the lease (and leaks the "
                    "lock file when it does); branch on the result and "
                    "release_lock() on the held path",
                )

        if isinstance(node, ast.Call) and id(node) not in with_items:
            if _is_file_lock_call(node, ctx):
                yield ctx.finding(
                    "EFT004",
                    node,
                    "file_lock(...) called outside a 'with' block — a "
                    "generator context manager acquires nothing until "
                    "__enter__, so this looks locked but is not",
                )
            elif _is_store_lease_call(node, class_stack):
                yield ctx.finding(
                    "EFT004",
                    node,
                    "store lease(...) called outside a 'with' block — the "
                    "lease is only held inside the context",
                )

        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "store_under_lease" and not in_lease_with:
                yield ctx.finding(
                    "EFT004",
                    node,
                    "store_under_lease(...) outside a 'with ...lease(...)' "
                    "block — this variant *assumes* the caller holds the "
                    "key lease; hold it here, or pragma the call naming the "
                    "holding caller",
                )
            if (
                node.func.attr == "store"
                and in_lease_with
                and isinstance(node.func.value, ast.Attribute)
                and "store" in node.func.value.attr.lower()
            ):
                yield ctx.finding(
                    "EFT004",
                    node,
                    "RunStore.store(...) inside a 'with ...lease(...)' "
                    "block — store() re-acquires the key lease internally "
                    "and the lease file is not reentrant (it stalls until "
                    "the timeout, then skips the write); use "
                    "store_under_lease() here",
                )

        if isinstance(node, (ast.With, ast.AsyncWith)):
            enters_lease = in_lease_with or any(
                isinstance(item.context_expr, ast.Call)
                and (
                    _is_store_lease_call(item.context_expr, class_stack)
                    or _is_file_lock_call(item.context_expr, ctx)
                )
                for item in node.items
            )
            for item in node.items:
                yield from self._visit(
                    ctx, item.context_expr, with_items, class_stack, in_lease_with
                )
                if item.optional_vars is not None:
                    yield from self._visit(
                        ctx, item.optional_vars, with_items, class_stack, in_lease_with
                    )
            for stmt in node.body:
                yield from self._visit(
                    ctx, stmt, with_items, class_stack, enters_lease
                )
            return

        # A nested function does not inherit the lexical lease context: it
        # may run long after the 'with' block exited.
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            in_lease_with = False

        for child in ast.iter_child_nodes(node):
            yield from self._visit(ctx, child, with_items, class_stack, in_lease_with)
