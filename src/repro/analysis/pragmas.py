"""Per-line suppression pragmas: ``# effilint: disable=RULE -- reason``.

Grammar (one comment, same line as the finding or a standalone comment line
directly above it)::

    # effilint: disable=EFT001 -- why this exclusion is intentional
    # effilint: disable=EFT002,EFT003 -- one reason covering both

The ``-- reason`` part is **mandatory**: a pragma is a machine-checked
design decision, and a decision without a recorded rationale is exactly the
silent drift this tool exists to prevent.  A pragma with no reason, an
empty reason, or an unknown rule id is itself reported as **EFT000**
(which cannot be disabled).

Pragmas are parsed from the token stream (:mod:`tokenize`), never from the
AST, so they work on any line — including lines whose statement spans
multiple physical lines (the pragma goes on the physical line the finding
is anchored to, i.e. where the offending call starts).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

__all__ = ["Pragma", "PragmaSet", "parse_pragmas"]

#: Anything that looks like an effilint pragma comment (validated further).
_PRAGMA_RE = re.compile(r"#\s*effilint\s*:\s*(?P<body>.*)$")
#: The well-formed body: disable=IDS [-- reason]
_BODY_RE = re.compile(
    r"^disable\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+?)\s*(?:--\s*(?P<reason>.*))?$"
)
_ID_RE = re.compile(r"^EFT\d{3}$")


@dataclass(frozen=True)
class Pragma:
    """One parsed pragma comment."""

    line: int  # physical line of the comment (1-based)
    rules: frozenset[str]
    reason: str
    standalone: bool  # comment-only line: applies to the next code line
    error: str | None = None  # malformed: why (rules/reason best-effort)


def _parse_comment(text: str, line: int, standalone: bool) -> Pragma | None:
    match = _PRAGMA_RE.search(text)
    if match is None:
        return None
    body = match.group("body").strip()
    parsed = _BODY_RE.match(body)
    if parsed is None:
        return Pragma(
            line,
            frozenset(),
            "",
            standalone,
            error=f"malformed pragma {body!r} (expected 'disable=EFTnnn -- reason')",
        )
    ids = frozenset(part.strip() for part in parsed.group("ids").split(",") if part.strip())
    reason = (parsed.group("reason") or "").strip()
    bad = sorted(rule for rule in ids if not _ID_RE.match(rule))
    if bad:
        return Pragma(
            line, ids, reason, standalone, error=f"unknown rule id(s) {', '.join(bad)}"
        )
    if not reason:
        return Pragma(
            line,
            ids,
            reason,
            standalone,
            error="pragma has no reason (append ' -- why this is intentional')",
        )
    return Pragma(line, ids, reason, standalone)


class PragmaSet:
    """All pragmas of one module, indexed by the code line they cover."""

    def __init__(self, pragmas: list[Pragma]):
        self.pragmas = pragmas
        self._by_line: dict[int, set[str]] = {}
        for pragma in pragmas:
            if pragma.error is not None:
                continue
            target = pragma.line + 1 if pragma.standalone else pragma.line
            self._by_line.setdefault(target, set()).update(pragma.rules)

    def disabled_at(self, line: int) -> set[str]:
        """Rule ids suppressed on the given 1-based code line."""
        return self._by_line.get(line, set())

    def suppresses(self, rule: str, line: int) -> bool:
        return rule in self.disabled_at(line)

    @property
    def malformed(self) -> list[Pragma]:
        return [pragma for pragma in self.pragmas if pragma.error is not None]


def parse_pragmas(source: str) -> PragmaSet:
    """Scan ``source`` for effilint pragma comments.

    Tolerates files :mod:`tokenize` rejects (the engine reports the syntax
    error separately) by falling back to a line-based scan.
    """
    pragmas: list[Pragma] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            stripped = text.strip()
            if not stripped.startswith("#"):
                continue
            pragma = _parse_comment(stripped, lineno, standalone=True)
            if pragma is not None:
                pragmas.append(pragma)
        return PragmaSet(pragmas)

    code_lines: set[int] = set()
    comments: list[tuple[int, str]] = []
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comments.append((token.start[0], token.string))
        elif token.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
            tokenize.ENCODING,
        ):
            for lineno in range(token.start[0], token.end[0] + 1):
                code_lines.add(lineno)
    for lineno, text in comments:
        pragma = _parse_comment(text, lineno, standalone=lineno not in code_lines)
        if pragma is not None:
            pragmas.append(pragma)
    return PragmaSet(pragmas)
