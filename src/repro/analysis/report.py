"""Text and JSON reporters for analysis results."""

from __future__ import annotations

import json
from typing import IO

from repro.analysis.engine import AnalysisResult
from repro.analysis.registry import Finding, all_rules

__all__ = ["render_json", "render_text"]


def render_text(
    result: AnalysisResult,
    new_findings: list[Finding],
    baselined: list[Finding],
    stale: list[str],
    stream: IO[str],
    verbose: bool = False,
) -> None:
    """Human-oriented report: one line per finding plus a summary."""
    for finding in new_findings:
        stream.write(finding.format() + "\n")
        text = result.line_text(finding.path, finding.line).strip()
        if text:
            stream.write(f"    | {text}\n")
    if verbose and baselined:
        stream.write("\nbaselined (suppressed by the baseline file):\n")
        for finding in baselined:
            stream.write("  " + finding.format() + "\n")
    if verbose and result.suppressed:
        stream.write("\npragma-suppressed:\n")
        for finding, reason in result.suppressed:
            stream.write(f"  {finding.format()}  [{reason}]\n")
    for fingerprint in stale:
        stream.write(
            f"stale baseline entry {fingerprint}: finding no longer fires — "
            "regenerate the baseline with --write-baseline (the ratchet "
            "requires the file to shrink)\n"
        )
    stream.write(
        f"effilint: {result.n_files} files, "
        f"{len(new_findings)} finding(s), "
        f"{len(baselined)} baselined, "
        f"{len(result.suppressed)} pragma-suppressed, "
        f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}\n"
    )


def render_json(
    result: AnalysisResult,
    new_findings: list[Finding],
    baselined: list[Finding],
    stale: list[str],
    stream: IO[str],
    verbose: bool = False,
) -> None:
    """Machine-oriented report: everything text reports, as one object."""

    def encode(finding: Finding) -> dict:
        return {
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "rule": finding.rule,
            "message": finding.message,
        }

    payload = {
        "files": result.n_files,
        "rules": {rule.id: rule.summary for rule in all_rules()},
        "findings": [encode(f) for f in new_findings],
        "baselined": [encode(f) for f in baselined],
        "suppressed": [
            {**encode(f), "reason": reason} for f, reason in result.suppressed
        ],
        "stale_baseline": list(stale),
    }
    json.dump(payload, stream, indent=1)
    stream.write("\n")
