"""effilint — the project-invariant static analyzer.

The PR 3–6 architecture (content-addressed :class:`~repro.api.cache.PreparationCache`,
:class:`~repro.results.RunStore` records, RunKey request coalescing) is only
sound if a handful of hand-maintained invariants hold:

* every result-affecting config knob appears in ``cache_fields()`` /
  ``result_fields()`` / the ``RunKey`` digest (**EFT001**),
* every sampling path uses seeded, counter-based RNG — no ambient entropy,
  no wall clocks in result paths (**EFT002**),
* every store-directory write goes through the :mod:`repro.utils.diskio`
  atomic helpers (**EFT003**),
* lease files are consumed and held correctly (**EFT004**),
* the relaxation kernels stay pure outside the preallocated-buffer seam
  (**EFT005**).

None of these is enforced by the type system or by generic linters; one
forgotten field in ``OnlineConfig.result_fields()`` silently serves stale
records.  This package is an AST-based rule engine that machine-checks
them: a shared parse + import-resolution pass (:mod:`repro.analysis.resolve`),
a rule registry (:mod:`repro.analysis.registry`), per-line
``# effilint: disable=RULE -- reason`` pragmas (:mod:`repro.analysis.pragmas`),
a shrink-only JSON baseline (:mod:`repro.analysis.baseline`) and text/JSON
reporters (:mod:`repro.analysis.report`).

Run it as ``python -m repro.analysis [paths...]`` (installed alias:
``effilint``).  Exit code 0 means no new findings, 1 means findings (or a
stale baseline entry — the ratchet), 2 means usage error.  See
``docs/analysis.md`` for the rule catalog and the pragma/baseline workflow.

The package is deliberately stdlib-only (``ast`` + ``tokenize``), so the
lint runs anywhere a bare Python runs.
"""

from repro.analysis.engine import AnalysisResult, analyze_paths, build_context
from repro.analysis.registry import Finding, ModuleContext, Rule, all_rules, get_rule

__all__ = [
    "AnalysisResult",
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "analyze_paths",
    "build_context",
    "get_rule",
]
