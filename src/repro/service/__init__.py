"""The serving layer: a long-lived EffiTest daemon over the RunStore.

Batch experiments (:mod:`repro.experiments`) pay for every scenario when
the sweep runs; this package serves scenarios *on request*, continuously,
from one persistent workspace.  Three tiers, in order:

1. **store** — the :class:`~repro.results.RunStore` record already
   exists: load it (zero offline/online work),
2. **inflight** — the same :class:`~repro.results.store.RunKey` is being
   computed right now: attach and stream the same shards
   (:mod:`repro.service.coalesce` — N concurrent duplicates, one engine
   run),
3. **miss** — compute on a persistent worker pool whose
   :class:`~repro.api.cache.PreparationCache` stays warm across requests.

Entry points:

* :class:`~repro.service.daemon.EffiTestDaemon` /
  :class:`~repro.service.daemon.ServiceCore` — the server
  (``python -m repro.service serve`` / ``jobs``),
* :class:`~repro.service.client.ServiceClient` — the stdlib HTTP client,
* :mod:`repro.service.protocol` — the strict-JSON wire schema shared by
  both.
"""

from repro.service.client import ServiceClient, ServiceError, ServiceResult
from repro.service.coalesce import (
    CoalesceStats,
    CoalescingTable,
    InFlightRun,
    RunFailed,
)
from repro.service.daemon import EffiTestDaemon, ServiceCore
from repro.service.protocol import (
    PROTOCOL_VERSION,
    TIER_INFLIGHT,
    TIER_MISS,
    TIER_STORE,
    CircuitRegistry,
    ProtocolError,
    RunRequest,
)

__all__ = [
    "PROTOCOL_VERSION",
    "CircuitRegistry",
    "CoalesceStats",
    "CoalescingTable",
    "EffiTestDaemon",
    "InFlightRun",
    "ProtocolError",
    "RunFailed",
    "RunRequest",
    "ServiceClient",
    "ServiceCore",
    "ServiceError",
    "ServiceResult",
    "TIER_INFLIGHT",
    "TIER_MISS",
    "TIER_STORE",
]
