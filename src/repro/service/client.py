"""Client for the EffiTest daemon: stream events, reassemble summaries.

Stdlib-only (:mod:`http.client`), matching the daemon's stdlib-only server.
:meth:`ServiceClient.run` is the high-level call — POST the request, read
the ndjson event stream as the daemon flushes it, decode the shard
summaries and merge them with
:func:`~repro.core.reduction.merge_run_summaries`, exactly like the
engine's own shard reduction — so a streamed run reassembles
bit-identically to a local one.  :meth:`ServiceClient.stream` exposes the
raw event iterator for callers that want per-shard progress (first shard
statistics arrive while later shards still compute).

One connection per request; a client object is cheap and *not* shared
across threads (concurrent load generators build one client per thread).
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.core.reduction import merge_run_summaries
from repro.service.protocol import (
    EVENT_ACCEPTED,
    EVENT_DONE,
    EVENT_ERROR,
    EVENT_SHARD,
    RunRequest,
    decode_event,
    decode_summary,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.reduction import RunSummary


class ServiceError(RuntimeError):
    """The daemon refused or failed the request (terminal error event)."""


@dataclass(frozen=True)
class ServiceResult:
    """One completed run as seen from the client side."""

    tier: str
    digest: str
    summary: "RunSummary"
    n_shards: int
    offline_seconds: float
    elapsed_seconds: float

    @property
    def coalesced(self) -> bool:
        """True when this request attached to another's computation."""
        return self.tier == "inflight"


class ServiceClient:
    """Talks to one :class:`~repro.service.daemon.EffiTestDaemon`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8940, timeout: float = 300.0
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _json_call(self, method: str, path: str) -> dict:
        conn = self._connect()
        try:
            conn.request(method, path)
            response = conn.getresponse()
            payload = json.loads(response.read())
            if response.status != 200:
                raise ServiceError(
                    payload.get("error", f"HTTP {response.status} on {path}")
                )
            return payload
        finally:
            conn.close()

    def healthy(self) -> bool:
        """True when the daemon answers ``/healthz``."""
        try:
            return bool(self._json_call("GET", "/healthz").get("ok"))
        except (OSError, ServiceError, ValueError):
            return False

    def stats(self) -> dict:
        """The daemon's ``/stats`` payload (tiers, coalescing, warmth)."""
        return self._json_call("GET", "/stats")

    def shutdown(self) -> None:
        """Ask the daemon to stop serving (it drains and exits)."""
        self._json_call("POST", "/shutdown")

    def stream(self, request: RunRequest | dict) -> Iterator[dict]:
        """POST one request; yield protocol events as the daemon sends them.

        The stream is lazy end to end — each ``shard`` event is yielded as
        its chunk arrives, while the daemon is still computing later
        shards.  A non-200 response (schema violation) raises
        :class:`ServiceError` before the first event.
        """
        payload = (
            request.to_json() if isinstance(request, RunRequest) else request
        )
        body = json.dumps(payload, allow_nan=False).encode()
        conn = self._connect()
        try:
            conn.request(
                "POST",
                "/run",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    message = json.loads(raw).get("error", raw.decode())
                except ValueError:
                    message = raw.decode(errors="replace")
                raise ServiceError(message)
            while True:
                line = response.readline()
                if not line:
                    return
                yield decode_event(line)
        finally:
            conn.close()

    def run(self, request: RunRequest | dict) -> ServiceResult:
        """Execute one request and reassemble the merged summary.

        Raises :class:`ServiceError` on a terminal ``error`` event (a
        failed run propagates the leader's failure to every coalesced
        client) or a truncated stream.
        """
        tier = digest = None
        shards: list["RunSummary"] = []
        done: dict | None = None
        for event in self.stream(request):
            name = event["event"]
            if name == EVENT_ACCEPTED:
                tier = event["tier"]
                digest = event["digest"]
            elif name == EVENT_SHARD:
                shards.append(decode_summary(event["summary"]))
            elif name == EVENT_ERROR:
                raise ServiceError(event.get("error", "run failed"))
            elif name == EVENT_DONE:
                done = event
        if done is None or tier is None or digest is None or not shards:
            raise ServiceError(
                "stream ended without a terminal done event (daemon died?)"
            )
        summary = (
            shards[0] if len(shards) == 1 else merge_run_summaries(shards)
        )
        return ServiceResult(
            tier=tier,
            digest=digest,
            summary=summary,
            n_shards=int(done["n_shards"]),
            offline_seconds=float(done["offline_seconds"]),
            elapsed_seconds=float(done["elapsed_seconds"]),
        )


__all__ = ["ServiceClient", "ServiceError", "ServiceResult"]
