"""Command-line entry points of the EffiTest service.

Usage::

    python -m repro.service serve [--root DIR] [--host H] [--port P]
                                  [--workers N] [--verbose]
    python -m repro.service jobs  [--root DIR] [--workers N]
                                  [--input FILE] [--output FILE]

``serve`` runs the long-lived HTTP daemon; ``jobs`` is the queue mode —
one JSON request per input line (default stdin), protocol events streamed
as JSON lines to the output (default stdout), each tagged with the
zero-based ``job`` index of the request it answers.  Duplicate requests in
a job file coalesce exactly like concurrent HTTP requests do: the store
tier answers repeats of anything already computed.

Both modes share the experiment runner's workspace layout
(:func:`repro.results.store.store_layout`): point ``--root`` at an
existing ``.effitest-store`` and the daemon serves the records your batch
sweeps already computed.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api import Engine
from repro.results.store import RunStore, store_layout
from repro.service.daemon import EffiTestDaemon, ServiceCore

#: The experiment runner's default workspace, shared deliberately.
DEFAULT_ROOT = ".effitest-store"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve EffiTest scenario runs from a persistent store.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--root",
            default=DEFAULT_ROOT,
            help="workspace directory: run store + preparation cache "
            f"(default: {DEFAULT_ROOT})",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=2,
            help="persistent computation threads (default: 2)",
        )

    serve = commands.add_parser("serve", help="run the HTTP daemon")
    common(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8940,
        help="listen port; 0 binds an ephemeral one (default: 8940)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )

    jobs = commands.add_parser(
        "jobs", help="answer a queue of JSON-line requests"
    )
    common(jobs)
    jobs.add_argument(
        "--input",
        default="-",
        help="request file, one JSON object per line (default: stdin)",
    )
    jobs.add_argument(
        "--output",
        default="-",
        help="event destination, JSON lines (default: stdout)",
    )
    return parser


def build_core(root: str, workers: int) -> ServiceCore:
    """A service core on the shared workspace layout under ``root``."""
    runs, preparations = store_layout(root)
    return ServiceCore(
        RunStore(runs),
        engine=Engine(cache_dir=preparations),
        n_workers=workers,
    )


def run_serve(args: argparse.Namespace) -> int:
    core = build_core(args.root, args.workers)
    daemon = EffiTestDaemon(
        core, host=args.host, port=args.port, verbose=args.verbose
    )
    host, port = daemon.address
    print(
        f"effitest daemon on http://{host}:{port} "
        f"(store: {args.root}, workers: {args.workers})",
        file=sys.stderr,
        flush=True,
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.server.server_close()
        core.close()
    return 0


def run_jobs(args: argparse.Namespace) -> int:
    core = build_core(args.root, args.workers)
    source = (
        sys.stdin if args.input == "-" else open(args.input, encoding="utf-8")
    )
    sink = (
        sys.stdout
        if args.output == "-"
        # effilint: disable=EFT003 -- contractually append-only event stream: each result line is flushed as it lands so `tail -f` followers see progress live; an atomic tempfile+rename would hide every event until exit
        else open(args.output, "w", encoding="utf-8")
    )
    failed = 0
    try:
        job = 0
        for line in source:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                payload = json.loads(line)
            except ValueError as exc:
                payload = None
                error = f"malformed request line: {exc}"
            if payload is None:
                events = iter(({"event": "error", "error": error, "kind": "protocol"},))
            else:
                events = core.handle(payload)
            for event in events:
                if event.get("event") == "error":
                    failed += 1
                sink.write(json.dumps({"job": job, **event}, allow_nan=False))
                sink.write("\n")
                sink.flush()
            job += 1
    finally:
        if source is not sys.stdin:
            source.close()
        if sink is not sys.stdout:
            sink.close()
        core.close()
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return run_serve(args)
    return run_jobs(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
