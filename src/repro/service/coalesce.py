"""RunKey request coalescing: N concurrent requests, one computation.

The serving layer's middle tier.  The first request for a
:class:`~repro.results.store.RunKey` becomes the *leader* — it computes
the run; every request arriving while that computation is in flight
becomes a *follower* and attaches to the same :class:`InFlightRun`.  The
entry is a broadcast log of reduced shard summaries: the leader publishes
each shard as the pipeline finishes it, and every watcher (leader's own
response stream included) replays the log and then follows the live tail,
so followers stream results at the same cadence as the leader instead of
waiting for the end.

Lifecycle contract (what the tests pin):

* exactly one leader per key at a time — N concurrent requests for one
  key run the engine once,
* every watcher sees the identical shard sequence, so client-side merges
  are bit-identical across all N responses,
* a failed run propagates its exception to *every* watcher, and the entry
  is evicted **before** watchers are woken — a retry after a failure
  always recomputes (failures are never cached),
* a finished entry is evicted too: the next request for the key is served
  from the :class:`~repro.results.RunStore` the leader just wrote.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.reduction import RunSummary


class RunFailed(RuntimeError):
    """The leader's computation raised; re-raised to every follower."""


@dataclass(frozen=True)
class CoalesceStats:
    """Counters exposed for tests and the daemon's ``/stats`` endpoint."""

    leaders: int
    followers: int
    failures: int

    @property
    def requests(self) -> int:
        return self.leaders + self.followers

    @property
    def coalesced_fraction(self) -> float:
        """Fraction of requests that attached instead of computing."""
        return self.followers / self.requests if self.requests else 0.0


class InFlightRun:
    """Broadcast log of one in-flight computation, keyed by digest.

    The leader appends via :meth:`publish` and terminates with
    :meth:`finish` or :meth:`fail`; any number of threads iterate
    :meth:`watch` concurrently.  Publishing after termination is a
    programming error and raises.
    """

    def __init__(self, digest: str):
        self.digest = digest
        #: The leader's offline-stage cost, set before the first publish;
        #: watchers report it in their terminal ``done`` event.
        self.offline_seconds = 0.0
        self._cond = threading.Condition()
        self._shards: list["RunSummary"] = []
        self._done = False
        self._error: BaseException | None = None

    def publish(self, shard: "RunSummary") -> None:
        with self._cond:
            if self._done:
                raise RuntimeError("publish() after the run terminated")
            self._shards.append(shard)
            self._cond.notify_all()

    def finish(self) -> None:
        with self._cond:
            self._done = True
            self._cond.notify_all()

    def fail(self, error: BaseException) -> None:
        with self._cond:
            self._error = error
            self._done = True
            self._cond.notify_all()

    @property
    def failed(self) -> bool:
        with self._cond:
            return self._error is not None

    def watch(self) -> Iterator["RunSummary"]:
        """Yield every shard, replay-then-follow; raise if the run failed.

        Shards already published are yielded immediately; the live tail
        blocks until the leader publishes or terminates.  On failure the
        original exception is wrapped in :class:`RunFailed` (each watcher
        gets its own raise site; the leader's traceback is the cause).
        """
        index = 0
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: len(self._shards) > index or self._done
                )
                shards = self._shards[index:]
                done = self._done and len(self._shards) == index + len(shards)
                error = self._error
            for shard in shards:  # yield outside the lock
                yield shard
                index += 1
            if done:
                if error is not None:
                    raise RunFailed(
                        f"in-flight run {self.digest[:12]} failed: {error}"
                    ) from error
                return

    def summaries(self) -> list["RunSummary"]:
        """Block until termination; all shards (or raise on failure)."""
        return list(self.watch())


class CoalescingTable:
    """The in-flight tier: digest → :class:`InFlightRun`, with leases.

    :meth:`lease` is the only admission point: it returns the entry plus
    whether the caller leads it.  Entries leave the table through
    :meth:`complete` — called by the leader exactly once, *before* the
    entry's watchers are released, so the eviction-before-wakeup ordering
    (retries after failures recompute; successes fall through to the
    store) holds by construction.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, InFlightRun] = {}
        self._leaders = 0
        self._followers = 0
        self._failures = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CoalesceStats:
        with self._lock:
            return CoalesceStats(
                leaders=self._leaders,
                followers=self._followers,
                failures=self._failures,
            )

    def lease(self, digest: str) -> tuple[InFlightRun, bool]:
        """Join (or start) the in-flight run for ``digest``.

        Returns ``(entry, leader)``: the first caller for a digest leads
        and must eventually :meth:`complete` the entry; later callers
        follow and just :meth:`InFlightRun.watch` it.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self._followers += 1
                return entry, False
            entry = InFlightRun(digest)
            self._entries[digest] = entry
            self._leaders += 1
            return entry, True

    def complete(
        self, entry: InFlightRun, error: BaseException | None = None
    ) -> None:
        """Evict ``entry`` and terminate it (leader-only; call once).

        The table slot is released *before* watchers wake: any request
        arriving after this point starts fresh — from the store on
        success, recomputing on failure.
        """
        with self._lock:
            if self._entries.get(entry.digest) is entry:
                del self._entries[entry.digest]
            if error is not None:
                self._failures += 1
        if error is not None:
            entry.fail(error)
        else:
            entry.finish()


__all__ = [
    "CoalesceStats",
    "CoalescingTable",
    "InFlightRun",
    "RunFailed",
]
