"""The long-lived EffiTest daemon: three serving tiers over one RunStore.

:class:`ServiceCore` is the transport-independent heart — the HTTP front
end below and the job-queue mode of ``python -m repro.service`` both drive
it.  A request is normalized to a content-addressed
:class:`~repro.results.store.RunKey` and served through the first tier
that can answer it:

1. **store** — the :class:`~repro.results.RunStore` already holds the
   record: load it, zero offline/online work.
2. **inflight** — another request for the same key is computing right
   now: attach to its :class:`~repro.service.coalesce.InFlightRun` and
   stream the same shards (N concurrent duplicates cost one engine run).
3. **miss** — lead a fresh computation on the persistent worker pool.
   Workers share the engine's two-tier
   :class:`~repro.api.cache.PreparationCache`, so preparations stay warm
   across requests: the first request for a circuit pays the offline
   stage, every later one — at any period, any population — reuses it.

A miss computes under the store's cross-process writer lease with a
double-checked read: two *daemons* (or a daemon racing a batch sweep)
sharing one store directory never duplicate a run either — the loser of
the lease race finds the winner's record and serves it.

Every response is a stream of protocol events (accepted → shard* →
done/error); shard summaries are published as the pipeline reduces them,
so clients see first results while later shards still compute.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.api.config import OnlineConfig
from repro.api.engine import Engine, Scenario, iter_shard_summaries
from repro.core.reduction import merge_run_summaries
from repro.results.store import RunKey, RunStore, ensure_store
from repro.service.coalesce import CoalescingTable, InFlightRun, RunFailed
from repro.service.protocol import (
    PROTOCOL_VERSION,
    TIER_INFLIGHT,
    TIER_MISS,
    TIER_STORE,
    CircuitRegistry,
    ProtocolError,
    RunRequest,
    accepted_event,
    done_event,
    encode_event,
    error_event,
    shard_event,
)
from repro.utils.diskio import LockTimeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.reduction import RunSummary


class ServiceCore:
    """Transport-independent request dispatch over one engine + store.

    ``n_workers`` sizes the persistent computation pool (requests
    themselves are handled on their transport's threads; only leader
    computations occupy pool slots).  The engine defaults to one whose
    preparation cache persists next to the store
    (``<store root>/../preparations``) when the store was given as a
    path — pass an explicit :class:`~repro.api.Engine` to control
    configuration and cache placement.
    """

    def __init__(
        self,
        store: RunStore | str | Path,
        engine: Engine | None = None,
        n_workers: int = 2,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.store = ensure_store(store)
        self.engine = engine or Engine()
        self.registry = CircuitRegistry()
        self.table = CoalescingTable()
        self.pool = ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="effitest-worker"
        )
        # effilint: disable=EFT002 -- uptime accounting for /stats; never feeds a key or result
        self.started = time.time()
        self._lock = threading.Lock()
        self._requests = 0
        self._tier_counts = {TIER_STORE: 0, TIER_INFLIGHT: 0, TIER_MISS: 0}
        self._engine_runs = 0
        self._failures = 0
        self._closed = False

    # -- accounting ------------------------------------------------------------

    def _count_tier(self, tier: str) -> None:
        with self._lock:
            self._requests += 1
            self._tier_counts[tier] += 1

    @property
    def engine_runs(self) -> int:
        """Times the online pipeline actually executed (the miss cost)."""
        with self._lock:
            return self._engine_runs

    def stats(self) -> dict:
        """The ``/stats`` payload: tiers, coalescing, store, prep warmth."""
        cache = self.engine.cache_stats
        coalesce = self.table.stats
        store = self.store.stats
        with self._lock:
            tiers = dict(self._tier_counts)
            requests = self._requests
            engine_runs = self._engine_runs
            failures = self._failures
        return {
            "version": PROTOCOL_VERSION,
            # effilint: disable=EFT002 -- uptime accounting for /stats; never feeds a key or result
            "uptime_seconds": time.time() - self.started,
            "requests": requests,
            "tiers": tiers,
            "engine_runs": engine_runs,
            "failures": failures,
            "coalescing": {
                "leaders": coalesce.leaders,
                "followers": coalesce.followers,
                "failures": coalesce.failures,
                "coalesced_fraction": coalesce.coalesced_fraction,
            },
            "store": {
                "hits": store.hits,
                "misses": store.misses,
                "stores": store.stores,
                "skipped": store.skipped,
                "records": len(self.store),
            },
            "preparations": {
                "hits": cache.hits,
                "disk_hits": cache.disk_hits,
                "computes": cache.computes,
                "hit_rate": cache.hit_rate,
            },
        }

    # -- request handling ------------------------------------------------------

    def handle(self, payload: dict) -> Iterator[dict]:
        """Serve one request payload as a stream of protocol events.

        Never raises for request-shaped problems: schema violations and
        failed runs become a terminal ``error`` event (transports map the
        pre-stream ones to 4xx).  The generator is lazy — events are
        produced as shards complete, so transports can flush them
        incrementally.
        """
        start = time.perf_counter()
        try:
            request = RunRequest.from_json(payload)
            scenario = request.resolve(self.registry)
            key = self.engine.run_key(scenario)
            online = scenario.online or self.engine.online
        except ProtocolError as exc:
            yield error_event(str(exc), kind="protocol")
            return
        except Exception as exc:
            # A schema-valid request the domain rejects (e.g. a circuit
            # spec the generator refuses) is still the requester's problem.
            yield error_event(f"invalid request: {exc}", kind="protocol")
            return
        assert key is not None  # requests always describe lazy populations
        yield from self._serve(scenario, key, online, start)

    def _serve(
        self,
        scenario: Scenario,
        key: RunKey,
        online: OnlineConfig,
        start: float,
    ) -> Iterator[dict]:
        # Tier 1: the store already holds the record.
        stored = (
            self.store.load(key, artifacts=online.artifacts)
            if self.store.probe(key, artifacts=online.artifacts)
            else None
        )
        if stored is not None:
            self._count_tier(TIER_STORE)
            yield accepted_event(TIER_STORE, key.digest())
            yield shard_event(0, stored.summary)
            yield done_event(
                n_shards=1,
                offline_seconds=stored.offline_seconds,
                elapsed_seconds=time.perf_counter() - start,
            )
            return

        # Tier 2/3: join the in-flight run, or lead a fresh one.
        entry, leader = self.table.lease(key.digest())
        tier = TIER_MISS if leader else TIER_INFLIGHT
        self._count_tier(tier)
        if leader:
            if self._closed:
                self.table.complete(
                    entry, error=RuntimeError("service shutting down")
                )
            else:
                self.pool.submit(self._compute, entry, scenario, key, online)
        yield accepted_event(tier, key.digest())
        index = 0
        try:
            for shard in entry.watch():
                yield shard_event(index, shard)
                index += 1
        except RunFailed as exc:
            with self._lock:
                self._failures += 1
            yield error_event(str(exc), kind="run")
            return
        yield done_event(
            n_shards=index,
            offline_seconds=entry.offline_seconds,
            elapsed_seconds=time.perf_counter() - start,
        )

    def _compute(
        self,
        entry: InFlightRun,
        scenario: Scenario,
        key: RunKey,
        online: OnlineConfig,
    ) -> None:
        """Leader body, on a pool worker: compute, publish, store.

        Runs under the store's cross-process lease with a double-checked
        read, so concurrent daemons on one store directory coalesce too.
        If the lease stays contended past the store's timeout we compute
        anyway — duplicated work in a pathological stall, never a wrong
        or torn record (the eventual ``store`` call double-checks again).
        """
        error: BaseException | None = None
        try:
            try:
                with self.store.lease(key):
                    self._compute_locked(entry, scenario, key, online)
            except LockTimeout:
                self._compute_locked(entry, scenario, key, online, lock=False)
        except BaseException as exc:  # propagate to every waiter
            error = exc
        finally:
            self.table.complete(entry, error=error)

    def _compute_locked(
        self,
        entry: InFlightRun,
        scenario: Scenario,
        key: RunKey,
        online: OnlineConfig,
        lock: bool = True,
    ) -> None:
        # Double-checked read under the lease: another process may have
        # landed the record while we waited for the lock.
        stored = self.store.load(key, artifacts=online.artifacts)
        if stored is not None:
            entry.offline_seconds = stored.offline_seconds
            entry.publish(stored.summary)
            return
        prep = self.engine.prepare(
            scenario.circuit,
            scenario.design_period,
            scenario.offline or self.engine.offline,
        )
        entry.offline_seconds = prep.offline_seconds
        with self._lock:
            self._engine_runs += 1
        parts: list["RunSummary"] = []
        for shard in iter_shard_summaries(
            scenario.circuit,
            scenario.chip_source(),
            scenario.period,
            prep,
            online,
        ):
            parts.append(shard)
            entry.publish(shard)
        summary = merge_run_summaries(parts)
        if lock:
            # Already under the lease: store() would contend with our own
            # lease file, so use the caller-holds-the-lease variant.
            # effilint: disable=EFT004 -- lease held by the caller: _compute wraps this call in `with self.store.lease(key)` before delegating
            self.store.store_under_lease(
                key, summary, offline_seconds=prep.offline_seconds
            )
        else:
            self.store.store(
                key, summary, offline_seconds=prep.offline_seconds
            )

    def close(self, wait: bool = True) -> None:
        """Stop accepting leaders and drain the worker pool."""
        self._closed = True
        self.pool.shutdown(wait=wait)


# ----------------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------------


def _write_chunk(wfile, data: bytes) -> None:
    wfile.write(f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n")


def _end_chunks(wfile) -> None:
    wfile.write(b"0\r\n\r\n")


class _ServiceHandler(BaseHTTPRequestHandler):
    """HTTP/1.1 handler: ``POST /run`` streams ndjson events, chunked.

    The server object carries the :class:`ServiceCore` (``server.core``);
    one handler thread per connection (``ThreadingHTTPServer``), so a
    slow consumer never blocks other requests — and a leader's
    computation lives on the core's pool, not on this thread.
    """

    protocol_version = "HTTP/1.1"
    server_version = f"EffiTest/{PROTOCOL_VERSION}"

    @property
    def core(self) -> ServiceCore:
        return self.server.core  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, allow_nan=False).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/healthz":
            self._send_json(200, {"ok": True, "version": PROTOCOL_VERSION})
        elif self.path == "/stats":
            self._send_json(200, self.core.stats())
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/shutdown":
            self._send_json(200, {"ok": True, "shutting_down": True})
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()
            return
        if self.path != "/run":
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length))
        except (ValueError, TypeError) as exc:
            self._send_json(400, {"error": f"malformed request body: {exc}"})
            return
        events = self.core.handle(payload)
        # Peek the first event before committing to a 200: a protocol
        # error becomes a clean 400 instead of an error inside a stream.
        first = next(events, None)
        if first is None or (
            first.get("event") == "error" and first.get("kind") == "protocol"
        ):
            self._send_json(
                400, {"error": (first or {}).get("error", "empty response")}
            )
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            _write_chunk(self.wfile, encode_event(first))
            self.wfile.flush()
            for event in events:
                _write_chunk(self.wfile, encode_event(event))
                self.wfile.flush()
            _end_chunks(self.wfile)
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-stream; the leader's computation (if
            # any) finishes on the pool and lands in the store regardless.
            events.close()


class EffiTestDaemon:
    """The long-lived HTTP daemon wrapping one :class:`ServiceCore`.

    ``port=0`` binds an ephemeral port (read it back from ``address``).
    Use :meth:`start` for a background server (tests, benchmarks, the
    job-queue CLI's hybrid mode) and :meth:`serve_forever` to occupy the
    calling thread (the ``python -m repro.service serve`` entry point).
    """

    def __init__(
        self,
        core: ServiceCore,
        host: str = "127.0.0.1",
        port: int = 8940,
        verbose: bool = False,
    ):
        self.core = core
        self.server = ThreadingHTTPServer((host, port), _ServiceHandler)
        self.server.daemon_threads = True
        self.server.core = core  # type: ignore[attr-defined]
        self.server.verbose = verbose  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.server.server_address[:2]
        return str(host), int(port)

    def start(self) -> "EffiTestDaemon":
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            name="effitest-daemon",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.server.serve_forever()

    def stop(self, wait: bool = True) -> None:
        """Shut down the HTTP server and drain the core's worker pool."""
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.core.close(wait=wait)

    def __enter__(self) -> "EffiTestDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = ["EffiTestDaemon", "ServiceCore"]
