"""Wire protocol of the EffiTest service.

Everything that crosses the daemon boundary is strict RFC 8259 JSON:

* a :class:`RunRequest` — one scenario, described by value (a circuit
  *reference*, the operating period, a population recipe and config
  overrides), so the server can normalize it to a content-addressed
  :class:`~repro.results.store.RunKey` and coalesce duplicates,
* a stream of *events*, one JSON object per line (``application/x-ndjson``
  over HTTP, plain lines in job-queue mode): one ``accepted`` event naming
  the serving tier, then one ``shard`` event per reduced chip shard as it
  completes, then a terminal ``done`` or ``error`` event.

Shard payloads reuse the :class:`~repro.core.reduction.RunSummary`
decomposition of the results store (:func:`repro.results.store.summary_payload`)
with arrays JSON-encoded as ``{dtype, shape, data}`` — one serialization
schema whether a summary travels to disk or over a socket.  The client
merges shard summaries with
:func:`~repro.core.reduction.merge_run_summaries`, exactly like the
engine's own shard reduction, so a streamed run reassembles bit-identically.

Circuits travel as references, not payloads: either a paper benchmark name
(``{"bench": "s9234"}`` — the Table 1 generator specs) or an explicit
generator spec (``{"spec": {...CircuitSpec fields...}}``).  Generation is
deterministic in the seed, so a reference *is* a content address; the
daemon memoizes materialized circuits in a :class:`CircuitRegistry`.
"""

from __future__ import annotations

import base64
import json
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass, field, fields

import numpy as np

from repro.api.config import OfflineConfig, OnlineConfig
from repro.api.engine import Scenario
from repro.circuit.generator import Circuit, CircuitSpec, generate_circuit
from repro.core.reduction import RunSummary
from repro.results.store import payload_summary, summary_payload
from repro.utils.rng import derive_seed

#: Bump on any incompatible change to requests or events.
PROTOCOL_VERSION = 1

#: Event names, in stream order.
EVENT_ACCEPTED = "accepted"
EVENT_SHARD = "shard"
EVENT_DONE = "done"
EVENT_ERROR = "error"

#: Serving tiers reported by the ``accepted`` event.
TIER_STORE = "store"      # loaded from the RunStore, nothing computed
TIER_INFLIGHT = "inflight"  # attached to another request's computation
TIER_MISS = "miss"        # this request leads a fresh computation


class ProtocolError(ValueError):
    """A request (or event) violates the wire schema."""


# ----------------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------------


def _config_overrides(cls, payload: dict, what: str):
    """Build a config dataclass from a JSON override dict, strictly."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"{what} overrides must be an object")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ProtocolError(f"unknown {what} fields: {unknown}")
    try:
        return cls(**payload)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid {what} overrides: {exc}") from exc


@dataclass(frozen=True)
class RunRequest:
    """One scenario request, fully described by value.

    ``circuit`` is a reference (see :class:`CircuitRegistry`); ``offline``
    and ``online`` are sparse override dicts applied on top of the config
    defaults.  The service's default retention is ``"summary"`` — the
    population statistics every consumer needs — unless the request's
    ``online`` overrides ask for more (wire payloads grow accordingly).
    Two requests that normalize to the same :class:`RunKey` are the same
    run to the daemon, whatever their labels.
    """

    circuit: dict
    period: float
    n_chips: int = 1000
    seed: int = 20160605
    clock_period: float | None = None
    offline: dict = field(default_factory=dict)
    online: dict = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.circuit, dict):
            raise ProtocolError("circuit must be a reference object")
        if not self.period > 0.0:
            raise ProtocolError(f"period must be positive, got {self.period}")
        if self.n_chips < 1:
            raise ProtocolError(f"n_chips must be >= 1, got {self.n_chips}")

    @staticmethod
    def from_json(payload: dict) -> "RunRequest":
        if not isinstance(payload, dict):
            raise ProtocolError("request must be a JSON object")
        known = {f.name for f in fields(RunRequest)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ProtocolError(f"unknown request fields: {unknown}")
        if "circuit" not in payload or "period" not in payload:
            raise ProtocolError("request needs at least circuit and period")
        try:
            return RunRequest(**payload)
        except TypeError as exc:
            raise ProtocolError(f"malformed request: {exc}") from exc

    def to_json(self) -> dict:
        return asdict(self)

    def configs(self) -> tuple[OfflineConfig, OnlineConfig]:
        offline = _config_overrides(OfflineConfig, self.offline, "offline")
        online = _config_overrides(
            OnlineConfig, {"artifacts": "summary", **self.online}, "online"
        )
        return offline, online

    def resolve(self, registry: "CircuitRegistry") -> Scenario:
        """Normalize to a :class:`Scenario` (lazy population — storable)."""
        offline, online = self.configs()
        return Scenario(
            registry.resolve(self.circuit),
            period=float(self.period),
            n_chips=int(self.n_chips),
            seed=int(self.seed),
            offline=offline,
            online=online,
            clock_period=(
                None if self.clock_period is None else float(self.clock_period)
            ),
            label=self.label,
        )


# ----------------------------------------------------------------------------
# Circuit references
# ----------------------------------------------------------------------------


class CircuitRegistry:
    """Materializes circuit references, memoized by content.

    Two reference forms:

    * ``{"bench": "s9234", "seed": 20160605}`` — one of the paper's
      Table 1 circuits via :func:`repro.experiments.benchdata.benchmark_spec`;
      the generator seed is derived exactly as the experiment contexts
      derive it, so service runs share store records with batch runs.
    * ``{"spec": {"name": ..., "n_flipflops": ..., ...}, "seed": 1234}`` —
      an explicit :class:`~repro.circuit.generator.CircuitSpec`; the seed
      is used verbatim.

    Generation is deterministic, so the LRU is keyed by the resolved
    ``(spec, seed)`` — aliases of the same circuit share one entry.
    """

    def __init__(self, max_entries: int = 32):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, Circuit] = OrderedDict()
        self._lock = threading.Lock()

    @staticmethod
    def _parse(ref: dict) -> tuple[CircuitSpec, int]:
        if not isinstance(ref, dict):
            raise ProtocolError("circuit reference must be an object")
        if ("bench" in ref) == ("spec" in ref):
            raise ProtocolError(
                "circuit reference needs exactly one of 'bench' or 'spec'"
            )
        extras = sorted(set(ref) - {"bench", "spec", "seed"})
        if extras:
            raise ProtocolError(f"unknown circuit reference fields: {extras}")
        if "bench" in ref:
            from repro.experiments.benchdata import benchmark_spec

            name = ref["bench"]
            try:
                spec = benchmark_spec(name)
            except KeyError as exc:
                raise ProtocolError(str(exc)) from exc
            # The experiment-context derivation: bench circuits generated
            # through the service are bit-identical to batch ones, so both
            # hit the same store records.
            seed = derive_seed(int(ref.get("seed", 20160605)), name, "circuit")
            return spec, seed
        spec_payload = ref["spec"]
        if not isinstance(spec_payload, dict):
            raise ProtocolError("circuit spec must be an object")
        known = {f.name for f in fields(CircuitSpec)}
        unknown = sorted(set(spec_payload) - known)
        if unknown:
            raise ProtocolError(f"unknown circuit spec fields: {unknown}")
        try:
            spec = CircuitSpec(**spec_payload)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid circuit spec: {exc}") from exc
        return spec, int(ref.get("seed", 1234))

    def resolve(self, ref: dict) -> Circuit:
        spec, seed = self._parse(ref)
        key = (spec, seed)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                return cached
        circuit = generate_circuit(spec, seed=seed)
        with self._lock:
            self._entries[key] = circuit
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return circuit


# ----------------------------------------------------------------------------
# Summary codec
# ----------------------------------------------------------------------------


def encode_array(array: np.ndarray) -> dict:
    """JSON form of one ndarray: dtype string, shape, base64 raw bytes.

    Raw bytes (not ``tolist()``) keep the round trip *bit-identical* for
    every dtype — including non-finite floats (an infeasible chip's xi is
    ``inf``), which strict JSON number syntax cannot carry — and stay
    ~3x smaller than decimal text.
    """
    array = np.ascontiguousarray(array)
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    try:
        raw = base64.b64decode(payload["data"].encode("ascii"))
        flat = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
        # frombuffer views are read-only; records are mutable downstream.
        return flat.reshape(payload["shape"]).copy()
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed array payload: {exc}") from exc


def encode_summary(summary: RunSummary) -> dict:
    """Wire form of one :class:`RunSummary` (any retention mode)."""
    meta, arrays = summary_payload(summary)
    return {
        "meta": meta,
        "arrays": {name: encode_array(array) for name, array in arrays.items()},
    }


def decode_summary(payload: dict) -> RunSummary:
    try:
        meta = payload["meta"]
        arrays = {
            name: decode_array(array)
            for name, array in payload["arrays"].items()
        }
        return payload_summary(meta, arrays, meta["artifacts"])
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"malformed summary payload: {exc}") from exc


# ----------------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------------


def accepted_event(tier: str, digest: str) -> dict:
    return {
        "event": EVENT_ACCEPTED,
        "version": PROTOCOL_VERSION,
        "tier": tier,
        "digest": digest,
    }


def shard_event(index: int, summary: RunSummary) -> dict:
    return {
        "event": EVENT_SHARD,
        "index": index,
        "summary": encode_summary(summary),
    }


def done_event(
    n_shards: int, offline_seconds: float, elapsed_seconds: float
) -> dict:
    return {
        "event": EVENT_DONE,
        "n_shards": n_shards,
        "offline_seconds": offline_seconds,
        "elapsed_seconds": elapsed_seconds,
    }


def error_event(message: str, kind: str = "error") -> dict:
    return {"event": EVENT_ERROR, "error": message, "kind": kind}


def encode_event(event: dict) -> bytes:
    """One event as one JSON line (strict JSON, newline-terminated)."""
    return json.dumps(event, allow_nan=False).encode() + b"\n"


def decode_event(line: bytes | str) -> dict:
    try:
        event = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"malformed event line: {exc}") from exc
    if not isinstance(event, dict) or "event" not in event:
        raise ProtocolError(f"not an event object: {event!r}")
    return event


__all__ = [
    "EVENT_ACCEPTED",
    "EVENT_DONE",
    "EVENT_ERROR",
    "EVENT_SHARD",
    "PROTOCOL_VERSION",
    "CircuitRegistry",
    "ProtocolError",
    "RunRequest",
    "TIER_INFLIGHT",
    "TIER_MISS",
    "TIER_STORE",
    "accepted_event",
    "decode_array",
    "decode_event",
    "decode_summary",
    "done_event",
    "encode_array",
    "encode_event",
    "encode_summary",
    "error_event",
    "shard_event",
]
