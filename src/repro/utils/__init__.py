"""Shared utilities: seeded randomness, table rendering, validation, timing.

These helpers are deliberately tiny and dependency-free so every other
subpackage can use them without import cycles.
"""

from repro.utils.rng import RandomState, spawn_rngs
from repro.utils.tables import Table, format_float
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_probability,
    check_square_matrix,
)

__all__ = [
    "RandomState",
    "spawn_rngs",
    "Table",
    "format_float",
    "Stopwatch",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_square_matrix",
]
