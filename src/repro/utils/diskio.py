"""Shared best-effort disk primitives for the persistent cache tiers.

Both content-addressed stores — the preparation cache's disk tier
(:mod:`repro.api.cache`) and the results store (:mod:`repro.results.store`)
— need the same two operations: crash-safe single-file writes (temp file +
atomic rename, so concurrent readers only ever see whole files) and
oldest-first pruning by modification time.  They live here so the
filesystem-hardening logic exists exactly once.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable, Iterable

__all__ = ["prune_by_mtime", "write_atomic"]


def write_atomic(path: Path, write: Callable[[object], None]) -> None:
    """Write ``path`` via a temp file in the same directory + rename.

    ``write`` receives the open binary file object.  On any failure the
    temp file is removed and the exception propagates — the destination is
    either fully written or untouched, never truncated.
    """
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
        os.replace(tmp, path)  # atomic: readers see whole files only
    except Exception:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def prune_by_mtime(
    root: Path,
    pattern: str,
    max_entries: int | None,
    companions: Callable[[Path], Iterable[Path]] | None = None,
) -> None:
    """Delete the oldest ``pattern`` files past ``max_entries`` (by mtime).

    ``companions`` maps a pruned file to sibling payload files deleted
    with it.  Other processes may share the directory and delete files
    between glob and stat, so every step is best-effort.
    """
    if max_entries is None:
        return
    aged = []
    for artifact in root.glob(pattern):
        try:
            aged.append((artifact.stat().st_mtime, artifact))
        except OSError:
            continue
    aged.sort(key=lambda pair: pair[0])
    for _, stale in aged[: max(0, len(aged) - max_entries)]:
        doomed = [stale, *(companions(stale) if companions else ())]
        for path in doomed:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                continue
