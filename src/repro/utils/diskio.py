"""Shared best-effort disk primitives for the persistent cache tiers.

Both content-addressed stores — the preparation cache's disk tier
(:mod:`repro.api.cache`) and the results store (:mod:`repro.results.store`)
— need the same operations: crash-safe single-file writes (temp file +
atomic rename, so concurrent readers only ever see whole files),
oldest-first pruning by modification time, and cooperative cross-process
*lease files* so racing writers — daemons, batch sweeps, pool workers
pointed at one shared directory — serialize per key instead of duplicating
work.  They live here so the filesystem-hardening logic exists exactly
once.

Leases are plain ``O_CREAT | O_EXCL`` lock files (the only primitive that
is atomic on every local filesystem and NFS): whoever creates the file
holds the lease, and deleting it releases.  A holder killed hard
(``SIGKILL``, power loss) leaves the file behind, so every acquire path
treats a lease older than ``stale_after`` seconds (by mtime) as abandoned
and breaks it; :func:`reap_stale_files` is the standalone sweep of the
same rule for startup recovery passes.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import time
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "LockTimeout",
    "file_lock",
    "prune_by_mtime",
    "reap_stale_files",
    "try_acquire_lock",
    "release_lock",
    "write_atomic",
]


#: Default age (seconds) past which a lease/temp file counts as abandoned.
#: Generous against the longest plausible single-record write, tiny against
#: a daemon's lifetime.
DEFAULT_STALE_AFTER = 300.0


class LockTimeout(TimeoutError):
    """A lease file stayed held past the caller's acquisition deadline."""


def write_atomic(path: Path, write: Callable[[object], None]) -> None:
    """Write ``path`` via a temp file in the same directory + rename.

    ``write`` receives the open binary file object.  On any failure the
    temp file is removed and the exception propagates — the destination is
    either fully written or untouched, never truncated.
    """
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
        os.replace(tmp, path)  # atomic: readers see whole files only
    except Exception:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def prune_by_mtime(
    root: Path,
    pattern: str,
    max_entries: int | None,
    companions: Callable[[Path], Iterable[Path]] | None = None,
) -> None:
    """Delete the oldest ``pattern`` files past ``max_entries`` (by mtime).

    ``companions`` maps a pruned file to sibling payload files deleted
    with it.  Other processes may share the directory and delete files
    between glob and stat, so every step is best-effort.
    """
    if max_entries is None:
        return
    aged = []
    for artifact in root.glob(pattern):
        try:
            aged.append((artifact.stat().st_mtime, artifact))
        except OSError:
            continue
    aged.sort(key=lambda pair: pair[0])
    for _, stale in aged[: max(0, len(aged) - max_entries)]:
        doomed = [stale, *(companions(stale) if companions else ())]
        for path in doomed:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                continue


# ----------------------------------------------------------------------------
# Cross-process lease files
# ----------------------------------------------------------------------------


def _age_seconds(path: Path) -> float | None:
    """Seconds since ``path``'s last mtime, or ``None`` if it vanished."""
    try:
        # effilint: disable=EFT002 -- lease staleness is wall-clock by definition: mtime age vs. horizon, never a result identity
        return time.time() - path.stat().st_mtime
    except OSError:
        return None


def _break_stale(path: Path, stale_after: float | None) -> bool:
    """Delete ``path`` if it is older than ``stale_after``.  True if broken.

    Racing breakers may both unlink (one no-ops); the subsequent exclusive
    create still admits exactly one winner, so breaking is always safe.
    """
    if stale_after is None:
        return False
    age = _age_seconds(path)
    if age is None:
        return True  # already gone — treat as broken
    if age <= stale_after:
        return False
    try:
        path.unlink(missing_ok=True)
    except OSError:
        return False
    return True


def try_acquire_lock(
    path: Path, stale_after: float | None = DEFAULT_STALE_AFTER
) -> bool:
    """One non-blocking attempt to take the lease at ``path``.

    The lease body records ``pid`` and acquisition time for post-mortem
    debugging; nothing parses it — identity lives in the file's existence
    and staleness in its mtime.
    """
    flags = os.O_CREAT | os.O_EXCL | os.O_WRONLY
    for _attempt in (0, 1):
        try:
            fd = os.open(path, flags)
        except FileExistsError:
            if not _break_stale(path, stale_after):
                return False
            continue  # broke a stale lease — retry the exclusive create
        except OSError:
            return False
        try:
            # effilint: disable=EFT002 -- post-mortem debug metadata in the lease body; nothing parses it and no result depends on it
            os.write(fd, f"pid={os.getpid()} t={time.time():.3f}\n".encode())
        except OSError:
            pass
        finally:
            os.close(fd)
        return True
    return False


def release_lock(path: Path) -> None:
    """Release the lease at ``path`` (idempotent, best-effort)."""
    try:
        path.unlink(missing_ok=True)
    except OSError:
        pass


@contextlib.contextmanager
def file_lock(
    path: Path,
    timeout: float | None = 30.0,
    poll: float = 0.02,
    stale_after: float | None = DEFAULT_STALE_AFTER,
) -> Iterator[None]:
    """Hold the lease file at ``path`` for the duration of the block.

    Blocks up to ``timeout`` seconds (``None`` waits forever), polling
    every ``poll`` seconds; raises :class:`LockTimeout` when the deadline
    passes.  A lease whose mtime is older than ``stale_after`` is broken
    on sight — a ``SIGKILL``-ed holder therefore delays waiters by at most
    the stale window, never forever.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while not try_acquire_lock(path, stale_after):
        if deadline is not None and time.monotonic() > deadline:
            raise LockTimeout(f"lease {path} still held after {timeout:g}s")
        time.sleep(poll)
    try:
        yield
    finally:
        release_lock(path)


def reap_stale_files(
    root: Path, pattern: str, stale_after: float = DEFAULT_STALE_AFTER
) -> int:
    """Delete ``pattern`` files under ``root`` older than ``stale_after``.

    The recovery sweep for artifacts that only a *crashed* writer leaves
    behind: lease files and orphaned temp files.  Young files are an
    in-flight writer's and survive.  Returns the number of files removed.
    """
    reaped = 0
    for stale in root.glob(pattern):
        age = _age_seconds(stale)
        if age is None or age <= stale_after:
            continue
        try:
            stale.unlink(missing_ok=True)
        except OSError:
            continue
        reaped += 1
    return reaped
