"""Deterministic random-number management.

Every stochastic component in the library (variation sampling, synthetic
circuit generation, Monte-Carlo yield runs) takes an explicit seed or
:class:`numpy.random.Generator`.  This module centralizes the conversion so
that experiments are reproducible bit-for-bit across runs and machines.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Accepted seed-like inputs throughout the library.
RandomState = int | np.random.Generator | None


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    ``None`` produces an OS-entropy generator, an ``int`` a seeded PCG64
    generator, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Split one seed into ``count`` statistically independent generators.

    Independent streams let the parts of an experiment (circuit generation,
    chip sampling, tester noise) stay decoupled: changing how many samples
    one part draws does not perturb the others.

    For non-``int`` seeds the fallback below draws the child seeds from the
    root generator instead of a :class:`~numpy.random.SeedSequence` spawn
    tree.  That is *intentionally* only as deterministic as the input: a
    passed-in generator yields a reproducible spawn (same generator state,
    same children), while ``None`` inherits the documented fresh-entropy
    contract of :func:`as_generator` — one random family per call.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, int):
        seq = np.random.SeedSequence(seed)
        return [np.random.default_rng(child) for child in seq.spawn(count)]
    root = as_generator(seed)
    return [
        # effilint: disable=EFT002 -- determinism is delegated to the caller's `seed` here: generator inputs replay exactly; None opts into fresh entropy by contract
        np.random.default_rng(int(root.integers(0, 2**63 - 1))) for _ in range(count)
    ]


def canonical_seed(seed: RandomState = None) -> int:
    """Collapse any seed-like input to one plain non-negative ``int``.

    Counter-based shard sampling (:mod:`repro.variation.sampling`) and the
    lazy :class:`~repro.core.yields.ChipSource` need a seed that pickles
    losslessly and derives the same per-block streams in every process.
    An ``int`` passes through, ``None`` draws fresh OS entropy (one random
    population per call, as before), and a generator is collapsed by
    drawing a single integer from it.

    The ``None`` branch is the library's *single* sanctioned entropy
    source: ``seed=None`` means "give me a new population" everywhere else
    too (:func:`as_generator`), so collapsing it to a fresh-entropy int
    here preserves that meaning while making the draw replayable from this
    point on — the int is recorded in cache keys and store metadata, so
    the run it names is reproducible even though its selection was not.
    """
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return int(seed)
    if seed is None:
        # effilint: disable=EFT002 -- deliberate fresh entropy: seed=None contractually means "new random population"; the drawn int is recorded so everything downstream replays
        return int(np.random.SeedSequence().generate_state(1, np.uint64)[0])
    return int(as_generator(seed).integers(0, 2**63 - 1))


def derive_seed(seed: RandomState, *labels: str | int) -> int:
    """Derive a stable child seed from ``seed`` and a sequence of labels.

    Useful when a component needs a reproducible per-item seed (for example
    one seed per benchmark circuit) without consuming draws from a shared
    generator.
    """
    base = 0 if seed is None else (seed if isinstance(seed, int) else int(seed.integers(2**31)))
    mixed = np.uint64(base & 0xFFFFFFFFFFFFFFFF)
    for label in labels:
        text = str(label).encode("utf-8")
        for byte in text:
            # FNV-1a style mixing: cheap, stable across platforms.
            mixed = np.uint64((int(mixed) ^ byte) * 0x100000001B3 % 2**64)
    return int(mixed % np.uint64(2**63 - 1))


def sample_standard_normals(
    rng: np.random.Generator, shape: int | Sequence[int]
) -> np.ndarray:
    """Draw standard normal samples with an explicit generator."""
    return rng.standard_normal(shape)


def choice_without_replacement(
    rng: np.random.Generator, items: Iterable, count: int
) -> list:
    """Uniformly choose ``count`` distinct items from ``items``."""
    pool = list(items)
    if count > len(pool):
        raise ValueError(f"cannot choose {count} from {len(pool)} items")
    indices = rng.choice(len(pool), size=count, replace=False)
    return [pool[int(i)] for i in indices]
