"""Input validation helpers shared across the library.

All raise :class:`ValueError` with messages that name the offending argument,
so misuse is caught at API boundaries instead of deep inside numerics.
"""

from __future__ import annotations

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(value: float, low: float, high: float, name: str) -> float:
    """Require ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_finite(array: np.ndarray, name: str) -> np.ndarray:
    """Require every entry of ``array`` to be finite."""
    arr = np.asarray(array, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def check_square_matrix(matrix: np.ndarray, name: str) -> np.ndarray:
    """Require a 2-D square matrix."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    return arr


def check_symmetric(matrix: np.ndarray, name: str, tol: float = 1e-8) -> np.ndarray:
    """Require a symmetric matrix (within ``tol``)."""
    arr = check_square_matrix(matrix, name)
    if not np.allclose(arr, arr.T, atol=tol):
        raise ValueError(f"{name} must be symmetric")
    return arr


def check_lengths_match(a, b, name_a: str, name_b: str) -> None:
    """Require ``len(a) == len(b)``."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have equal length, got {len(a)} and {len(b)}"
        )
