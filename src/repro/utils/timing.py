"""Wall-clock timing for the runtime columns of experiment tables.

The paper reports per-phase runtimes (Tp: offline preparation, Tt: on-tester
optimization, Ts: final configuration).  :class:`Stopwatch` accumulates named
phases so the experiment harness can reproduce those columns for our
implementation.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator


class Stopwatch:
    """Accumulate wall-clock time under named phases.

    >>> sw = Stopwatch()
    >>> with sw.measure("prep"):
    ...     pass
    >>> sw.total("prep") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = defaultdict(float)
        self._counts: dict[str, int] = defaultdict(int)

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Context manager adding elapsed time to ``phase``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._totals[phase] += time.perf_counter() - start
            self._counts[phase] += 1

    def add(self, phase: str, seconds: float) -> None:
        """Manually add ``seconds`` to ``phase``."""
        self._totals[phase] += seconds
        self._counts[phase] += 1

    def total(self, phase: str) -> float:
        """Total seconds recorded under ``phase`` (0.0 if never measured)."""
        return self._totals.get(phase, 0.0)

    def count(self, phase: str) -> int:
        """Number of measurements recorded under ``phase``."""
        return self._counts.get(phase, 0)

    def mean(self, phase: str) -> float:
        """Average seconds per measurement of ``phase`` (0.0 if none)."""
        n = self._counts.get(phase, 0)
        return self._totals.get(phase, 0.0) / n if n else 0.0

    def phases(self) -> list[str]:
        """All phase names seen so far, in insertion order."""
        return list(self._totals)

    def as_dict(self) -> dict[str, float]:
        """Snapshot of phase totals."""
        return dict(self._totals)
