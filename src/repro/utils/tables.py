"""Plain-text table rendering for experiment reports.

The experiment harness prints tables shaped like the paper's Table 1/Table 2;
this module implements the small amount of layout logic needed (column
alignment, float formatting, optional markdown output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def format_float(value: Any, digits: int = 2) -> str:
    """Format a number for tabular display.

    Integers print without a decimal point; floats with ``digits`` decimals;
    ``None`` prints as a dash.  Strings pass through unchanged so callers can
    mix computed and annotated cells.
    """
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if float(value).is_integer() and abs(value) < 1e15 and digits == 0:
            return str(int(value))
        return f"{value:.{digits}f}"
    return str(value)


@dataclass
class Table:
    """A small ASCII/markdown table builder.

    >>> t = Table(["circuit", "yield"])
    >>> t.add_row(["s9234", 0.7711])
    >>> print(t.render())  # doctest: +SKIP
    """

    columns: Sequence[str]
    digits: int = 2
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[Any], digits: int | None = None) -> None:
        """Append one row; values are formatted immediately."""
        use_digits = self.digits if digits is None else digits
        row = [format_float(v, use_digits) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def _widths(self) -> list[int]:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render as an aligned plain-text table."""
        widths = self._widths()
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "  ".join("-" * w for w in widths)
        lines = [header, rule]
        for row in self.rows:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        header = "| " + " | ".join(self.columns) + " |"
        rule = "|" + "|".join(" --- " for _ in self.columns) + "|"
        lines = [header, rule]
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def render_csv(self) -> str:
        """Render as comma-separated values (no quoting; cells are simple)."""
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(row))
        return "\n".join(lines)
