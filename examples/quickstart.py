"""Quickstart: the whole EffiTest flow on one synthetic circuit.

Covers the paper end to end in ~30 seconds:

1. the Fig. 2 motivating example — post-silicon clock tuning reduces the
   minimum period of a 4-flip-flop loop from 8 to 5.5 (Karp's maximum mean
   cycle),
2. generating a benchmark-calibrated circuit and its Monte-Carlo chips,
3. the offline preparation (path selection, multiplexing, hold bounds),
4. the aligned delay test + statistical prediction + buffer configuration,
5. the headline comparison against path-wise frequency stepping.

Run:  python examples/quickstart.py
"""

from repro import (
    CircuitSpec,
    Engine,
    generate_circuit,
    ideal_yield,
    no_buffer_yield,
    operating_periods,
    sample_circuit,
)
from repro.opt import min_clock_period_bounded, min_clock_period_unbounded


def motivating_example() -> None:
    print("== Fig. 2: why tune clocks after manufacturing ==")
    stages = [("F1", "F2", 3.0), ("F2", "F3", 8.0), ("F3", "F4", 5.0),
              ("F4", "F1", 6.0)]
    untuned = max(delay for *_, delay in stages)
    tuned = min_clock_period_unbounded(stages)
    print(f"minimum clock period without tuning : {untuned:.1f}")
    print(f"minimum clock period with tuning    : {tuned:.1f}  (paper: 5.5)")
    bounded = min_clock_period_bounded(
        stages,
        {f: -1.0 for f in ("F1", "F2", "F3", "F4")},
        {f: +1.0 for f in ("F1", "F2", "F3", "F4")},
    )
    print(f"with buffers limited to +-1.0       : {bounded:.2f}\n")


def full_flow() -> None:
    print("== EffiTest on a calibrated synthetic circuit (s9234-sized) ==")
    spec = CircuitSpec("quickstart", n_flipflops=211, n_gates=5597,
                       n_buffers=2, n_paths=80)
    circuit = generate_circuit(spec, seed=1)

    calibration = sample_circuit(circuit, 4000, seed=2)
    t1, t2 = operating_periods(calibration)
    print(f"operating points: T1 = {t1:.1f} ps (no-buffer yield 50%), "
          f"T2 = {t2:.1f} ps (84.13%)")

    engine = Engine()
    prep = engine.prepare(circuit, clock_period=t1)
    print(f"offline preparation: {len(prep.plan.selected)} paths selected by "
          f"PCA, {len(prep.plan.fills)} idle-slot fills, "
          f"{prep.plan.n_batches} test batches, "
          f"{len(prep.hold_bounds)} hold bounds "
          f"(test resolution eps = {prep.epsilon:.2f} ps)")

    chips = sample_circuit(circuit, 1000, seed=3)
    run = engine.run(circuit, chips, t1, preparation=prep)
    baseline = engine.pathwise_baseline(circuit, chips)

    ta, ta_prime = run.mean_iterations, baseline.total_iterations
    print(f"\ntester iterations per chip: EffiTest {ta:.1f} vs "
          f"path-wise {ta_prime}  (reduction {100 * (ta_prime - ta) / ta_prime:.1f}%)")
    print(f"iterations per tested path: {run.iterations_per_tested_path:.2f} "
          f"vs {baseline.mean_iterations_per_path:.2f} path-wise")

    yt = run.yield_fraction
    yi = ideal_yield(circuit, chips, prep.structure, t1)
    nb = no_buffer_yield(chips, t1)
    print(f"\nyield at T1: no buffers {100 * nb:.1f}%  |  "
          f"EffiTest-configured {100 * yt:.1f}%  |  "
          f"ideal measurement {100 * yi:.1f}%")
    print(f"yield cost of measuring only "
          f"{prep.n_tested}/{circuit.paths.n_paths} paths: "
          f"{100 * (yi - yt):.2f} points")


if __name__ == "__main__":
    motivating_example()
    full_flow()
