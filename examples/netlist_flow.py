"""Gate-level flow: from a .bench netlist to a tuned, tested chip.

The experiments use the calibrated synthetic generator (the mapped
ISCAS89/TAU13 netlists are not redistributable); this example shows the
*netlist* path a user with real benchmark files would take:

1. build a pipelined netlist, write it to ISCAS89 ``.bench``, read it back,
2. place it, extract FF-to-FF paths with statistical delays (SSTA),
3. select flip-flops for tunable buffers by criticality,
4. run the full EffiTest flow on the extracted circuit.

Run:  python examples/netlist_flow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Engine, ideal_yield, no_buffer_yield, operating_periods, \
    sample_circuit
from repro.circuit import Netlist, read_bench, save_bench
from repro.circuit.from_netlist import circuit_from_netlist


def build_pipeline_netlist(
    n_stages: int = 6,
    lanes: int = 4,
    depth_range: tuple[int, int] = (4, 14),
    seed: int = 5,
) -> Netlist:
    """A multi-lane pipeline with uneven logic depth per stage.

    Uneven depth is what makes clock tuning worthwhile: deep stages can
    borrow budget from shallow neighbours.
    """
    rng = np.random.default_rng(seed)
    netlist = Netlist("pipeline")
    gate_id = 0

    lane_inputs = []
    for lane in range(lanes):
        pi = f"in{lane}"
        netlist.add_input(pi)
        lane_inputs.append(pi)

    previous = list(lane_inputs)
    for stage in range(n_stages):
        # Flip-flop rank capturing the previous stage.
        captured = []
        for lane, signal in enumerate(previous):
            q = f"ff_s{stage}_l{lane}"
            netlist.add_flop(q, signal)
            captured.append(q)
        # Combinational cloud: chains with occasional cross-lane mixing.
        outputs = []
        for lane, q in enumerate(captured):
            depth = int(rng.integers(*depth_range))
            signal = q
            for _ in range(depth):
                name = f"g{gate_id}"
                gate_id += 1
                if rng.uniform() < 0.2 and outputs:
                    netlist.add_gate(name, "NAND2", (signal, outputs[-1]))
                else:
                    netlist.add_gate(name, "INV", (signal,))
                signal = name
            outputs.append(signal)
        previous = outputs
    for lane, signal in enumerate(previous):
        q = f"ff_out_l{lane}"
        netlist.add_flop(q, signal)
        netlist.add_output(q)
    netlist.validate()
    return netlist


def main() -> None:
    netlist = build_pipeline_netlist()
    print(f"built {netlist!r}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "pipeline.bench"
        save_bench(netlist, path)
        print(f"round-tripping through ISCAS89 format ({path.name}, "
              f"{path.stat().st_size} bytes)")
        netlist = read_bench(path)

    circuit = circuit_from_netlist(netlist, n_buffers=4, seed=1)
    print(f"extracted {circuit.paths.n_paths} required paths "
          f"({circuit.background.n_paths} background), buffers at: "
          f"{', '.join(circuit.buffered_ffs)}")

    calibration = sample_circuit(circuit, 3000, seed=2)
    t1, _ = operating_periods(calibration)
    engine = Engine()
    prep = engine.prepare(circuit, clock_period=t1)

    chips = sample_circuit(circuit, 500, seed=3)
    run = engine.run(circuit, chips, t1, preparation=prep)
    baseline = engine.pathwise_baseline(circuit, chips)

    print(f"\nat T1 = {t1:.0f} ps:")
    print(f"  iterations/chip: {run.mean_iterations:.1f} EffiTest vs "
          f"{baseline.total_iterations} path-wise")
    print(f"  yields: no buffers {100 * no_buffer_yield(chips, t1):.1f}% | "
          f"EffiTest {100 * run.yield_fraction:.1f}% | ideal "
          f"{100 * ideal_yield(circuit, chips, prep.structure, t1):.1f}%")


if __name__ == "__main__":
    main()
