"""Statistical delay prediction under the microscope (§3.1 of the paper).

Measures a PCA-selected ~10 % of paths on simulated chips, predicts the
rest with the conditional Gaussian update (eqs. 4-5), and reports:

* prediction error of the conditional mean vs the true delays,
* how often the true delay falls inside the mu' +- 3 sigma' range used for
  buffer configuration (should be ~99.7 % if the model is honest),
* how accuracy degrades when the purely random variation grows (the
  mechanism behind Fig. 7's larger yield drop).

Run:  python examples/prediction_accuracy.py [circuit] [n_chips]
"""

import sys

import numpy as np

from repro import sample_circuit
from repro.experiments import build_context
from repro.utils.tables import Table


def evaluate(circuit, engine, t1, n_chips, seed):
    prep = engine.prepare(circuit, clock_period=t1)
    pop = sample_circuit(circuit, n_chips, seed=seed)
    run = engine.run(circuit, pop, t1, preparation=prep)

    predictor = prep.predictor
    predicted_idx = predictor.predicted_idx
    true = pop.required[:, predicted_idx]
    predicted_mean = predictor.predict_means(run.test.upper)
    error = predicted_mean - true

    lo = run.bounds_lower[:, predicted_idx]
    hi = run.bounds_upper[:, predicted_idx]
    coverage = ((true >= lo) & (true <= hi)).mean()

    prior_sigma = np.sqrt(circuit.paths.model.variances()[predicted_idx])
    return {
        "n_tested": prep.n_tested,
        "n_predicted": len(predicted_idx),
        "rmse": float(np.sqrt((error**2).mean())),
        "bias": float(error.mean()),
        "rmse_over_prior_sigma": float(
            np.sqrt((error**2).mean()) / prior_sigma.mean()
        ),
        "coverage_3sigma": float(coverage),
        "mean_conditional_sigma": float(predictor.conditional_stds.mean()),
        "mean_prior_sigma": float(prior_sigma.mean()),
    }


def main(name: str, n_chips: int) -> None:
    context = build_context(name, n_chips=8)
    print(f"== {name}: conditional prediction quality ({n_chips} chips) ==\n")

    table = Table(["variant", "tested", "predicted", "RMSE (ps)",
                   "RMSE/sigma", "sigma' / sigma", "3-sigma coverage %"])
    for label, factor in (("paper variation", 1.0), ("sigma x1.1 (Fig. 7)", 1.1),
                          ("sigma x1.3", 1.3)):
        circuit = (
            context.circuit
            if factor == 1.0
            else context.circuit.with_inflated_randomness(factor)
        )
        stats = evaluate(
            circuit, context.engine, context.t1, n_chips, seed=11
        )
        table.add_row([
            label,
            stats["n_tested"],
            stats["n_predicted"],
            round(stats["rmse"], 2),
            round(stats["rmse_over_prior_sigma"], 3),
            round(stats["mean_conditional_sigma"] / stats["mean_prior_sigma"], 3),
            round(100 * stats["coverage_3sigma"], 2),
        ])
    print(table.render())
    print(
        "\nReading: testing ~10% of paths shrinks the unmeasured paths'"
        "\nuncertainty to a fraction of the prior sigma; inflating the purely"
        "\nrandom variation (covariances unchanged) erodes exactly this"
        "\nadvantage, which is why Fig. 7 shows a larger yield drop."
    )
    print(
        "\nNote: the bias is positive by design — eq. 4 is fed the measured"
        "\nUPPER bounds (conservative configuration, see §3.4)."
    )


if __name__ == "__main__":
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "s13207"
    chips = int(sys.argv[2]) if len(sys.argv) > 2 else 300
    main(circuit_name, chips)
