"""Yield study: what tuning buffers buy, and what test inaccuracy costs.

Sweeps the designated clock period around T1 for one circuit and reports
three yield curves (as in the paper's Table 2 / Fig. 7 discussion):

* no buffers,
* buffers with an ideal (exact-delay) configuration,
* buffers configured by EffiTest from tested + predicted ranges,

then repeats the T1 point with randomness inflated by 10 % (the Fig. 7
stress case).

The period sweep is a :class:`repro.ScenarioGrid` driven through
``Engine.sweep`` with a persistent ``RunStore``: interrupt the script and
re-run it, and completed periods reload instead of recompute (delete
``.effitest-store/`` for a fresh run).

Run:  python examples/yield_study.py [circuit] [n_chips]
"""

import sys
from pathlib import Path

from repro import (
    OnlineConfig,
    RunStore,
    ScenarioGrid,
    ideal_yield,
    no_buffer_yield,
    sample_circuit,
)
from repro.experiments import build_context
from repro.utils.tables import Table

STORE_DIR = Path(".effitest-store")


def yield_curves(name: str, n_chips: int) -> None:
    context = build_context(name, n_chips=n_chips)
    circuit, prep = context.circuit, context.preparation
    store = RunStore(STORE_DIR / "runs")

    print(f"== {name}: yield vs designated clock period ({n_chips} chips) ==")
    factors = (0.97, 1.00, 1.03, 1.06, 1.10)
    # One grid row per period; clock_period pins the buffer ranges to T1 so
    # the whole sweep shares a single preparation, and the store makes the
    # sweep resumable.
    grid = ScenarioGrid(
        circuit,
        periods=[context.t1 * factor for factor in factors],
        n_chips=n_chips,
        clock_period=context.t1,
        offline=context.offline,
        # Summary retention: the study only reads yields, so the store
        # keeps scalar records and the runs stream at O(shard) memory.
        online=OnlineConfig(artifacts="summary", chip_shard_size=10_000),
        label=name,
    )
    table = Table(["period/T1", "no buffers %", "ideal config %",
                   "EffiTest %", "drop y_r %", "source"])
    # Every grid row shares one implicit population (same circuit, chips,
    # seed) — realize it once for the comparison yields; the EffiTest
    # runs stream it lazily inside the sweep.
    chips = grid.scenarios()[0].chip_source().realize()
    for factor, scenario, record in zip(
        factors, grid, context.engine.sweep(grid, store=store)
    ):
        period = scenario.period
        yi = ideal_yield(circuit, chips, prep.structure, period)
        table.add_row([
            f"{factor:.2f}",
            round(100 * no_buffer_yield(chips, period), 1),
            round(100 * yi, 1),
            round(100 * record.yield_fraction, 1),
            round(100 * (yi - record.yield_fraction), 2),
            "store" if record.from_store else "computed",
        ])
    print(table.render())

    print("\n== same circuit, randomness inflated by 10% (Fig. 7 case) ==")
    inflated = circuit.with_inflated_randomness(1.1)
    prep_inflated = context.engine.prepare(inflated, context.t1)
    pop_inflated = sample_circuit(inflated, n_chips, seed=77)
    run = context.engine.run(
        inflated, pop_inflated, context.t1, preparation=prep_inflated
    )
    yi = ideal_yield(inflated, pop_inflated, prep_inflated.structure, context.t1)
    rows = [
        ("no buffers", no_buffer_yield(pop_inflated, context.t1)),
        ("EffiTest", run.yield_fraction),
        ("ideal config", yi),
    ]
    width = 40
    for label, value in rows:
        bar = "#" * int(round(value * width))
        print(f"{label:>14}: {bar:<{width}} {100 * value:.1f}%")
    ordering = rows[0][1] <= rows[1][1] + 0.02 <= rows[2][1] + 0.04
    print(f"\nFig. 7 ordering (no-buffer < EffiTest <= ideal): "
          f"{'holds' if ordering else 'violated'}")


if __name__ == "__main__":
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "s13207"
    chips = int(sys.argv[2]) if len(sys.argv) > 2 else 500
    yield_curves(circuit_name, chips)
