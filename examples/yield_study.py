"""Yield study: what tuning buffers buy, and what test inaccuracy costs.

Sweeps the designated clock period around T1 for one circuit and reports
three yield curves (as in the paper's Table 2 / Fig. 7 discussion):

* no buffers,
* buffers with an ideal (exact-delay) configuration,
* buffers configured by EffiTest from tested + predicted ranges,

then repeats the T1 point with randomness inflated by 10 % (the Fig. 7
stress case).

Run:  python examples/yield_study.py [circuit] [n_chips]
"""

import sys


from repro import ideal_yield, no_buffer_yield, sample_circuit
from repro.experiments import build_context
from repro.utils.tables import Table


def yield_curves(name: str, n_chips: int) -> None:
    context = build_context(name, n_chips=n_chips)
    circuit, prep = context.circuit, context.preparation
    pop = context.population

    print(f"== {name}: yield vs designated clock period ({n_chips} chips) ==")
    table = Table(["period/T1", "no buffers %", "ideal config %",
                   "EffiTest %", "drop y_r %"])
    for factor in (0.97, 1.00, 1.03, 1.06, 1.10):
        period = context.t1 * factor
        run = context.run(period, pop)
        yi = ideal_yield(circuit, pop, prep.structure, period)
        table.add_row([
            f"{factor:.2f}",
            round(100 * no_buffer_yield(pop, period), 1),
            round(100 * yi, 1),
            round(100 * run.yield_fraction, 1),
            round(100 * (yi - run.yield_fraction), 2),
        ])
    print(table.render())

    print("\n== same circuit, randomness inflated by 10% (Fig. 7 case) ==")
    inflated = circuit.with_inflated_randomness(1.1)
    prep_inflated = context.engine.prepare(inflated, context.t1)
    pop_inflated = sample_circuit(inflated, n_chips, seed=77)
    run = context.engine.run(
        inflated, pop_inflated, context.t1, preparation=prep_inflated
    )
    yi = ideal_yield(inflated, pop_inflated, prep_inflated.structure, context.t1)
    rows = [
        ("no buffers", no_buffer_yield(pop_inflated, context.t1)),
        ("EffiTest", run.yield_fraction),
        ("ideal config", yi),
    ]
    width = 40
    for label, value in rows:
        bar = "#" * int(round(value * width))
        print(f"{label:>14}: {bar:<{width}} {100 * value:.1f}%")
    ordering = rows[0][1] <= rows[1][1] + 0.02 <= rows[2][1] + 0.04
    print(f"\nFig. 7 ordering (no-buffer < EffiTest <= ideal): "
          f"{'holds' if ordering else 'violated'}")


if __name__ == "__main__":
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "s13207"
    chips = int(sys.argv[2]) if len(sys.argv) > 2 else 500
    yield_curves(circuit_name, chips)
