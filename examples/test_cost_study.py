"""Test-cost study: from iteration counts to tester seconds.

Reproduces the Fig. 8 comparison (path-wise vs multiplexing vs aligned
multiplexing, all without statistical prediction), adds the EffiTest flow
with prediction, and converts iteration counts into ATE time with the scan
cost model — the economic argument of the paper's introduction.

The three engine runs (aligned / unaligned multiplexing over all paths,
and the full EffiTest flow) go through ``Engine.sweep`` against the
persistent ``.effitest-store/`` — re-running the script reloads them.

Run:  python examples/test_cost_study.py [circuit] [n_chips]
"""

import sys
from dataclasses import replace
from pathlib import Path

from repro import RunStore
from repro.experiments import DEFAULT_OFFLINE, build_context
from repro.tester import ScanCostModel
from repro.utils.tables import Table


def study(name: str, n_chips: int) -> None:
    print(f"== {name}: tester cost per chip ({n_chips} chips) ==\n")
    all_paths = replace(DEFAULT_OFFLINE, test_all_paths=True)
    # prepare=False: warm re-runs load all three records from the store,
    # so the (expensive, test-all-paths) offline stage never runs again.
    context = build_context(
        name, n_chips=n_chips, offline=all_paths, prepare=False
    )
    circuit, pop = context.circuit, context.population
    n_paths = circuit.paths.n_paths
    store = RunStore(Path(".effitest-store") / "runs")

    # -- Fig. 8 modes: no statistical prediction ---------------------------
    pathwise = context.pathwise_baseline(pop)
    # Alignment is an online knob — both scenarios share one preparation;
    # the third scenario is the full flow with statistical prediction
    # (offline config DEFAULT_OFFLINE, a distinct preparation key).
    aligned_all, mux_all, full = context.engine.sweep(
        [
            context.scenario(context.t1, label=f"{name}@aligned"),
            context.scenario(
                context.t1,
                online=replace(context.online, align=False),
                label=f"{name}@unaligned",
            ),
            replace(
                context.scenario(context.t1, label=f"{name}@effitest"),
                offline=DEFAULT_OFFLINE,
            ),
        ],
        store=store,
    )

    # ATE time: scan chain ~ one bit per flip-flop; EffiTest scans buffer
    # configuration bits along with each vector (5 bits per buffer setting).
    chain = circuit.spec.n_flipflops
    config_bits = 5 * circuit.spec.n_buffers
    plain = ScanCostModel(chain)
    with_config = ScanCostModel(chain, config_bits=config_bits)

    table = Table(["mode", "paths tested", "iterations/chip",
                   "iter/path", "ATE ms/chip"])
    rows = [
        ("path-wise stepping", n_paths, pathwise.total_iterations,
         pathwise.mean_iterations_per_path, plain),
        ("multiplexing only", n_paths, mux_all.mean_iterations,
         mux_all.mean_iterations / n_paths, with_config),
        ("multiplex + align", n_paths, aligned_all.mean_iterations,
         aligned_all.mean_iterations / n_paths, with_config),
        ("EffiTest (full)", full.n_tested, full.mean_iterations,
         full.iterations_per_tested_path, with_config),
    ]
    for label, tested, iters, per_path, cost_model in rows:
        table.add_row([
            label,
            tested,
            round(float(iters), 1),
            round(float(per_path), 2),
            round(1e3 * cost_model.total_seconds(float(iters)), 2),
        ])
    print(table.render())

    reduction = 100 * (pathwise.total_iterations - full.mean_iterations) \
        / pathwise.total_iterations
    print(f"\nEffiTest reduces frequency-stepping iterations by "
          f"{reduction:.1f}% (paper: >94%).")
    print("Fig. 8 ordering (path-wise > multiplexing > aligned): "
          f"{pathwise.total_iterations:.0f} > {mux_all.mean_iterations:.0f} "
          f"> {aligned_all.mean_iterations:.0f}")


if __name__ == "__main__":
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "s9234"
    chips = int(sys.argv[2]) if len(sys.argv) > 2 else 200
    study(circuit_name, chips)
