"""Service daemon load benchmark: tier latencies and coalescing ratio.

Drives an **in-process** :class:`~repro.service.daemon.EffiTestDaemon`
(real HTTP over a loopback socket, ephemeral port) through the three
serving tiers and measures what the serving layer promises:

* **cold misses** — distinct RunKeys served sequentially; each pays one
  engine run (preparation shared: every request pins ``clock_period``, so
  the offline stage runs once and stays warm),
* **duplicate bursts** — for each of B fresh keys, K barrier-synchronized
  clients fire the identical request concurrently; the coalescing table
  must collapse each burst to ~1 engine run (ratio target
  ``0.9 * (K-1)/K``),
* **warm hits** — every key re-requested; all must come from the store
  tier with **zero** additional engine runs (and zero offline work).

Reports p50/p99 latency per tier, the measured coalescing ratio, and the
preparation cache's warm hit rate, and writes the numbers to
``benchmarks/BENCH_service.json`` (``--json`` overrides, ``--no-json``
skips).

Run it directly::

    python benchmarks/bench_service.py           # full load run + JSON + gates
    python benchmarks/bench_service.py --smoke   # tiny mix, CI mode

Smoke mode shrinks every axis and gates only on correctness (coalescing
happened at all, engine runs == unique keys, warm requests computed
nothing, clean shutdown) so CI fails fast on serving-layer regressions
without paying benchmark wall-clock.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

DEFAULT_JSON = Path(__file__).resolve().parent / "BENCH_service.json"

#: The benchmark circuit: tiny-circuit scale — service latency is dominated
#: by the pipeline, and the tiers' *relative* costs are scale-free.
SPEC = {
    "name": "bench-service",
    "n_flipflops": 40,
    "n_gates": 800,
    "n_buffers": 2,
    "n_paths": 24,
}
OFFLINE = {"hold_samples": 400}


def percentile_ms(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples) * 1e3, q))


def tier_row(latencies: dict[str, list[float]], tier: str) -> dict:
    samples = latencies.get(tier, [])
    if not samples:
        return {"n": 0, "p50_ms": None, "p99_ms": None}
    return {
        "n": len(samples),
        "p50_ms": round(percentile_ms(samples, 50), 3),
        "p99_ms": round(percentile_ms(samples, 99), 3),
    }


def build_requests(n_unique: int, n_chips: int) -> list[dict]:
    """Distinct-key requests sharing one circuit and one preparation."""
    from repro.circuit import CircuitSpec, generate_circuit
    from repro.core.yields import chip_source, operating_periods

    circuit = generate_circuit(CircuitSpec(**SPEC), seed=7)
    population = chip_source(circuit, 2000, seed=3).realize()
    t1, t2 = operating_periods(population)
    periods = np.linspace(t1, t2, n_unique)
    return [
        {
            "circuit": {"spec": SPEC, "seed": 7},
            "period": float(period),
            "clock_period": float(t1),  # one shared preparation
            "n_chips": n_chips,
            "seed": 11,
            "offline": OFFLINE,
            "online": {"chip_shard_size": max(4, n_chips // 4)},
        }
        for period in periods
    ]


def run_load(
    n_unique: int, burst_keys: int, burst_k: int, n_chips: int
) -> dict:
    """The full three-tier mix against one in-process daemon."""
    from repro.api import Engine, OfflineConfig
    from repro.results.store import RunStore, store_layout
    from repro.service import EffiTestDaemon, ServiceClient, ServiceCore

    workspace = Path(tempfile.mkdtemp(prefix="bench-service-"))
    runs, preparations = store_layout(workspace)
    core = ServiceCore(
        RunStore(runs),
        engine=Engine(
            offline=OfflineConfig(**OFFLINE), cache_dir=preparations
        ),
        n_workers=max(2, burst_keys),
    )
    daemon = EffiTestDaemon(core, port=0).start()
    host, port = daemon.address
    client = ServiceClient(host, port)
    assert client.healthy(), "daemon failed to come up"

    requests = build_requests(n_unique + burst_keys, n_chips)
    cold_requests = requests[:n_unique]
    burst_requests = requests[n_unique:]
    latencies: dict[str, list[float]] = {}
    outcome: dict = {"config": {
        "unique_cold_keys": n_unique,
        "burst_keys": burst_keys,
        "burst_k": burst_k,
        "n_chips": n_chips,
    }}

    def timed(c: ServiceClient, payload: dict) -> tuple[str, float]:
        start = time.perf_counter()
        result = c.run(payload)
        elapsed = time.perf_counter() - start
        latencies.setdefault(result.tier, []).append(elapsed)
        return result.tier, elapsed

    try:
        # Phase 1 — cold misses, distinct keys, shared preparation.
        cold_tiers = [timed(client, payload)[0] for payload in cold_requests]
        assert cold_tiers == ["miss"] * n_unique, cold_tiers
        prep_after_cold = client.stats()["preparations"]

        # Phase 2 — duplicate bursts: K synchronized clients per fresh key.
        runs_before_burst = client.stats()["engine_runs"]
        burst_tiers: list[str] = []
        for payload in burst_requests:
            barrier = threading.Barrier(burst_k)
            tiers = [None] * burst_k

            def fire(i: int) -> None:
                c = ServiceClient(host, port)
                barrier.wait()  # all K requests hit the socket together
                tiers[i], _ = timed(c, payload)

            threads = [
                threading.Thread(target=fire, args=(i,))
                for i in range(burst_k)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            burst_tiers.extend(tiers)
        burst_runs = client.stats()["engine_runs"] - runs_before_burst
        burst_total = burst_keys * burst_k
        coalescing_ratio = 1.0 - burst_runs / burst_total
        target_ratio = 0.9 * (burst_k - 1) / burst_k

        # Phase 3 — warm hits: every key again, all from the store tier.
        runs_before_warm = client.stats()["engine_runs"]
        warm_tiers = [timed(client, payload)[0] for payload in requests]
        warm_runs = client.stats()["engine_runs"] - runs_before_warm

        stats = client.stats()
        outcome.update({
            "tiers": {
                tier: tier_row(latencies, tier)
                for tier in ("store", "inflight", "miss")
            },
            "coalescing": {
                "burst_requests": burst_total,
                "burst_engine_runs": burst_runs,
                "measured_ratio": round(coalescing_ratio, 4),
                "target_ratio": round(target_ratio, 4),
                "burst_tiers": {
                    tier: burst_tiers.count(tier)
                    for tier in ("miss", "inflight", "store")
                },
            },
            "warm": {
                "requests": len(warm_tiers),
                "store_tier": warm_tiers.count("store"),
                "engine_runs": warm_runs,
            },
            "engine_runs_total": stats["engine_runs"],
            "unique_keys": len(requests),
            "preparations": {
                "computes_after_cold": prep_after_cold["computes"],
                "computes": stats["preparations"]["computes"],
                "hit_rate": round(stats["preparations"]["hit_rate"], 4),
            },
            "store": stats["store"],
        })
    finally:
        try:
            client.shutdown()
        except Exception:
            pass
        daemon.stop()
        outcome["clean_shutdown"] = True
    return outcome


def gate(outcome: dict, smoke: bool) -> list[str]:
    """Hard checks; returns the list of violated contracts."""
    failures = []
    coalescing = outcome["coalescing"]
    if smoke:
        if not coalescing["measured_ratio"] > 0.0:
            failures.append(
                f"no coalescing at all: ratio {coalescing['measured_ratio']}"
            )
    elif coalescing["measured_ratio"] < coalescing["target_ratio"]:
        failures.append(
            f"coalescing ratio {coalescing['measured_ratio']} below target "
            f"{coalescing['target_ratio']}"
        )
    if outcome["engine_runs_total"] != outcome["unique_keys"]:
        failures.append(
            f"engine runs {outcome['engine_runs_total']} != unique keys "
            f"{outcome['unique_keys']} (coalescing or store tier leaked work)"
        )
    warm = outcome["warm"]
    if warm["engine_runs"] != 0 or warm["store_tier"] != warm["requests"]:
        failures.append(f"warm phase was not free: {warm}")
    # The shared clock_period means exactly one offline compute ever.
    if outcome["preparations"]["computes"] != 1:
        failures.append(
            f"expected 1 preparation compute, saw "
            f"{outcome['preparations']['computes']}"
        )
    if not outcome.get("clean_shutdown"):
        failures.append("daemon did not shut down cleanly")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny CI mix")
    parser.add_argument("--unique", type=int, default=None,
                        help="distinct cold keys (default 6; smoke 2)")
    parser.add_argument("--burst-keys", type=int, default=None,
                        help="keys hit by duplicate bursts (default 3; smoke 1)")
    parser.add_argument("--burst-k", type=int, default=None,
                        help="concurrent duplicates per burst (default 8; smoke 4)")
    parser.add_argument("--chips", type=int, default=None,
                        help="chips per scenario (default 64; smoke 16)")
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON)
    parser.add_argument("--no-json", action="store_true")
    args = parser.parse_args(argv)

    n_unique = args.unique or (2 if args.smoke else 6)
    burst_keys = args.burst_keys or (1 if args.smoke else 3)
    burst_k = args.burst_k or (4 if args.smoke else 8)
    n_chips = args.chips or (16 if args.smoke else 64)

    outcome = run_load(n_unique, burst_keys, burst_k, n_chips)
    print(json.dumps(outcome, indent=2))

    if not args.smoke and not args.no_json:
        args.json.write_text(json.dumps(outcome, indent=2) + "\n")
        print(f"\nwrote {args.json}", file=sys.stderr)

    failures = gate(outcome, smoke=args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        mode = "smoke" if args.smoke else "full"
        print(f"\n{mode} gates passed: coalescing ratio "
              f"{outcome['coalescing']['measured_ratio']}, "
              f"{outcome['engine_runs_total']} engine runs for "
              f"{outcome['unique_keys']} unique keys, warm phase free",
              file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
