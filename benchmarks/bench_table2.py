"""Table 2 regeneration benchmark: yields at T1/T2.

Times the configuration + pass/fail evaluation and records yi / yt / yr
per circuit and period against the paper's values.
"""

import pytest

from benchmarks.conftest import BENCH_CIRCUITS
from repro.core.yields import ideal_yield, no_buffer_yield
from repro.experiments.benchdata import PAPER_BY_NAME
from repro.experiments.table2 import run_circuit


@pytest.mark.parametrize("name", BENCH_CIRCUITS)
def test_table2_yields(benchmark, contexts, name):
    context = contexts[name]

    row = benchmark.pedantic(
        lambda: run_circuit(context), rounds=1, iterations=1
    )
    paper = PAPER_BY_NAME[name]
    benchmark.extra_info.update({
        "circuit": name,
        "yi_t1": round(row.yi_t1, 2),
        "yt_t1": round(row.yt_t1, 2),
        "yr_t1": round(row.yr_t1, 2),
        "yi_t2": round(row.yi_t2, 2),
        "yt_t2": round(row.yt_t2, 2),
        "yr_t2": round(row.yr_t2, 2),
        "paper_yi_t1": paper.yi_t1,
        "paper_yt_t1": paper.yt_t1,
    })
    # Shape: tuning buys yield over the ~50 % no-buffer point, EffiTest
    # loses only a little of the ideal gain, and T2 >> T1 yields.
    assert row.yi_t1 > row.no_buffer_t1
    assert row.yt_t1 <= row.yi_t1 + 3.0  # small-sample slack (percent)
    assert row.yr_t1 < 12.0
    assert row.yi_t2 > row.yi_t1


@pytest.mark.parametrize("name", BENCH_CIRCUITS)
def test_table2_ideal_yield_evaluation(benchmark, contexts, name):
    """Micro-view: the ideal-feasibility check alone (Bellman-Ford based)."""
    context = contexts[name]

    def ideal():
        return ideal_yield(
            context.circuit,
            context.population,
            context.preparation.structure,
            context.t1,
        )

    yi = benchmark(ideal)
    benchmark.extra_info.update({
        "circuit": name,
        "yi_t1": round(100 * yi, 2),
        "no_buffer_t1": round(
            100 * no_buffer_yield(context.population, context.t1), 2
        ),
    })
    assert 0.0 <= yi <= 1.0
