"""Population-engine scaling benchmark: compaction, sharding, streaming.

The population test engine retires chips as their paths converge; the
compacted engine (``compact=True``, the default) drops retired rows from
the working arrays each iteration, so late iterations only pay for
stragglers.  This benchmark builds a population where most chips are
perfectly alignable (they converge in ~``log2(width/epsilon)`` iterations)
and a small fraction is unalignable (their paths resolve nearly
sequentially, taking several times longer), then times both engines on the
same inputs and verifies the results are bit-identical.

Run it directly::

    python benchmarks/bench_population_scaling.py            # full sweep
    python benchmarks/bench_population_scaling.py --smoke    # CI smoke mode
    python benchmarks/bench_population_scaling.py --streamed # out-of-core

Full mode sweeps population sizes and reports wall-clock for both engines
plus the shard-streamed variant (``chip_shard_size``); smoke mode runs one
tiny scenario so perf-path regressions (shape errors, identity breaks)
fail fast in CI.

``--streamed`` exercises the out-of-core population substrate: a
:class:`~repro.core.yields.ChipSource` streams a six-figure (or, with
``--chips 1000000``, seven-figure) chip population through a yield run in
fixed-size shards under an enforced memory ceiling.  The dense path —
materializing the full ``(n_chips, n_paths)`` delay matrices — cannot fit
under the same ceiling; the streamed path must, so this mode fails if the
dense path ever sneaks back into the streamed pipeline.  Peak allocation
is measured with :mod:`tracemalloc` (numpy registers its buffers there),
and the streamed and dense yields are required to be bit-identical.

``--streamed`` also runs the *whole EffiTest pipeline* (test, predict,
configure, verify) in summary mode (``OnlineConfig(artifacts="summary")``)
at two population sizes and asserts the peak traced memory stays flat as
``n_chips`` grows — the output-side counterpart of the input-side memory
ceiling: with streaming reduction no per-chip artifact survives a shard.
A dense-retention run at the small size cross-checks that summary-mode
statistics match the dense pipeline exactly.  ``--engine-chips`` sizes
this phase separately from the yield stream (CI uses a smaller size).

``--sweep-smoke`` exercises resumable sweeps end to end: a three-period
``ScenarioGrid`` swept into a fresh ``RunStore``, one record deleted, the
sweep resumed (recomputing exactly the missing scenario), then re-run
fully warm — asserting zero online-stage executions and bit-identical
records.
"""

from __future__ import annotations

import argparse
import sys
import time
import tracemalloc

import numpy as np

from repro.core.alignment import BatchAlignment
from repro.core.population import run_batch_population

#: Fraction of chips whose paths a single buffer can align exactly.
ALIGNED_FRACTION = 0.95

PRIOR_LOWER = 90.0
PRIOR_UPPER = 116.0
EPSILON = 0.05


def scaling_spec(n_paths: int = 6) -> BatchAlignment:
    """One tunable buffer; paths alternately converge into / leave it."""
    signs = np.array([1 if i % 2 else -1 for i in range(n_paths)])
    return BatchAlignment(
        src_buffer=np.where(signs > 0, 0, -1).astype(np.intp),
        snk_buffer=np.where(signs < 0, 0, -1).astype(np.intp),
        base_shift=np.zeros(n_paths),
        grids=(np.linspace(-2.0, 2.0, 21),),
        lower_bounds=np.array([-2.0]),
        upper_bounds=np.array([2.0]),
        buffer_names=("B0",),
    )


def scaling_population(
    n_chips: int, spec: BatchAlignment, seed: int = 20160605
) -> np.ndarray:
    """True delays: mostly alignable chips plus a straggler tail.

    Aligned chips get ``d_i = base - s_i * g`` for an on-grid ``g``, so one
    buffer setting lines every path up at a single period; stragglers get
    independently scattered delays no single setting can align.
    """
    rng = np.random.default_rng(seed)
    m = spec.n_paths
    sign = (spec.src_buffer >= 0).astype(float) - (spec.snk_buffer >= 0)
    grid = spec.grids[0]

    delays = np.empty((n_chips, m))
    n_aligned = int(round(ALIGNED_FRACTION * n_chips))
    base = rng.uniform(100.0, 106.0, size=(n_aligned, 1))
    g = rng.choice(grid, size=(n_aligned, 1))
    delays[:n_aligned] = base - sign[None, :] * g
    delays[n_aligned:] = rng.uniform(
        PRIOR_LOWER + 2.0, PRIOR_UPPER - 2.0, size=(n_chips - n_aligned, m)
    )
    return delays


def run_engine(
    delays: np.ndarray, spec: BatchAlignment, compact: bool
) -> tuple[float, tuple[np.ndarray, np.ndarray, np.ndarray]]:
    m = spec.n_paths
    start = time.perf_counter()
    result = run_batch_population(
        delays,
        spec,
        np.full(m, PRIOR_LOWER),
        np.full(m, PRIOR_UPPER),
        np.zeros(1),
        epsilon=EPSILON,
        compact=compact,
    )
    return time.perf_counter() - start, result


def bench_size(n_chips: int, spec: BatchAlignment) -> dict:
    delays = scaling_population(n_chips, spec)
    seconds_all, reference = run_engine(delays, spec, compact=False)
    seconds_compact, compacted = run_engine(delays, spec, compact=True)
    for got, want in zip(compacted, reference):
        np.testing.assert_array_equal(got, want)
    iterations = reference[2]
    return {
        "n_chips": n_chips,
        "seconds_all_rows": seconds_all,
        "seconds_compacted": seconds_compact,
        "speedup": seconds_all / max(seconds_compact, 1e-12),
        "mean_iterations": float(iterations.mean()),
        "max_iterations": int(iterations.max()),
    }


# ----------------------------------------------------------------------------
# Streamed out-of-core mode
# ----------------------------------------------------------------------------

#: Shard size of the streamed yield run; the streamed peak is O(this).
STREAM_SHARD = 4096


def stream_circuit():
    """A small circuit whose dense population matrices dominate memory."""
    from repro.circuit import CircuitSpec, generate_circuit

    spec = CircuitSpec(
        name="bench-stream",
        n_flipflops=40,
        n_gates=800,
        n_buffers=2,
        n_paths=48,
    )
    return generate_circuit(spec, seed=7)


def streamed_yield_run(source, period: float, shard_size: int) -> tuple[int, int]:
    """No-buffer yield over a streamed population: O(shard) peak memory."""
    passed = 0
    for _start, _stop, shard in source.iter_shards(shard_size):
        from repro.core.yields import no_buffer_yield

        passed += round(no_buffer_yield(shard, period) * shard.n_chips)
    return passed, source.n_chips


def dense_yield_run(source, period: float) -> tuple[int, int]:
    """The same yield run with the whole population materialized at once."""
    from repro.core.yields import no_buffer_yield

    population = source.realize()
    return round(no_buffer_yield(population, period) * population.n_chips), (
        population.n_chips
    )


def _traced(fn) -> tuple[object, int]:
    """Run ``fn`` and report its tracemalloc peak in bytes."""
    tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def _summary_engine_run(engine, circuit, preparation, n_chips, period):
    """The full pipeline over a lazy source, summary retention, O(shard)."""
    from repro.core.yields import chip_source

    source = chip_source(circuit, n_chips, seed=11)
    run = engine.run(circuit, source, period, preparation=preparation)
    return run.summary


def run_summary_engine(n_chips: int, cap_mb: float) -> int:
    """Flat-memory assertion for the output side of the pipeline.

    Runs the whole EffiTest flow in summary mode at ``n_chips // 4`` and
    ``n_chips`` chips; with streaming reduction the peak traced allocation
    must be O(shard), i.e. essentially independent of the population size.
    A dense-retention run at a small size cross-checks the statistics.
    """
    from repro.api import Engine, OnlineConfig
    from repro.core.yields import chip_source, operating_periods

    circuit = stream_circuit()
    period = operating_periods(
        chip_source(circuit, 4096, seed=11).realize()
    )[0]
    online = OnlineConfig(chip_shard_size=STREAM_SHARD, artifacts="summary")
    engine = Engine(online=online)
    # The preparation is shared state, not per-run output — computed (and
    # its memory allocated) before tracing starts.
    preparation = engine.prepare(circuit, period)

    small = max(STREAM_SHARD * 2, n_chips // 4)
    peaks = {}
    summaries = {}
    for size in (small, n_chips):
        summaries[size], peaks[size] = _traced(
            lambda size=size: _summary_engine_run(
                engine, circuit, preparation, size, period
            )
        )
        s = summaries[size]
        print(
            f"summary-mode pipeline: {size} chips, yield "
            f"{s.yield_fraction:.4f}, ta {s.mean_iterations:.1f}, peak "
            f"{peaks[size] / 2**20:.1f} MiB"
        )

    ok = True
    growth = peaks[n_chips] / max(peaks[small], 1)
    scale = n_chips / small
    if growth > 1.5:
        print(
            f"FAIL: summary-mode peak grew {growth:.2f}x when the "
            f"population grew {scale:.1f}x — per-chip artifacts are "
            "surviving the shard reduction"
        )
        ok = False
    cap_bytes = int(cap_mb * 2**20)
    if peaks[n_chips] > cap_bytes:
        print(
            f"FAIL: summary-mode peak {peaks[n_chips] / 2**20:.1f} MiB "
            f"exceeds the {cap_mb:.0f} MiB ceiling"
        )
        ok = False

    # Cross-check: summary-mode statistics == the dense pipeline's, on the
    # same chips (dense retention is the historical result surface).
    check = STREAM_SHARD * 2
    from dataclasses import replace as dc_replace

    dense = engine.run(
        circuit,
        chip_source(circuit, check, seed=11),
        period,
        preparation=preparation,
        online=dc_replace(online, artifacts="dense"),
    )
    summary = _summary_engine_run(engine, circuit, preparation, check, period)
    if (
        summary.n_passed != int(dense.passed.sum())
        or summary.n_chips != dense.n_chips
        or abs(summary.mean_iterations - dense.mean_iterations) > 1e-9
    ):
        print(
            f"FAIL: summary-mode stats diverge from the dense pipeline at "
            f"{check} chips ({summary.n_passed} vs {int(dense.passed.sum())} "
            f"passed, ta {summary.mean_iterations} vs {dense.mean_iterations})"
        )
        ok = False
    if ok:
        print(
            f"PASS: summary-mode peak flat ({growth:.2f}x memory for "
            f"{scale:.1f}x chips, {peaks[n_chips] / 2**20:.1f} MiB at "
            f"{n_chips} chips), stats match the dense pipeline"
        )
    return 0 if ok else 1


def run_streamed(n_chips: int, cap_mb: float, dense_limit: int) -> int:
    from repro.core.yields import chip_source, operating_periods

    circuit = stream_circuit()
    source = chip_source(circuit, n_chips, seed=11)
    # Calibrate the operating period on a prefix shard: chips are stable
    # under population growth, so this is the same period at every size.
    period = operating_periods(source.realize(0, min(4096, n_chips)))[0]
    cap_bytes = int(cap_mb * 2**20)

    (streamed, total), streamed_peak = _traced(
        lambda: streamed_yield_run(source, period, STREAM_SHARD)
    )
    print(
        f"streamed: {total} chips in shards of {STREAM_SHARD}, "
        f"yield {streamed / total:.4f}, peak {streamed_peak / 2**20:.1f} MiB "
        f"(cap {cap_mb:.0f} MiB)"
    )

    ok = True
    if streamed_peak > cap_bytes:
        print(
            f"FAIL: streamed peak {streamed_peak / 2**20:.1f} MiB exceeds the "
            f"{cap_mb:.0f} MiB ceiling — the dense path has sneaked back in"
        )
        ok = False

    if n_chips <= dense_limit:
        (dense, _), dense_peak = _traced(lambda: dense_yield_run(source, period))
        print(
            f"dense:    same run fully materialized, peak "
            f"{dense_peak / 2**20:.1f} MiB"
        )
        if dense != streamed:
            print(f"FAIL: streamed yield {streamed} != dense yield {dense}")
            ok = False
        if dense_peak <= cap_bytes:
            print(
                f"FAIL: dense peak {dense_peak / 2**20:.1f} MiB fits under the "
                f"{cap_mb:.0f} MiB cap — the ceiling no longer separates the "
                "two paths; lower it or grow --chips"
            )
            ok = False
        if ok:
            print(
                f"PASS: streamed path fits the cap the dense path exceeds "
                f"({streamed_peak / 2**20:.1f} vs {dense_peak / 2**20:.1f} MiB), "
                "identical yields"
            )
    else:
        # Seven-figure runs: the dense working set is shown arithmetically
        # instead of allocated (that is the point of streaming).
        models = source.models
        dense_bytes = 8 * n_chips * (
            sum(m.n_paths for m in models) + models[0].n_factors
        )
        print(
            f"dense:    not run above --dense-limit {dense_limit}; its output "
            f"arrays + factors alone need {dense_bytes / 2**20:.0f} MiB"
        )
        if ok:
            print(f"PASS: streamed {total}-chip run under the cap")
    return 0 if ok else 1


def run_sweep_smoke() -> int:
    """Resumable-sweep smoke: compute, interrupt, resume, reload warm."""
    import tempfile
    from pathlib import Path

    import repro.api.engine as engine_module
    from repro.api import Engine, OnlineConfig, ScenarioGrid
    from repro.core.yields import chip_source, operating_periods
    from repro.results import RunStore

    circuit = stream_circuit()
    t1, t2 = operating_periods(chip_source(circuit, 2048, seed=11).realize())
    grid = ScenarioGrid(
        circuit,
        periods=[t1, 0.5 * (t1 + t2), t2],
        n_chips=600,
        clock_period=t1,
        online=OnlineConfig(chip_shard_size=256, artifacts="compact"),
    )

    online_runs = []
    real_run_prepared = engine_module._run_prepared

    def counting_run_prepared(*args, **kwargs):
        online_runs.append(1)
        return real_run_prepared(*args, **kwargs)

    engine_module._run_prepared = counting_run_prepared
    try:
        with tempfile.TemporaryDirectory() as tmp:
            store = RunStore(Path(tmp) / "runs")
            engine = Engine()
            first = list(engine.sweep(grid, store=store))
            cold_runs = len(online_runs)

            # Interrupt: one record disappears; the resume recomputes
            # exactly that scenario and reloads the other two.
            sorted(store.root.glob("run-*.json"))[0].unlink()
            online_runs.clear()
            resumed = list(engine.sweep(grid, store=store))
            resumed_runs = len(online_runs)
            reloaded = sum(record.from_store for record in resumed)

            # Fully warm: zero online stages.
            online_runs.clear()
            warm = list(engine.sweep(grid, store=store))
            warm_runs = len(online_runs)
    finally:
        engine_module._run_prepared = real_run_prepared

    ok = True
    if cold_runs != len(grid):
        print(f"FAIL: cold sweep ran {cold_runs} online stages, expected {len(grid)}")
        ok = False
    if resumed_runs != 1 or reloaded != len(grid) - 1:
        print(
            f"FAIL: resume ran {resumed_runs} online stages and reloaded "
            f"{reloaded} records; expected 1 and {len(grid) - 1}"
        )
        ok = False
    if warm_runs != 0 or not all(r.from_store for r in warm):
        print(f"FAIL: warm re-run executed {warm_runs} online stages (expected 0)")
        ok = False
    for a, b, c in zip(first, resumed, warm):
        same = (
            a.yield_fraction == b.yield_fraction == c.yield_fraction
            and a.mean_iterations == b.mean_iterations == c.mean_iterations
            and (a.summary.passed == c.summary.passed).all()
            and (a.summary.iterations == c.summary.iterations).all()
        )
        if not same:
            print(f"FAIL: resumed/warm records diverge at {a.label}")
            ok = False
    if ok:
        print(
            f"PASS: sweep of {len(grid)} scenarios resumed after losing a "
            "record (1 recomputed, 2 reloaded) and re-ran fully warm with "
            "0 online stages, bit-identical records"
        )
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one tiny scenario: verify identity, skip the speedup gate",
    )
    parser.add_argument(
        "--streamed", action="store_true",
        help="out-of-core mode: stream a large population under a memory cap",
    )
    parser.add_argument(
        "--sweep-smoke", action="store_true",
        help="resumable-sweep smoke: compute, interrupt, resume, reload",
    )
    parser.add_argument(
        "--chips", type=int, default=150_000,
        help="population size for --streamed",
    )
    parser.add_argument(
        "--engine-chips", type=int, default=None,
        help="population size for the summary-mode full-pipeline phase of "
        "--streamed (default: --chips)",
    )
    parser.add_argument(
        "--mem-cap-mb", type=float, default=64.0,
        help="enforced ceiling on the streamed run's peak allocation",
    )
    parser.add_argument(
        "--dense-limit", type=int, default=300_000,
        help="largest --chips for which the dense comparison actually runs",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+",
        default=[500, 1000, 2000, 5000],
        help="population sizes to sweep in full mode",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="required compacted speedup at the largest size (full mode)",
    )
    args = parser.parse_args(argv)

    if args.sweep_smoke:
        return run_sweep_smoke()
    if args.streamed:
        status = run_streamed(args.chips, args.mem_cap_mb, args.dense_limit)
        if status:
            return status
        print()
        return run_summary_engine(
            args.engine_chips or args.chips, args.mem_cap_mb
        )

    spec = scaling_spec()
    sizes = [200] if args.smoke else args.sizes

    header = (
        f"{'chips':>7} {'all-rows [s]':>13} {'compacted [s]':>14} "
        f"{'speedup':>8} {'t_a':>6} {'t_max':>6}"
    )
    print(header)
    print("-" * len(header))
    rows = []
    for n_chips in sizes:
        row = bench_size(n_chips, spec)
        rows.append(row)
        print(
            f"{row['n_chips']:>7} {row['seconds_all_rows']:>13.3f} "
            f"{row['seconds_compacted']:>14.3f} {row['speedup']:>7.2f}x "
            f"{row['mean_iterations']:>6.1f} {row['max_iterations']:>6}"
        )

    print("\nresults bit-identical across engines: yes")
    if args.smoke:
        print("smoke mode: identity verified, speedup gate skipped")
        return 0
    final = rows[-1]
    if final["speedup"] < args.min_speedup:
        print(
            f"FAIL: compacted speedup {final['speedup']:.2f}x at "
            f"{final['n_chips']} chips is below the required "
            f"{args.min_speedup:.1f}x"
        )
        return 1
    print(
        f"PASS: compacted engine is {final['speedup']:.2f}x faster at "
        f"{final['n_chips']} chips (>= {args.min_speedup:.1f}x required)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
