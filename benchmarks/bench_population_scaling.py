"""Population-engine scaling benchmark: active-set compaction vs all-rows.

The population test engine retires chips as their paths converge; the
compacted engine (``compact=True``, the default) drops retired rows from
the working arrays each iteration, so late iterations only pay for
stragglers.  This benchmark builds a population where most chips are
perfectly alignable (they converge in ~``log2(width/epsilon)`` iterations)
and a small fraction is unalignable (their paths resolve nearly
sequentially, taking several times longer), then times both engines on the
same inputs and verifies the results are bit-identical.

Run it directly::

    python benchmarks/bench_population_scaling.py            # full sweep
    python benchmarks/bench_population_scaling.py --smoke    # CI smoke mode

Full mode sweeps population sizes and reports wall-clock for both engines
plus the shard-streamed variant (``chip_shard_size``); smoke mode runs one
tiny scenario so perf-path regressions (shape errors, identity breaks)
fail fast in CI.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.alignment import BatchAlignment
from repro.core.population import run_batch_population

#: Fraction of chips whose paths a single buffer can align exactly.
ALIGNED_FRACTION = 0.95

PRIOR_LOWER = 90.0
PRIOR_UPPER = 116.0
EPSILON = 0.05


def scaling_spec(n_paths: int = 6) -> BatchAlignment:
    """One tunable buffer; paths alternately converge into / leave it."""
    signs = np.array([1 if i % 2 else -1 for i in range(n_paths)])
    return BatchAlignment(
        src_buffer=np.where(signs > 0, 0, -1).astype(np.intp),
        snk_buffer=np.where(signs < 0, 0, -1).astype(np.intp),
        base_shift=np.zeros(n_paths),
        grids=(np.linspace(-2.0, 2.0, 21),),
        lower_bounds=np.array([-2.0]),
        upper_bounds=np.array([2.0]),
        buffer_names=("B0",),
    )


def scaling_population(
    n_chips: int, spec: BatchAlignment, seed: int = 20160605
) -> np.ndarray:
    """True delays: mostly alignable chips plus a straggler tail.

    Aligned chips get ``d_i = base - s_i * g`` for an on-grid ``g``, so one
    buffer setting lines every path up at a single period; stragglers get
    independently scattered delays no single setting can align.
    """
    rng = np.random.default_rng(seed)
    m = spec.n_paths
    sign = (spec.src_buffer >= 0).astype(float) - (spec.snk_buffer >= 0)
    grid = spec.grids[0]

    delays = np.empty((n_chips, m))
    n_aligned = int(round(ALIGNED_FRACTION * n_chips))
    base = rng.uniform(100.0, 106.0, size=(n_aligned, 1))
    g = rng.choice(grid, size=(n_aligned, 1))
    delays[:n_aligned] = base - sign[None, :] * g
    delays[n_aligned:] = rng.uniform(
        PRIOR_LOWER + 2.0, PRIOR_UPPER - 2.0, size=(n_chips - n_aligned, m)
    )
    return delays


def run_engine(
    delays: np.ndarray, spec: BatchAlignment, compact: bool
) -> tuple[float, tuple[np.ndarray, np.ndarray, np.ndarray]]:
    m = spec.n_paths
    start = time.perf_counter()
    result = run_batch_population(
        delays,
        spec,
        np.full(m, PRIOR_LOWER),
        np.full(m, PRIOR_UPPER),
        np.zeros(1),
        epsilon=EPSILON,
        compact=compact,
    )
    return time.perf_counter() - start, result


def bench_size(n_chips: int, spec: BatchAlignment) -> dict:
    delays = scaling_population(n_chips, spec)
    seconds_all, reference = run_engine(delays, spec, compact=False)
    seconds_compact, compacted = run_engine(delays, spec, compact=True)
    for got, want in zip(compacted, reference):
        np.testing.assert_array_equal(got, want)
    iterations = reference[2]
    return {
        "n_chips": n_chips,
        "seconds_all_rows": seconds_all,
        "seconds_compacted": seconds_compact,
        "speedup": seconds_all / max(seconds_compact, 1e-12),
        "mean_iterations": float(iterations.mean()),
        "max_iterations": int(iterations.max()),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one tiny scenario: verify identity, skip the speedup gate",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+",
        default=[500, 1000, 2000, 5000],
        help="population sizes to sweep in full mode",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="required compacted speedup at the largest size (full mode)",
    )
    args = parser.parse_args(argv)

    spec = scaling_spec()
    sizes = [200] if args.smoke else args.sizes

    header = (
        f"{'chips':>7} {'all-rows [s]':>13} {'compacted [s]':>14} "
        f"{'speedup':>8} {'t_a':>6} {'t_max':>6}"
    )
    print(header)
    print("-" * len(header))
    rows = []
    for n_chips in sizes:
        row = bench_size(n_chips, spec)
        rows.append(row)
        print(
            f"{row['n_chips']:>7} {row['seconds_all_rows']:>13.3f} "
            f"{row['seconds_compacted']:>14.3f} {row['speedup']:>7.2f}x "
            f"{row['mean_iterations']:>6.1f} {row['max_iterations']:>6}"
        )

    print("\nresults bit-identical across engines: yes")
    if args.smoke:
        print("smoke mode: identity verified, speedup gate skipped")
        return 0
    final = rows[-1]
    if final["speedup"] < args.min_speedup:
        print(
            f"FAIL: compacted speedup {final['speedup']:.2f}x at "
            f"{final['n_chips']} chips is below the required "
            f"{args.min_speedup:.1f}x"
        )
        return 1
    print(
        f"PASS: compacted engine is {final['speedup']:.2f}x faster at "
        f"{final['n_chips']} chips (>= {args.min_speedup:.1f}x required)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
