"""Ablation: buffer configuration strategy (DESIGN.md §5).

1. Solver: batched binary-search + Bellman-Ford vs the per-chip MILP.
2. Policy: minimax-xi configuration vs the conservative ``D' = u``
   configuration (equivalent to forcing xi = 0 and rejecting chips whose
   upper bounds do not fit) — the paper's motivation for eqs. 15-18.
3. Conditioning: conservative upper-bound conditioning vs range midpoints
   for the statistical prediction input.
"""

import pytest

from repro.core.configuration import configure_chip_milp, configure_chips
from repro.core.yields import configured_pass
from repro.experiments.context import build_context


@pytest.fixture(scope="module")
def setup(bench_engine):
    context = build_context(
        "s9234", n_chips=120, seed=20160605, engine=bench_engine
    )
    run = context.run(context.t1)
    return context, run


def test_config_binary_search_speed(benchmark, setup):
    context, run = setup
    structure = context.preparation.structure

    result = benchmark(
        lambda: configure_chips(
            structure, run.bounds_lower, run.bounds_upper, context.t1
        )
    )
    benchmark.extra_info["feasible_fraction"] = round(
        float(result.feasible.mean()), 3
    )


def test_config_milp_reference_speed(benchmark, setup):
    """Per-chip MILP on a subset — the Gurobi-style reference path."""
    context, run = setup
    structure = context.preparation.structure
    subset = range(8)

    def solve_subset():
        return [
            configure_chip_milp(
                structure, run.bounds_lower[c], run.bounds_upper[c], context.t1
            )
            for c in subset
        ]

    results = benchmark.pedantic(solve_subset, rounds=1, iterations=1)
    fast = configure_chips(
        structure,
        run.bounds_lower[list(subset)],
        run.bounds_upper[list(subset)],
        context.t1,
    )
    agree = sum(
        int(ok == bool(f)) for (ok, _, _), f in zip(results, fast.feasible)
    )
    benchmark.extra_info["feasibility_agreement"] = f"{agree}/{len(list(subset))}"
    assert agree == len(list(subset))


def test_config_policy_ablation(benchmark, setup):
    """Minimax-xi vs conservative upper-bound configuration yield."""
    context, run = setup
    structure = context.preparation.structure

    def both_policies():
        minimax = configure_chips(
            structure, run.bounds_lower, run.bounds_upper, context.t1
        )
        conservative = configure_chips(
            structure, run.bounds_upper, run.bounds_upper, context.t1
        )
        return minimax, conservative

    minimax, conservative = benchmark.pedantic(
        both_policies, rounds=1, iterations=1
    )
    y_minimax = configured_pass(
        context.circuit, context.population, minimax, context.t1
    ).mean()
    y_conservative = configured_pass(
        context.circuit, context.population, conservative, context.t1
    ).mean()
    benchmark.extra_info.update({
        "yield_minimax": round(float(y_minimax), 3),
        "yield_conservative": round(float(y_conservative), 3),
    })
    # The paper's argument: conservative configuration rejects working
    # chips; minimax-xi recovers (some of) them.
    assert y_minimax >= y_conservative - 1e-9


def test_prediction_conditioning_ablation(benchmark, setup):
    """Upper-bound vs midpoint conditioning of eq. 4 (DESIGN.md §5)."""
    context, run = setup
    prep = context.preparation
    predictor = prep.predictor
    structure = prep.structure
    test = run.test

    def configure_with(conditioning):
        lower = run.bounds_lower.copy()
        upper = run.bounds_upper.copy()
        mid_lo, mid_hi = predictor.predict_intervals(conditioning)
        lower[:, predictor.predicted_idx] = mid_lo
        upper[:, predictor.predicted_idx] = mid_hi
        cfg = configure_chips(structure, lower, upper, context.t1)
        return configured_pass(
            context.circuit, context.population, cfg, context.t1
        ).mean()

    def run_both():
        y_upper = configure_with(test.upper)
        y_mid = configure_with(0.5 * (test.lower + test.upper))
        return y_upper, y_mid

    y_upper, y_mid = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "yield_upper_conditioning": round(float(y_upper), 3),
        "yield_midpoint_conditioning": round(float(y_mid), 3),
    })
