"""Configure/verify-stage kernel benchmark: old vs new relaxation engines.

The configure stage's minimax-xi binary search and the verify stage's
``ideal_feasibility`` both reduce to batched difference-constraint solves.
This benchmark times :func:`repro.core.configuration.configure_chips` and
:func:`repro.core.configuration.ideal_feasibility` with the two relaxation
engines on the same inputs:

* ``kernel="reference"`` — the pre-rework per-edge Python sweep, with the
  edge list and per-buffer reductions rebuilt on every feasibility call;
* ``kernel="vectorized"`` — the precompiled :class:`ConfigGraph` +
  :class:`~repro.opt.diffconstraints.RelaxKernel` path (xi-affine weight
  decomposition, level-scheduled segmented relaxation, binary-search
  active-set compaction)

and asserts the resulting ``ConfigurationResult``s are **bit-identical**
(feasible mask, settings, xi — NaNs matching) on every scenario.

Run it directly::

    python benchmarks/bench_configure.py           # full sweep + JSON + gate
    python benchmarks/bench_configure.py --smoke   # tiny scenario, CI mode

Full mode sweeps population sizes and circuit scales, writes the result
trajectory to ``benchmarks/BENCH_configure.json`` (``--json`` overrides the
path, ``--no-json`` skips it) and fails unless the vectorized engine is at
least ``--min-speedup`` (default 10x) faster on the headline scenario — a
>= 2000-chip population over the largest circuit.  Smoke mode runs one
small scenario and only checks the identity, so CI fails fast on kernel
divergence without paying benchmark wall-clock.

Scenario realism: circuits come from :func:`repro.circuit.generate_circuit`
(buffer counts in the range of the paper's ISCAS89 testcases), populations
from the correlated Monte-Carlo sampler, the operating period from the
population's period distribution, and the per-path ranges mimic post-test
bounds — a measurement window around each chip's true delay.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

DEFAULT_JSON = Path(__file__).resolve().parent / "BENCH_configure.json"

#: (label, n_flipflops, n_buffers, n_paths); gates scale with flip-flops.
CIRCUITS = [
    ("small", 40, 20, 80),
    ("medium", 120, 60, 240),
    ("large", 200, 100, 400),
]

SMOKE_CIRCUIT = ("smoke", 16, 8, 32)


def build_scenario(
    circuit_spec: tuple[str, int, int, int], n_chips: int, seed: int = 11
):
    """A configure-stage problem: structure + post-test-style delay ranges."""
    from repro.circuit import CircuitSpec, generate_circuit
    from repro.circuit.insertion import plan_buffers
    from repro.core.configuration import build_config_structure
    from repro.core.holdtime import compute_hold_bounds
    from repro.core.yields import chip_source, operating_periods

    label, n_ffs, n_buffers, n_paths = circuit_spec
    spec = CircuitSpec(
        name=f"bench-configure-{label}",
        n_flipflops=n_ffs,
        n_gates=n_ffs * 20,
        n_buffers=n_buffers,
        n_paths=n_paths,
    )
    circuit = generate_circuit(spec, seed=7)
    population = chip_source(circuit, n_chips, seed=seed).realize()
    period = operating_periods(population)[0]
    plan = plan_buffers(list(circuit.buffered_ffs), period)
    hold = compute_hold_bounds(circuit.short_paths, plan, seed=3)
    structure = build_config_structure(circuit.paths, plan, hold)

    delays = population.required
    rng = np.random.default_rng(seed + 1)
    window = rng.uniform(0.01, 0.15, size=delays.shape) * np.abs(delays).mean()
    return structure, delays - window, delays + window, delays, period


def identical_results(a, b) -> bool:
    return (
        np.array_equal(a.feasible, b.feasible)
        and np.array_equal(a.settings, b.settings, equal_nan=True)
        and np.array_equal(a.xi, b.xi, equal_nan=True)
    )


def bench_scenario(circuit_spec, n_chips: int) -> dict:
    """Time both engines on one scenario and verify bit-identity."""
    from repro.core.configuration import configure_chips, ideal_feasibility

    structure, lower, upper, delays, period = build_scenario(circuit_spec, n_chips)

    start = time.perf_counter()
    cfg_ref = configure_chips(structure, lower, upper, period, kernel="reference")
    cfg_ref_s = time.perf_counter() - start
    start = time.perf_counter()
    cfg_new = configure_chips(structure, lower, upper, period)
    cfg_new_s = time.perf_counter() - start

    start = time.perf_counter()
    ideal_ref = ideal_feasibility(structure, delays, period, kernel="reference")
    ideal_ref_s = time.perf_counter() - start
    start = time.perf_counter()
    ideal_new = ideal_feasibility(structure, delays, period)
    ideal_new_s = time.perf_counter() - start

    return {
        "circuit": circuit_spec[0],
        "n_buffers": structure.n_buffers,
        "n_chips": n_chips,
        "feasible_fraction": float(cfg_ref.feasible.mean()),
        "ideal_yield_fraction": float(ideal_ref.feasible.mean()),
        "configure_seconds_reference": cfg_ref_s,
        "configure_seconds_vectorized": cfg_new_s,
        "configure_speedup": cfg_ref_s / max(cfg_new_s, 1e-12),
        "ideal_seconds_reference": ideal_ref_s,
        "ideal_seconds_vectorized": ideal_new_s,
        "ideal_speedup": ideal_ref_s / max(ideal_new_s, 1e-12),
        "configure_identical": identical_results(cfg_ref, cfg_new),
        "ideal_identical": identical_results(ideal_ref, ideal_new),
    }


def print_row(row: dict) -> None:
    print(
        f"{row['circuit']:>7} {row['n_buffers']:>5} {row['n_chips']:>7} "
        f"{row['configure_seconds_reference']:>10.3f} "
        f"{row['configure_seconds_vectorized']:>11.3f} "
        f"{row['configure_speedup']:>8.1f}x "
        f"{row['ideal_speedup']:>7.1f}x "
        f"{'yes' if row['configure_identical'] and row['ideal_identical'] else 'NO':>9}"
    )


def run_smoke() -> int:
    """CI mode: one tiny scenario, identity-checked old vs new."""
    row = bench_scenario(SMOKE_CIRCUIT, 64)
    ok = row["configure_identical"] and row["ideal_identical"]
    if not ok:
        print(
            "FAIL: vectorized kernel diverged from the reference kernel on "
            "the smoke scenario (configure identical: "
            f"{row['configure_identical']}, ideal identical: "
            f"{row['ideal_identical']})"
        )
        return 1
    print(
        f"PASS: configure + verify kernels bit-identical on the smoke "
        f"scenario ({row['n_chips']} chips, {row['n_buffers']} buffers, "
        f"feasible fraction {row['feasible_fraction']:.2f}); speedup gate "
        "skipped in smoke mode"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one tiny scenario: verify old-vs-new identity, skip the gate",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[512, 2048],
        help="population sizes to sweep per circuit scale",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=10.0,
        help="required configure_chips speedup on the headline scenario "
        "(largest circuit, >= 2000 chips)",
    )
    parser.add_argument(
        "--json", type=Path, default=DEFAULT_JSON,
        help=f"result trajectory path (default {DEFAULT_JSON.name})",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing the JSON file"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke()

    header = (
        f"{'circuit':>7} {'bufs':>5} {'chips':>7} {'cfg ref[s]':>10} "
        f"{'cfg vec[s]':>11} {'cfg spd':>9} {'idl spd':>8} {'identical':>9}"
    )
    print(header)
    print("-" * len(header))
    rows = []
    for circuit_spec in CIRCUITS:
        for n_chips in args.sizes:
            row = bench_scenario(circuit_spec, n_chips)
            rows.append(row)
            print_row(row)

    if not args.no_json:
        payload = {
            "benchmark": "configure-kernel",
            "sizes": args.sizes,
            "scenarios": rows,
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.json}")

    broken = [r for r in rows if not (r["configure_identical"] and r["ideal_identical"])]
    if broken:
        for r in broken:
            print(
                f"FAIL: kernels diverge on {r['circuit']}/{r['n_chips']} chips"
            )
        return 1
    print("results bit-identical across kernels: yes")

    headline = [
        r for r in rows
        if r["circuit"] == CIRCUITS[-1][0] and r["n_chips"] >= 2000
    ]
    if not headline:
        print("FAIL: no >= 2000-chip scenario on the largest circuit was run")
        return 1
    final = max(headline, key=lambda r: r["n_chips"])
    if final["configure_speedup"] < args.min_speedup:
        print(
            f"FAIL: configure speedup {final['configure_speedup']:.1f}x on "
            f"{final['circuit']}/{final['n_chips']} chips is below the "
            f"required {args.min_speedup:.1f}x"
        )
        return 1
    print(
        f"PASS: vectorized configure kernel is {final['configure_speedup']:.1f}x "
        f"faster on {final['circuit']} at {final['n_chips']} chips "
        f"(>= {args.min_speedup:.1f}x required), ideal_feasibility "
        f"{final['ideal_speedup']:.1f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
