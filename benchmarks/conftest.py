"""Shared fixtures for the benchmark harness.

Benchmarks are the *experiment regeneration* path: each ``bench_table*`` /
``bench_figure*`` module reproduces one table or figure of the paper at
reduced Monte-Carlo size (suitable for CI); the ``--chips``-controlled full
runs live in ``python -m repro.experiments``.  Measured quantities are
attached to each benchmark's ``extra_info`` so the JSON output doubles as a
results artefact.
"""

from __future__ import annotations

import pytest

from repro.api import Engine
from repro.experiments.context import build_context

#: Circuits exercised by the benchmark harness (small/medium/large).
BENCH_CIRCUITS = ("s9234", "s13207", "usb_funct")

#: Monte-Carlo chips per circuit in benchmark mode.
BENCH_CHIPS = 100


@pytest.fixture(scope="session")
def bench_engine():
    """One staged-pipeline engine for the whole benchmark session, so every
    module sees the same preparation cache."""
    return Engine()


@pytest.fixture(scope="session")
def contexts(bench_engine):
    """One prepared context per benchmark circuit, sharing the engine."""
    return {
        name: build_context(
            name, n_chips=BENCH_CHIPS, seed=20160605, engine=bench_engine
        )
        for name in BENCH_CIRCUITS
    }
