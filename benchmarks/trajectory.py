"""Unified performance trajectory: one gate over the recorded BENCH files.

Each perf PR leaves a JSON trajectory behind (``BENCH_configure.json``,
``BENCH_offline.json``, ``BENCH_kernels.json``, ``BENCH_test.json``,
``BENCH_service.json``) written by its benchmark driver on real hardware.
This script is the *single* regression gate over all of them: it reads
the recorded headlines, re-checks every identity flag and every speedup
floor, and prints one table.  CI runs ``--check`` so a PR that silently
regresses a recorded trajectory (or deletes one) fails even when nobody
re-runs the slow benchmarks.

Floors (headline = the largest recorded scenario of each file):

* **configure** — vectorized configure/verify >= 10x the reference kernel,
  results bit-identical.
* **offline** — precompiled + warm-started offline stage >= 5x the
  dynamic-encode/reference-solver path, optima identical.
* **kernels** — every A/B digest-identical, always; the >= 3x compiled
  headline and the >1x thread/pipeline wins apply only when the recorded
  environment could express them (``numba_available`` / ``cpu_count >= 2``
  at record time) — wall-clock honesty over aspirational numbers.
* **test** — the adaptive graduated budget cuts mean tester iterations
  ``t_a`` >= 2x on the headline (1.05*T2) scenario, with configure and
  verify verdicts identical to the uniform budget on *every* scenario;
  the SSTA and predictor micro-benchmark identity flags pin always.
* **service** — no speedup floor; the recorded daemon invariants must
  hold (request coalescing actually shared engine runs, warm store-tier
  requests computed nothing, clean shutdown).

Run it directly::

    python benchmarks/trajectory.py           # table only
    python benchmarks/trajectory.py --check   # table + gate (CI)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent

FLOORS = {
    "configure": 10.0,
    "offline": 5.0,
    "kernels": 3.0,
    "test": 2.0,
}


def check_configure(payload: dict) -> tuple[list[str], list[str]]:
    rows, failures = [], []
    headline = payload["scenarios"][-1]
    rows.append(
        f"{'configure':>10}  {headline['circuit']:<8} "
        f"{headline['configure_speedup']:>8.1f}x  "
        f"(n_chips={headline['n_chips']})"
    )
    if headline["configure_speedup"] < FLOORS["configure"]:
        failures.append(
            f"configure: headline speedup "
            f"{headline['configure_speedup']:.1f}x below the "
            f"{FLOORS['configure']:.0f}x floor"
        )
    for scenario in payload["scenarios"]:
        if not (
            scenario["configure_identical"] and scenario["ideal_identical"]
        ):
            failures.append(
                f"configure: {scenario['circuit']} results diverge from "
                "the reference kernel"
            )
    return rows, failures


def check_offline(payload: dict) -> tuple[list[str], list[str]]:
    rows, failures = [], []
    headline = payload["scenarios"][-1]
    rows.append(
        f"{'offline':>10}  {headline['circuit']:<8} "
        f"{headline['offline_speedup']:>8.1f}x  "
        f"(warm hints={headline['align_warm_hints_used']})"
    )
    if headline["offline_speedup"] < FLOORS["offline"]:
        failures.append(
            f"offline: headline speedup {headline['offline_speedup']:.1f}x "
            f"below the {FLOORS['offline']:.0f}x floor"
        )
    if headline["align_warm_hints_used"] < 1:
        failures.append(
            "offline: warm-start cache served no headline alignment variant"
        )
    for scenario in payload["scenarios"]:
        if not scenario["identical"]:
            failures.append(
                f"offline: {scenario['circuit']} optima diverge from the "
                "reference solver"
            )
    return rows, failures


def check_kernels(payload: dict) -> tuple[list[str], list[str]]:
    rows, failures = [], []
    env = payload["environment"]
    headline = payload["kernels"]["headline"]
    speedup = headline.get("speedup")
    rows.append(
        f"{'kernels':>10}  {'headline':<8} "
        + (f"{speedup:>8.1f}x  " if speedup is not None else f"{'--':>9}  ")
        + f"(n_chips={headline['n_chips']}, "
        f"numba={env['numba_available']}, cpus={env['cpu_count']})"
    )
    rows.append(
        f"{'':>10}  {'shards':<8} {payload['shards']['speedup']:>8.2f}x  "
        f"{'sweep':<8} {payload['sweep']['speedup']:>8.2f}x"
    )
    # Identity is unconditional — every recorded A/B must agree.
    for label in ("kernels", "relax", "shards", "sweep"):
        if not payload[label]["identical"]:
            failures.append(f"kernels: {label} digests/results diverge")
    # Speed floors apply when the recording environment could express them.
    if env["numba_available"]:
        if speedup is None or speedup < FLOORS["kernels"]:
            failures.append(
                f"kernels: headline compiled speedup {speedup} below the "
                f"{FLOORS['kernels']:.0f}x floor (numba was available)"
            )
    if env["cpu_count"] >= 2:
        if payload["shards"]["speedup"] <= 1.0:
            failures.append(
                "kernels: threaded shards not faster than serial on a "
                "multi-CPU recording"
            )
        if payload["sweep"]["speedup"] <= 1.0:
            failures.append(
                "kernels: pipelined sweep not faster than serial on a "
                "multi-CPU recording"
            )
    return rows, failures


def check_test(payload: dict) -> tuple[list[str], list[str]]:
    rows, failures = [], []
    headline = payload["scenarios"][-1]
    rows.append(
        f"{'test':>10}  {headline['period_label']:<8} "
        f"{headline['ta_speedup']:>8.2f}x  "
        f"(t_a {headline['ta_uniform']:.1f} -> {headline['ta_adaptive']:.1f}, "
        f"yield={headline['yield_uniform']:.4f}, "
        f"n_chips={headline['n_chips']})"
    )
    if headline["ta_speedup"] < FLOORS["test"]:
        failures.append(
            f"test: headline t_a reduction {headline['ta_speedup']:.2f}x "
            f"below the {FLOORS['test']:.0f}x floor"
        )
    # Verdict identity is unconditional on every scenario — the adaptive
    # budget's whole contract is matched yield chip-for-chip.
    for scenario in payload["scenarios"]:
        if not scenario["verdicts_identical"]:
            failures.append(
                f"test: adaptive verdicts diverge from the uniform budget "
                f"at {scenario['period_label']}"
            )
    if not payload["ssta"]["ssta_identical"]:
        failures.append(
            "test: vectorized SSTA arrival times diverge from the reference"
        )
    if not payload["predictor"]["predictor_identical"]:
        failures.append(
            "test: incremental greedy fill diverges from the dense rebuild"
        )
    return rows, failures


def check_service(payload: dict) -> tuple[list[str], list[str]]:
    rows, failures = [], []
    coalescing = payload["coalescing"]
    rows.append(
        f"{'service':>10}  {'daemon':<8} {'--':>9}  "
        f"(coalesced {coalescing['burst_requests']} -> "
        f"{coalescing['burst_engine_runs']} runs, "
        f"warm computes={payload['warm']['engine_runs']})"
    )
    if coalescing["burst_engine_runs"] >= coalescing["burst_requests"]:
        failures.append(
            "service: duplicate burst requests shared no engine runs"
        )
    if payload["warm"]["engine_runs"] != 0:
        failures.append(
            "service: warm store-tier requests recomputed instead of "
            "loading from the RunStore"
        )
    if payload["engine_runs_total"] != payload["unique_keys"]:
        failures.append(
            f"service: {payload['engine_runs_total']} engine runs for "
            f"{payload['unique_keys']} unique keys — coalescing leaked"
        )
    if not payload["clean_shutdown"]:
        failures.append("service: daemon did not shut down cleanly")
    return rows, failures


CHECKS = {
    "BENCH_configure.json": check_configure,
    "BENCH_offline.json": check_offline,
    "BENCH_kernels.json": check_kernels,
    "BENCH_test.json": check_test,
    "BENCH_service.json": check_service,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on any missing trajectory, identity break or "
        "floor violation",
    )
    parser.add_argument(
        "--dir", type=Path, default=HERE,
        help="directory holding the BENCH_*.json trajectories",
    )
    args = parser.parse_args(argv)

    rows: list[str] = []
    failures: list[str] = []
    for name, check in CHECKS.items():
        path = args.dir / name
        if not path.exists():
            failures.append(f"missing trajectory: {name}")
            continue
        payload = json.loads(path.read_text())
        file_rows, file_failures = check(payload)
        rows.extend(file_rows)
        failures.extend(file_failures)

    print(f"{'benchmark':>10}  {'headline':<8} {'speedup':>9}")
    print("-" * 64)
    for row in rows:
        print(row)

    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        if args.check:
            return 1
        print("(informational: run with --check to gate)")
        return 0
    print(
        "\nPASS: every recorded trajectory holds its identity pins and "
        "speedup floors"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
