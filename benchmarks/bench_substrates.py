"""Micro-benchmarks of the substrates the experiments lean on.

These quantify the engineering choices of DESIGN.md: batched Bellman-Ford
vs per-chip LP, row-vectorized weighted medians, Monte-Carlo sampling
throughput, and the pure-Python simplex vs HiGHS.
"""

import numpy as np
import pytest

from repro.circuit import CircuitSpec, generate_circuit
from repro.core.yields import sample_circuit
from repro.opt.diffconstraints import bellman_ford
from repro.opt.model import Model, ObjectiveSense
from repro.opt.scipy_backend import solve_lp_scipy
from repro.opt.simplex import solve_lp
from repro.opt.weighted_median import weighted_median_rows


def test_batched_bellman_ford(benchmark):
    """Feasibility of 2000 chips at once on a 20-buffer graph."""
    rng = np.random.default_rng(0)
    n_nodes, n_edges, n_batch = 21, 120, 2000
    edge_u = rng.integers(0, n_nodes, size=n_edges)
    edge_v = rng.integers(0, n_nodes, size=n_edges)
    weights = rng.uniform(-0.05, 1.0, size=(n_edges, n_batch))

    result = benchmark(
        lambda: bellman_ford(n_nodes, edge_u, edge_v, weights, n_batch)
    )
    benchmark.extra_info["feasible_fraction"] = round(
        float(np.asarray(result.feasible).mean()), 3
    )


def test_weighted_median_rows_throughput(benchmark):
    rng = np.random.default_rng(1)
    values = rng.normal(size=(5000, 12))
    weights = rng.uniform(0.5, 2.0, size=(5000, 12))
    benchmark(lambda: weighted_median_rows(values, weights))


def test_circuit_generation(benchmark):
    spec = CircuitSpec("bench_gen", 211, 5597, 2, 80)
    circuit = benchmark.pedantic(
        lambda: generate_circuit(spec, seed=1), rounds=1, iterations=1
    )
    benchmark.extra_info["n_paths"] = circuit.paths.n_paths


def test_population_sampling(benchmark):
    circuit = generate_circuit(CircuitSpec("bench_s", 211, 5597, 2, 80), seed=1)
    pop = benchmark(lambda: sample_circuit(circuit, 2000, seed=2))
    benchmark.extra_info["n_chips"] = pop.n_chips


@pytest.mark.parametrize("solver", ["pure_simplex", "scipy_highs"])
def test_lp_solvers(benchmark, solver):
    rng = np.random.default_rng(3)
    model = Model("bench_lp")
    exprs = [model.add_var(f"v{i}", -5.0, 5.0) for i in range(12)]
    for _ in range(18):
        coeffs = rng.integers(-3, 4, size=12)
        expr = sum((int(c) * e for c, e in zip(coeffs, exprs)), 0 * exprs[0])
        model.add_constraint(expr <= float(rng.integers(1, 20)))
    cost = rng.integers(-3, 4, size=12)
    model.set_objective(
        sum((int(c) * e for c, e in zip(cost, exprs)), 0 * exprs[0]),
        ObjectiveSense.MINIMIZE,
    )
    form = model.to_matrix_form()

    fn = solve_lp if solver == "pure_simplex" else solve_lp_scipy
    result = benchmark(lambda: fn(form))
    benchmark.extra_info["objective"] = (
        None if result.objective is None else round(result.objective, 4)
    )
